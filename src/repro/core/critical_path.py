"""Critical-path identification — Gurita's rule 4.

Clairvoyantly, the critical path of a job is the longest leaf-to-root path
of its coflow DAG under CCT ≈ ``l_max / rate`` (reusing
:func:`repro.jobs.paths.critical_path_coflows`).

Online, job structure is unknown, so Gurita uses the Average Value
Approximation (AVA): it keeps the running mean of the largest observed
flow size per coflow and flags a coflow as *possibly on a critical path*
when its own largest observed flow reaches that mean — critical paths
usually run through coflows with high CCT.  The number of flagged coflows
per job is bounded (the paper bounds it below the production average of 5
stages per job).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.jobs.job import Job
from repro.jobs.paths import critical_path_coflows


class AvaCriticalPathEstimator:
    """Online critical-path guesser via Average Value Approximation."""

    def __init__(self, max_marks_per_job: int = 5) -> None:
        if max_marks_per_job < 1:
            raise ValueError("max_marks_per_job must be >= 1")
        self.max_marks_per_job = max_marks_per_job
        self._sum = 0.0
        self._count = 0
        self._marks: Dict[int, Set[int]] = {}

    @property
    def average(self) -> float:
        """Running mean of observed per-coflow largest flow sizes."""
        if self._count == 0:
            return 0.0
        return self._sum / self._count

    def observe(self, observed_max_flow_bytes: float) -> None:
        """Feed one coflow's largest observed flow size into the average."""
        if observed_max_flow_bytes <= 0:
            return
        self._sum += observed_max_flow_bytes
        self._count += 1

    def is_critical(
        self,
        job_id: int,
        coflow_id: int,
        observed_max_flow_bytes: float,
    ) -> bool:
        """Flag the coflow if its largest flow reaches the AVA mean.

        Flags are sticky per (job, coflow) and capped per job, mirroring
        the bound on coflows per critical path.
        """
        marks = self._marks.setdefault(job_id, set())
        if coflow_id in marks:
            return True
        if self._count == 0 or observed_max_flow_bytes < self.average:
            return False
        if len(marks) >= self.max_marks_per_job:
            return False
        marks.add(coflow_id)
        return True

    def forget_job(self, job_id: int) -> None:
        """Drop per-job state once the job completes."""
        self._marks.pop(job_id, None)


def clairvoyant_critical_set(job: Job, processing_rate: float = 1.0) -> Set[int]:
    """Coflow ids on the job's true critical path (GuritaPlus's rule 4)."""
    path, _cost = critical_path_coflows(job, processing_rate=processing_rate)
    return set(path)
