"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidJobError(ReproError):
    """A job, coflow, or flow definition is structurally invalid."""


class DagCycleError(InvalidJobError):
    """The coflow dependency graph of a job contains a cycle."""


class TopologyError(ReproError):
    """A network topology is invalid or a lookup into it failed."""


class RoutingError(ReproError):
    """No route could be computed between two hosts."""


class NoPathError(RoutingError):
    """Every candidate path between two hosts is unavailable.

    Raised by the ECMP router when the topology exposes no route
    candidates at all, or when link failures have downed every
    equal-cost candidate (a network partition).  Callers that model
    graceful degradation catch this and park the flow until a repair
    restores connectivity.
    """


class FaultError(ReproError):
    """A fault profile or fault specification is invalid."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SchedulerError(ReproError):
    """A scheduling policy was misused or misconfigured."""


class ExperimentError(ReproError):
    """An experiment scenario, grid, or sweep was misconfigured."""


class GridExecutionError(ExperimentError):
    """One or more work units of a parallel grid failed after retries.

    Raised by the convenience wrappers (``run_trials``, ``sweep_*``) that
    need every unit's result; the engine itself never raises this — it
    reports failures structurally in :class:`GridReport.failures`.
    """

    def __init__(self, message: str, failures: object = None) -> None:
        super().__init__(message)
        #: the :class:`repro.experiments.parallel.UnitFailure` records
        self.failures = failures


class CheckpointError(SimulationError):
    """A simulator checkpoint could not be written, read, or restored.

    Raised for schema-version mismatches, fingerprint (integrity)
    failures on read, and attempts to restore a snapshot into an
    incompatible component (wrong queue variant, wrong scheduler class).
    """


class ManifestError(ExperimentError):
    """A supervised-run manifest is missing, corrupt, or incompatible.

    Raised by :mod:`repro.experiments.supervisor` when a resume is
    requested from a manifest whose schema version, salt, or unit
    fingerprints no longer match what the current code would produce.
    """


class WorkloadError(ReproError):
    """A workload description or trace file is invalid."""


class TraceFormatError(WorkloadError):
    """A coflow trace file does not conform to the expected format."""
