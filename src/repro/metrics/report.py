"""Plain-text report rendering for experiment output.

These helpers print the rows/series the paper's figures report, so the
benchmark harness output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.workloads.categories import category_label


def format_improvement_row(
    scenario: str, improvements: Mapping[str, float]
) -> str:
    """One Figure-5-style row: scenario + improvement per baseline."""
    cells = "  ".join(
        f"{name}={factor:5.2f}x" for name, factor in sorted(improvements.items())
    )
    return f"{scenario:<12s} {cells}"


def format_category_table(
    per_scheduler: Mapping[str, Mapping[int, float]],
    title: str = "",
) -> str:
    """A Figure-6/7/8-style table: improvement per category per baseline.

    ``per_scheduler`` maps scheduler name -> {category -> improvement}.
    """
    categories: List[int] = sorted(
        {cat for factors in per_scheduler.values() for cat in factors}
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "scheduler   " + "".join(
        f"{category_label(cat):>8s}" for cat in categories
    )
    lines.append(header)
    for name in sorted(per_scheduler):
        factors = per_scheduler[name]
        row = f"{name:<12s}" + "".join(
            f"{factors[cat]:8.2f}" if cat in factors else "       -"
            for cat in categories
        )
        lines.append(row)
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float]) -> str:
    """A labelled numeric series, 4 significant digits."""
    return f"{label}: " + ", ".join(f"{v:.4g}" for v in values)


def format_jct_table(averages: Mapping[str, float]) -> str:
    """Average JCT per scheduler, sorted fastest first."""
    lines = ["scheduler      avg JCT (s)"]
    for name, jct in sorted(averages.items(), key=lambda kv: kv[1]):
        lines.append(f"{name:<14s} {jct:10.4f}")
    return "\n".join(lines)


def format_degradation_table(
    degradation: Mapping[str, Mapping[str, float]],
    title: str = "JCT inflation vs perfect fabric (1.00 = unaffected):",
) -> str:
    """A chaos-report table: JCT inflation per scheduler per fault profile.

    ``degradation`` maps fault-profile name -> {scheduler -> inflation
    factor} (see :meth:`repro.experiments.chaos.ChaosReport.degradation`).
    """
    schedulers: List[str] = sorted(
        {name for factors in degradation.values() for name in factors}
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "profile         " + "".join(f"{name:>9s}" for name in schedulers)
    )
    for profile in sorted(degradation):
        factors = degradation[profile]
        lines.append(
            f"{profile:<16s}"
            + "".join(
                f"{factors[name]:8.2f}x" if name in factors else "        -"
                for name in schedulers
            )
        )
    return "\n".join(lines)


def format_fault_table(
    counters: Mapping[str, Mapping[str, float]],
    keys: Sequence[str] = (
        "flows_rerouted",
        "flow_restarts",
        "flows_recovered",
        "mean_recovery_seconds",
        "hr_rounds_dropped",
        "max_hr_staleness",
    ),
) -> str:
    """Fault-handling counters per scheduler, one column per counter.

    ``counters`` maps scheduler name -> the flat snapshot of
    :func:`repro.simulator.observability.fault_counters`; ``keys``
    selects (and orders) the columns.
    """
    short = {
        "flows_rerouted": "rerouted",
        "rerouted_bytes": "rr-bytes",
        "flow_restarts": "restarts",
        "flows_parked": "parked",
        "flows_recovered": "recovered",
        "mean_recovery_seconds": "recov-s",
        "max_recovery_seconds": "recov-max",
        "hr_rounds_dropped": "hr-drop",
        "hr_rounds_delayed": "hr-delay",
        "max_hr_staleness": "hr-stale",
    }
    header = "scheduler   " + "".join(
        f"{short.get(key, key):>10s}" for key in keys
    )
    lines = [header]
    for name in sorted(counters):
        row = counters[name]
        lines.append(
            f"{name:<12s}"
            + "".join(f"{row.get(key, 0.0):10.2f}" for key in keys)
        )
    return "\n".join(lines)


def format_gap_table(
    mean_gaps: Mapping[str, Mapping[str, float]],
    title: str = "mean JCT / lower bound (1.00 = optimal):",
) -> str:
    """An optimality-gap table: mean gap per scheduler per scenario.

    ``mean_gaps`` maps scenario name -> {scheduler -> mean gap} (see
    :meth:`repro.theory.gap.GapReport.mean_gaps`).  Columns are
    schedulers, rows scenarios, mirroring the chaos degradation table.
    """
    schedulers: List[str] = sorted(
        {name for row in mean_gaps.values() for name in row}
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "scenario            " + "".join(f"{name:>9s}" for name in schedulers)
    )
    for scenario in sorted(mean_gaps):
        row = mean_gaps[scenario]
        lines.append(
            f"{scenario:<20s}"
            + "".join(
                f"{row[name]:8.3f}x" if name in row else "        -"
                for name in schedulers
            )
        )
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "x",
) -> str:
    """ASCII horizontal bars — terminal rendition of the paper's figures.

    Bars scale to the largest value; labels sort by value descending.
    """
    if not values:
        return "(no data)"
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(name)) for name in values)
    lines: List[str] = []
    for name, value in sorted(values.items(), key=lambda kv: -kv[1]):
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{name:<{label_width}s} |{bar:<{width}s}| {value:.2f}{unit}")
    return "\n".join(lines)
