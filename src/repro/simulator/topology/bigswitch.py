"""Non-blocking big-switch fabric (the paper's analysis abstraction, §II).

Every host has one uplink into and one downlink out of a single virtual
switch of infinite backplane capacity.  Congestion can only occur at host
NICs — the standard abstraction of Varys/Aalo-style coflow work, and the
fastest substrate for experimentation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TopologyError
from repro.simulator.topology.base import Topology
from repro.simulator.topology.links import TEN_GBPS


class BigSwitchTopology(Topology):
    """An ``n x n`` non-blocking fabric with per-host NIC capacity."""

    def __init__(self, num_hosts: int, link_capacity: float = TEN_GBPS) -> None:
        super().__init__()
        if num_hosts < 2:
            raise TopologyError("big switch needs at least 2 hosts")
        self._num_hosts = num_hosts
        self._uplink: List[int] = []
        self._downlink: List[int] = []
        for host in range(num_hosts):
            self._uplink.append(self.links.add(f"h{host}", "fabric", link_capacity))
            self._downlink.append(self.links.add("fabric", f"h{host}", link_capacity))

    @property
    def num_hosts(self) -> int:
        return self._num_hosts

    def num_route_choices(self, src: int, dst: int) -> int:
        self.validate_host(src)
        self.validate_host(dst)
        return 1

    def route(self, src: int, dst: int, selector: int) -> Tuple[int, ...]:
        self.validate_host(src)
        self.validate_host(dst)
        if src == dst:
            raise TopologyError("no route from a host to itself")
        return (self._uplink[src], self._downlink[dst])

    def uplink_of(self, host: int) -> int:
        """Link id of the host's ingress (sender NIC) link."""
        return self._uplink[host]

    def downlink_of(self, host: int) -> int:
        """Link id of the host's egress (receiver NIC) link."""
        return self._downlink[host]
