"""Load sweep: where priority scheduling starts to pay off over PFS.

An extension series the paper implies but does not plot: the improvement
of Gurita over fair sharing as the offered load climbs from idle toward
overload.  At negligible load every policy ties (nothing queues); the gap
opens as contention builds — the bench prints the series and the
crossover point.
"""

from _util import bench_jobs

from repro.experiments.common import ScenarioConfig
from repro.experiments.sweep import sweep_offered_load
from repro.metrics.report import format_series

LOADS = (0.2, 0.8, 1.5, 3.0)


def test_load_sweep_gap_opens_with_contention(run_once):
    def experiment():
        base = ScenarioConfig(num_jobs=bench_jobs(24), seed=33)
        return sweep_offered_load(LOADS, base=base, schedulers=("pfs", "gurita"))

    sweep = run_once(experiment)
    factors = sweep.improvement_series("pfs")
    print("\nLOAD-SWEEP  offered load: " + ", ".join(f"{v:g}" for v in LOADS))
    print("LOAD-SWEEP  " + format_series("gurita improvement over pfs", factors))
    crossover = sweep.crossover("pfs")
    print(f"LOAD-SWEEP  first load where gurita wins: {crossover:g}")
    # At near-idle load the schedulers are within a few percent of each
    # other; under sustained load Gurita's advantage must be material.
    assert factors[0] < 1.15
    assert max(factors) > 1.05
    # The advantage trend rises with load (allow one non-monotone step).
    assert factors[-1] >= factors[0] - 0.02
