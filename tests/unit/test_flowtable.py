"""Unit tests for the Jenkins-hash receiver flow table."""

import pytest

from repro.core.flowtable import (
    PROTO_TCP,
    FlowTable,
    five_tuple_for_flow,
    hash_five_tuple,
    jenkins_one_at_a_time,
)


def tuple_for(flow_id, src=1, dst=2):
    return five_tuple_for_flow(flow_id, src, dst)


class TestJenkinsHash:
    def test_known_values_stable(self):
        # One-at-a-time is deterministic; pin a couple of values so an
        # accidental algorithm change is caught.
        assert jenkins_one_at_a_time(b"") == 0
        assert jenkins_one_at_a_time(b"a") == jenkins_one_at_a_time(b"a")
        assert jenkins_one_at_a_time(b"a") != jenkins_one_at_a_time(b"b")

    def test_32_bit_range(self):
        for data in (b"", b"abc", b"x" * 100):
            assert 0 <= jenkins_one_at_a_time(data) < 2**32

    def test_five_tuple_hash_spreads(self):
        buckets = {
            hash_five_tuple(tuple_for(i, src=i % 7, dst=3 + i % 5)) % 64
            for i in range(300)
        }
        assert len(buckets) > 40


class TestFiveTupleSynthesis:
    def test_shape(self):
        src_ip, dst_ip, sport, dport, proto = five_tuple_for_flow(9, 4, 5)
        assert proto == PROTO_TCP
        assert dport == 7077
        assert src_ip != dst_ip
        assert 32768 <= sport < 61000

    def test_distinct_flows_distinct_tuples(self):
        assert five_tuple_for_flow(1, 0, 1) != five_tuple_for_flow(2, 0, 1)


class TestFlowTable:
    def test_insert_lookup(self):
        table = FlowTable(num_buckets=8)
        table.insert(tuple_for(1), flow_id=1, coflow_id=10)
        record = table.lookup(tuple_for(1))
        assert record is not None
        assert record.flow_id == 1 and record.coflow_id == 10
        assert len(table) == 1

    def test_lookup_missing(self):
        assert FlowTable().lookup(tuple_for(1)) is None

    def test_reinsert_same_tuple_replaces(self):
        table = FlowTable(num_buckets=4)
        table.insert(tuple_for(1), 1, 10)
        table.insert(tuple_for(1), 2, 11)
        assert len(table) == 1
        assert table.lookup(tuple_for(1)).flow_id == 2

    def test_collisions_chain(self):
        table = FlowTable(num_buckets=1)  # everything collides
        for i in range(5):
            table.insert(tuple_for(i, src=i), i, 10)
        assert len(table) == 5
        assert table.max_chain_length() == 5
        for i in range(5):
            assert table.lookup(tuple_for(i, src=i)).flow_id == i

    def test_account_bytes(self):
        table = FlowTable()
        table.insert(tuple_for(1), 1, 10)
        assert table.account_bytes(tuple_for(1), 500.0)
        assert table.account_bytes(tuple_for(1), 250.0)
        assert table.lookup(tuple_for(1)).bytes_received == 750.0
        assert not table.account_bytes(tuple_for(9), 1.0)

    def test_close_and_evict(self):
        table = FlowTable()
        table.insert(tuple_for(1), 1, 10)
        table.insert(tuple_for(2), 2, 10)
        table.insert(tuple_for(3), 3, 20)
        assert table.close(tuple_for(1))
        assert not table.close(tuple_for(1))  # already closed
        assert table.close(tuple_for(3))
        assert table.evict_closed(coflow_id=10) == 1
        assert len(table) == 2
        assert table.evict_closed() == 1
        assert len(table) == 1

    def test_coflow_stats_rollup(self):
        table = FlowTable()
        table.insert(tuple_for(1), 1, 10)
        table.insert(tuple_for(2), 2, 10)
        table.insert(tuple_for(3), 3, 20)
        table.account_bytes(tuple_for(1), 100.0)
        table.account_bytes(tuple_for(2), 300.0)
        table.close(tuple_for(2))
        stats = table.coflow_stats()
        assert stats[10].num_flows == 2
        assert stats[10].open_connections == 1
        assert stats[10].bytes_received == 400.0
        assert stats[10].max_flow_bytes == 300.0
        assert stats[10].mean_flow_bytes == 200.0
        assert stats[20].bytes_received == 0.0

    def test_load_factor(self):
        table = FlowTable(num_buckets=10)
        for i in range(5):
            table.insert(tuple_for(i, src=i), i, 1)
        assert table.load_factor() == pytest.approx(0.5)

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            FlowTable(num_buckets=0)
