#!/usr/bin/env python3
"""A TPC-DS-style analytics pipeline, stage by stage.

Builds one TPC-DS query-42 job explicitly with the public JobBuilder API —
three table scans feeding two joins, an aggregation, and a sort — runs it
against background traffic, and prints the per-stage timeline so you can
see the coflow DAG executing (scans in parallel, joins waiting on their
inputs, the tiny sort at the end).

Run:  python examples/analytics_pipeline.py
"""

from repro import FatTreeTopology, GuritaScheduler, IdAllocator, JobBuilder, simulate
from repro.jobs import single_stage_job
from repro.workloads.categories import GB, MB


def build_query42(ids: IdAllocator) -> "Job":
    """TPC-DS query 42 as an explicit coflow DAG on hosts 0..23."""
    builder = JobBuilder(arrival_time=0.0, ids=ids)
    # Stage 1: three scans shuffle their outputs (fact table dominates).
    scan_date = builder.add_coflow([(0, 12, 20 * MB)])
    scan_sales = builder.add_coflow(
        [(src, 12 + src % 4, 2 * GB / 8) for src in range(1, 9)]
    )
    scan_item = builder.add_coflow([(9, 13, 50 * MB)])
    # Stage 2: join date_dim x store_sales (shrinks the data).
    join_1 = builder.add_coflow(
        [(12 + i, 16 + i, 800 * MB / 4) for i in range(4)],
        depends_on=[scan_date, scan_sales],
    )
    # Stage 3: join with item.
    join_2 = builder.add_coflow(
        [(16 + i, 20 + i % 2, 400 * MB / 4) for i in range(4)],
        depends_on=[join_1, scan_item],
    )
    # Stages 4-5: aggregate, then order-by + limit (nearly free).
    aggregate = builder.add_coflow([(20, 22, 100 * MB), (21, 22, 100 * MB)],
                                   depends_on=[join_2])
    builder.add_coflow([(22, 23, 10 * MB)], depends_on=[aggregate])
    return builder.build()


def main() -> None:
    ids = IdAllocator()
    query = build_query42(ids)
    print(f"Query DAG: {len(query.coflows)} coflows over {query.num_stages} stages, "
          f"{query.total_bytes / GB:.2f} GB shuffled in total\n")

    # Background load: a handful of long-running ETL transfers.
    background = [
        single_stage_job([(h, 64 + h, 5 * GB)], ids=ids) for h in range(6)
    ]

    topology = FatTreeTopology(k=8)
    result = simulate(topology, GuritaScheduler(), [query, *background])

    print("Per-stage timeline of the query:")
    stage_names = {1: "scans", 2: "join date x sales", 3: "join item",
                   4: "aggregate", 5: "sort+limit"}
    for coflow in sorted(query.coflows, key=lambda c: (c.stage, c.coflow_id)):
        label = stage_names.get(coflow.stage, f"stage {coflow.stage}")
        print(
            f"  stage {coflow.stage} ({label:18s}) coflow {coflow.coflow_id:3d}: "
            f"released {coflow.release_time:7.3f}s  finished "
            f"{coflow.finish_time:7.3f}s  ({coflow.width} flows, "
            f"{coflow.total_bytes / MB:8.1f} MB)"
        )
    background_mean = sum(j.completion_time() for j in background) / len(background)
    print(f"\nQuery completion time: {query.completion_time():.3f}s "
          f"(background ETL mean JCT: {background_mean:.3f}s)")


if __name__ == "__main__":
    main()
