#!/usr/bin/env python3
"""Working with coflow traces: synthesize, save, load, replay.

The paper replays the public Facebook coflow trace
(``FB2010-1Hr-150-0.txt``, 150 racks / 3000 machines).  That file is not
redistributable, so this library ships a calibrated synthesizer that
writes the *same on-disk format* — if you have the real trace, point
``parse_trace`` at it and everything downstream works unchanged.

Run:  python examples/trace_tools.py [path-to-real-trace]
"""

import sys
from collections import Counter

from repro import FatTreeTopology, GuritaScheduler, simulate
from repro.workloads import (
    category_label,
    category_of,
    jobs_from_trace,
    parse_trace,
    synthesize_trace,
    write_trace,
)


def main() -> None:
    if len(sys.argv) > 1:
        print(f"Loading real trace from {sys.argv[1]} ...")
        num_machines, trace = parse_trace(sys.argv[1])
    else:
        print("No trace supplied - synthesizing a Facebook-like one "
              "(pass a path to FB2010-1Hr-150-0.txt to use the real thing).")
        num_machines = 3000
        trace = synthesize_trace(
            num_coflows=200, num_machines=num_machines, seed=4
        )
        write_trace("/tmp/synthetic-fb-trace.txt", trace, num_machines)
        print("Wrote /tmp/synthetic-fb-trace.txt in the Varys format; "
              "round-trip check:")
        num_machines, trace = parse_trace("/tmp/synthetic-fb-trace.txt")

    print(f"  {len(trace)} coflows over {num_machines} machines")
    sizes = Counter(category_of(c.total_bytes) for c in trace)
    print("  size mix (Table-1 categories): " + ", ".join(
        f"{category_label(cat)}:{count}" for cat, count in sorted(sizes.items())
    ))
    widths = [len(c.mappers) * len(c.reducers) for c in trace]
    print(f"  width: median {sorted(widths)[len(widths)//2]} flows, "
          f"max {max(widths)} flows per coflow")

    # Stitch trace coflows onto multi-stage DAGs and replay a slice.
    topology = FatTreeTopology(k=8)
    jobs = jobs_from_trace(
        trace,
        num_jobs=20,
        num_hosts=topology.num_hosts,
        structure="tpcds",
        arrivals=[0.05 * i for i in range(20)],
        seed=1,
    )
    print(f"\nReplaying {len(jobs)} TPC-DS-structured jobs built from the "
          "trace under Gurita...")
    result = simulate(topology, GuritaScheduler(), jobs)
    print(f"  average JCT: {result.average_jct():.3f}s  "
          f"(makespan {result.makespan:.3f}s, "
          f"{result.events_processed} events)")


if __name__ == "__main__":
    main()
