"""Job/coflow completion-time statistics over simulation results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import ReproError
from repro.simulator.runtime import SimulationResult
from repro.workloads.categories import NUM_CATEGORIES, category_of


@dataclass(frozen=True)
class JctSummary:
    """Distributional summary of a set of completion times."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float
    total: float

    @staticmethod
    def from_values(values: Sequence[float]) -> "JctSummary":
        if not values:
            raise ReproError("cannot summarise an empty set of completion times")
        ordered = sorted(values)
        n = len(ordered)
        return JctSummary(
            count=n,
            mean=sum(ordered) / n,
            median=ordered[n // 2] if n % 2 else (ordered[n // 2 - 1] + ordered[n // 2]) / 2,
            p95=ordered[min(n - 1, int(0.95 * n))],
            maximum=ordered[-1],
            total=sum(ordered),
        )


def jct_summary(result: SimulationResult) -> JctSummary:
    """Summary of job completion times for one run."""
    return JctSummary.from_values(list(result.job_completion_times().values()))


def cct_summary(result: SimulationResult) -> JctSummary:
    """Summary of coflow completion times for one run."""
    return JctSummary.from_values(list(result.coflow_completion_times().values()))


def jct_by_category(result: SimulationResult) -> Dict[int, List[float]]:
    """Job completion times grouped by Table-1 size category (1..7).

    Categories with no jobs are absent from the returned dict.
    """
    groups: Dict[int, List[float]] = {}
    for job in result.jobs:
        jct = job.completion_time()
        if jct is None:
            continue
        groups.setdefault(category_of(job.total_bytes), []).append(jct)
    return groups


def average_jct_by_category(result: SimulationResult) -> Dict[int, float]:
    """Mean JCT per populated Table-1 category."""
    return {
        category: sum(values) / len(values)
        for category, values in jct_by_category(result).items()
    }


def categories_present(results: Sequence[SimulationResult]) -> List[int]:
    """Categories populated in *all* of the given results (comparable)."""
    present: Optional[Set[int]] = None
    for result in results:
        cats = set(jct_by_category(result))
        present = cats if present is None else (present & cats)
    return sorted(present or [])


def all_categories() -> List[int]:
    """The category indices 1..7 of Table 1."""
    return list(range(1, NUM_CATEGORIES + 1))
