"""Equal-Cost Multi-Path routing by flow hashing.

ECMP load-balances flows over the equal-cost route candidates the topology
exposes.  Like real switches, the choice is a deterministic hash of the
flow identity, so a given flow always takes the same path (no packet
reordering) while distinct flows spread across paths.
"""

from __future__ import annotations

from typing import Tuple

from repro.jobs.flow import Flow
from repro.simulator.topology.base import Topology

#: Knuth multiplicative-hash constant (2^64 / golden ratio).
_HASH_MULTIPLIER = 0x9E3779B97F4A7C15
_HASH_MASK = (1 << 64) - 1


def flow_hash(flow_id: int, src: int, dst: int, salt: int = 0) -> int:
    """Deterministic 64-bit hash of a flow's identity.

    Real ECMP hashes the 5-tuple; the simulator's analogue is
    (flow id, src host, dst host) plus an optional salt used to vary the
    hash function across experiments.
    """
    value = (flow_id * 1_000_003 + src * 10_007 + dst * 101 + salt) & _HASH_MASK
    value = (value * _HASH_MULTIPLIER) & _HASH_MASK
    value ^= value >> 29
    value = (value * _HASH_MULTIPLIER) & _HASH_MASK
    value ^= value >> 32
    return value


class EcmpRouter:
    """Routes flows over a topology by hashing them onto path candidates."""

    def __init__(self, topology: Topology, salt: int = 0) -> None:
        self.topology = topology
        self.salt = salt

    def route_flow(self, flow: Flow) -> Tuple[int, ...]:
        """Pick the flow's route; deterministic per flow identity."""
        selector = flow_hash(flow.flow_id, flow.src, flow.dst, self.salt)
        return self.topology.route(flow.src, flow.dst, selector)
