"""Parameter sweeps: how comparisons move as one knob turns.

The paper reports point comparisons; sweeps show *where crossovers fall*
— e.g. the offered load at which priority scheduling starts paying off
over fair sharing, or how the Gurita-vs-Aalo gap moves with burstiness.

Sweep points are independent scenarios, so every ``sweep_*`` function
fans its knob values across the grid engine
(:mod:`repro.experiments.parallel`); ``parallel=1`` (the default) is the
serial degenerate case and produces bit-identical series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments.common import ScenarioConfig
from repro.experiments.parallel import GridReport, WorkUnit, run_grid


@dataclass
class SweepPoint:
    """One knob value and the per-policy average JCTs measured there."""

    value: float
    average_jcts: Dict[str, float]

    def improvement(self, baseline: str, reference: str = "gurita") -> float:
        """``baseline`` avg JCT over ``reference`` avg JCT (>1 = reference wins)."""
        for name in (baseline, reference):
            if name not in self.average_jcts:
                raise KeyError(
                    f"scheduler {name!r} was not part of this sweep point "
                    f"(measured: {sorted(self.average_jcts)})"
                )
        return self.average_jcts[baseline] / self.average_jcts[reference]


@dataclass
class SweepResult:
    """A labelled series of sweep points."""

    knob: str
    points: List[SweepPoint] = field(default_factory=list)
    #: the engine report behind this sweep (units, cache hits, timings)
    report: Optional[GridReport] = field(default=None, compare=False)

    def series(self, scheduler: str) -> List[float]:
        """The scheduler's average JCT at each knob value."""
        return [point.average_jcts[scheduler] for point in self.points]

    def improvement_series(
        self, baseline: str, reference: str = "gurita"
    ) -> List[float]:
        return [point.improvement(baseline, reference) for point in self.points]

    def crossover(
        self,
        baseline: str,
        reference: str = "gurita",
        sustained: bool = False,
    ) -> float:
        """The knob value where the reference starts beating the baseline.

        By default this is the *first crossing*: the first point whose
        improvement factor exceeds 1.0, even when a later point dips
        back below — a non-monotone series (common under bursty
        arrivals, where mid-range burst sizes can favour either policy)
        reports its earliest win, not a sustained one.  Pass
        ``sustained=True`` for the first point from which the
        improvement stays above 1.0 through the end of the sweep.

        Returns ``inf`` when the reference never crosses under the
        chosen semantics, and for an empty sweep (no points, nothing
        crossed).
        """
        factors = [
            (point.value, point.improvement(baseline, reference))
            for point in self.points
        ]
        if sustained:
            for index, (value, _) in enumerate(factors):
                if all(factor > 1.0 for _, factor in factors[index:]):
                    return value
            return float("inf")
        for value, factor in factors:
            if factor > 1.0:
                return value
        return float("inf")


def _run_sweep(
    knob: str,
    values: Sequence[float],
    configs: Sequence[ScenarioConfig],
    schedulers: Sequence[str],
    parallel: int,
    cache_dir: Optional[Union[str, Path]],
) -> SweepResult:
    """Fan one config per knob value across the grid engine."""
    units = [
        WorkUnit(config=config, schedulers=tuple(schedulers))
        for config in configs
    ]
    report = run_grid(units, parallel=parallel, cache_dir=cache_dir)  # simlint: ignore[SIM106] (default worker bumps the benchmark rebuild counter; write-only instrumentation)
    points = [
        SweepPoint(value=float(value), average_jcts=outcome.average_jcts())
        for value, outcome in zip(values, report.scenario_results())
    ]
    return SweepResult(knob=knob, points=points, report=report)


def sweep_offered_load(
    loads: Sequence[float],
    base: Optional[ScenarioConfig] = None,
    schedulers: Sequence[str] = ("pfs", "gurita"),
    parallel: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> SweepResult:
    """Sweep the offered-load calibration of the arrival span."""
    base = base if base is not None else ScenarioConfig(num_jobs=30)
    return _run_sweep(
        "offered_load",
        list(loads),
        [base.with_overrides(offered_load=load) for load in loads],
        schedulers,
        parallel,
        cache_dir,
    )


def sweep_burst_size(
    burst_sizes: Sequence[int],
    base: Optional[ScenarioConfig] = None,
    schedulers: Sequence[str] = ("pfs", "gurita"),
    parallel: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> SweepResult:
    """Sweep burst size under bursty arrivals (burstiness knob)."""
    base = (
        base
        if base is not None
        else ScenarioConfig(num_jobs=30, arrival_mode="bursty")
    )
    return _run_sweep(
        "burst_size",
        [float(size) for size in burst_sizes],
        [base.with_overrides(burst_size=size) for size in burst_sizes],
        schedulers,
        parallel,
        cache_dir,
    )


def sweep_num_jobs(
    job_counts: Sequence[int],
    base: Optional[ScenarioConfig] = None,
    schedulers: Sequence[str] = ("pfs", "gurita"),
    parallel: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
) -> SweepResult:
    """Sweep workload size at constant offered load (scale knob)."""
    base = base if base is not None else ScenarioConfig()
    return _run_sweep(
        "num_jobs",
        [float(count) for count in job_counts],
        [base.with_overrides(num_jobs=count) for count in job_counts],
        schedulers,
        parallel,
        cache_dir,
    )
