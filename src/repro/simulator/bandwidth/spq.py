"""Strict priority queuing (SPQ) rate allocation.

SPQ is the enforcement mechanism available in commodity switches (paper
§IV.B): packets of a higher-priority class are always served before those
of a lower class.  At the flow level this means class 0 flows divide each
link as if lower classes did not exist; class 1 flows divide what is left,
and so on.  Within one class, sharing is TCP-like max-min.

SPQ is work-conserving but can starve low classes — which is exactly the
problem Gurita's WRR emulation (:mod:`repro.simulator.bandwidth.wrr`)
addresses.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np
import numpy.typing as npt

from repro.simulator.bandwidth.maxmin import (
    LinkMembership,
    Route,
    water_fill,
    water_fill_membership,
)


def group_by_class(
    flow_routes: Mapping[int, Route],
    priorities: Mapping[int, int],
    num_classes: int,
) -> List[Dict[int, Route]]:
    """Split flows into per-class route maps; out-of-range classes clamp."""
    groups: List[Dict[int, Route]] = [dict() for _ in range(num_classes)]
    for flow_id, route in flow_routes.items():
        cls = priorities.get(flow_id, num_classes - 1)
        cls = min(max(cls, 0), num_classes - 1)
        groups[cls][flow_id] = route
    return groups


def allocate_spq(
    flow_routes: Mapping[int, Route],
    priorities: Mapping[int, int],
    capacities: Sequence[float],
    num_classes: int,
) -> Dict[int, float]:
    """Rates under strict priority: higher classes allocate first.

    ``priorities`` maps flow id to class (0 = highest).  Flows missing from
    the map fall into the lowest class.
    """
    residual = np.array(capacities, dtype=float)
    rates: Dict[int, float] = {}
    for class_flows in group_by_class(flow_routes, priorities, num_classes):
        if class_flows:
            rates.update(water_fill(class_flows, residual))
    return rates


def allocate_spq_memberships(
    class_members: Sequence[LinkMembership],
    residual: npt.NDArray[np.float64],
) -> Dict[int, float]:
    """SPQ rates over prebuilt per-class memberships (the engine's path).

    Identical to :func:`allocate_spq` given memberships that mirror
    :func:`group_by_class`, but performs no membership rebuilds.
    ``residual`` is mutated (the classes layer into it in priority order).
    """
    rates: Dict[int, float] = {}
    for membership in class_members:
        if len(membership):
            rates.update(water_fill_membership(membership, residual))
    return rates
