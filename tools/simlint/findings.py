"""Finding and pragma primitives shared by the simlint rules and runner.

A :class:`Finding` is one rule violation at one source location.  Pragmas
are line comments that suppress findings::

    x = time.time()  # simlint: ignore[SIM001]
    y = {1, 2}       # simlint: ignore[SIM003, SIM005]
    z = risky()      # simlint: ignore          (all rules on this line)

and a file can opt out entirely with ``# simlint: skip-file`` within its
first ten lines (reserved for generated code and fixtures).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

#: Sentinel meaning "every rule is suppressed on this line".
ALL_CODES = frozenset({"*"})

_PRAGMA_RE = re.compile(
    r"#\s*simlint:\s*(?P<verb>ignore|skip-file)"
    r"(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)

#: ``skip-file`` must appear within this many leading lines.
_SKIP_FILE_WINDOW = 10


#: Rule-code century digit -> analysis layer (SIM0xx per-file, SIM1xx
#: deep taint, SIM2xx perf, SIM3xx units/streaming).
_LAYER_BY_DIGIT = {"0": "file", "1": "deep", "2": "perf", "3": "units"}


def layer_for_code(code: str) -> str:
    """The analysis layer a rule code belongs to (``--json`` field)."""
    return _LAYER_BY_DIGIT.get(code[3:4], "file")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` (the human output format)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "layer": layer_for_code(self.code),
            "message": self.message,
        }


class PragmaIndex:
    """Per-line suppression pragmas parsed from one source file."""

    def __init__(self, source: str) -> None:
        self.skip_file = False
        self._by_line: Dict[int, FrozenSet[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            if match.group("verb") == "skip-file":
                if lineno <= _SKIP_FILE_WINDOW:
                    self.skip_file = True
                continue
            codes: Optional[str] = match.group("codes")
            if codes is None:
                self._by_line[lineno] = ALL_CODES
            else:
                parsed = frozenset(
                    code.strip().upper()
                    for code in codes.split(",")
                    if code.strip()
                )
                existing = self._by_line.get(lineno, frozenset())
                self._by_line[lineno] = parsed | existing

    def suppresses(self, line: int, code: str) -> bool:
        """Is ``code`` suppressed by a pragma on ``line``?"""
        if self.skip_file:
            return True
        codes = self._by_line.get(line)
        if codes is None:
            return False
        return codes is ALL_CODES or "*" in codes or code.upper() in codes
