"""The ``--units`` layer: interprocedural dimensional analysis.

This is simlint's fourth layer (SIM301-SIM308).  It assigns each
expression in the program a *physical unit* from a small lattice::

    Seconds   Bytes   BytesPerSec   Fraction      (the annotated units)
    Dimensionless                                  (bare numeric literals)
    Erased                                         (json/dict round-trips)
    None                                           (unknown)

Units are seeded three ways, in decreasing order of authority:

1. **annotations** — parameters, returns, class fields, and module
   globals annotated with the aliases from
   :mod:`repro.simulator.units` (``x: Seconds``, ``Optional[Bytes]``,
   ``Dict[int, BytesPerSec]``);
2. **pragmas** — ``# simlint: unit[Bytes]`` asserts the unit of the
   value produced on its line (and recovers units erased by
   serialization);
3. **name conventions** — a short table of known source names
   (``now`` / ``elapsed`` are Seconds, ``volume`` / ``*_bytes`` are
   Bytes, ``capacity`` / ``*_rate`` are BytesPerSec).

From the seeds, units propagate through assignment, arithmetic (via the
physical derivation table: ``Bytes / Seconds -> BytesPerSec``,
``Bytes / BytesPerSec -> Seconds``, ``BytesPerSec * Seconds -> Bytes``,
``same / same -> Fraction``), container element tracking, and function
calls.  Return units of unannotated functions are inferred to a fixed
point over the whole :class:`~tools.simlint.callgraph.Project`, so a
unit planted in ``jobs/flow.py`` is visible at a call site in
``theory/gap.py`` — the same interprocedural machinery that powers the
``--deep`` taint layer.

Analysis is *optimistic*: an unknown unit never fires a rule, so the
layer only reports when two **known** units disagree.  Rule semantics
live in :mod:`tools.simlint.unitrules` (SIM301-SIM305) and
:mod:`tools.simlint.memrules` (SIM306-SIM308).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from tools.simlint.callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    build_project,
    dotted_name,
)
from tools.simlint.findings import Finding, PragmaIndex
from tools.simlint.hotpaths import REGISTRY as HOT_REGISTRY
from tools.simlint.hotpaths import HotPathRegistry
from tools.simlint.memrules import (
    MEM_RULES,
    MEM_RULES_BY_CODE,
    check_generator_materialization,
    check_hot_accumulation,
    check_registry_drift,
)
from tools.simlint.unitrules import (
    UNIT_RULES,
    UNIT_RULES_BY_CODE,
    msg_annotation_conflict,
    msg_cross_compare,
    msg_erased,
    msg_mixed_arith,
    msg_return_mismatch,
    msg_sink_mismatch,
    msg_time_equality,
    msg_unitless_literal,
)

__all__ = [
    "ALL_UNITS_RULES",
    "ALL_UNITS_RULES_BY_CODE",
    "DEFAULT_UNITS_BASELINE_PATH",
    "UNITS_MODULES",
    "UNITS_REGISTRY",
    "UnitsRegistry",
    "UnitsReport",
    "units_lint_paths",
    "units_lint_project",
]

#: Default on-disk baseline for the units layer (committed empty).
DEFAULT_UNITS_BASELINE_PATH = "tools/simlint/units_baseline.json"

# ----------------------------------------------------------------------
# The unit lattice
# ----------------------------------------------------------------------
SECONDS = "Seconds"
BYTES = "Bytes"
BYTES_PER_SEC = "BytesPerSec"
FRACTION = "Fraction"
#: Bare numeric literals and counts: scales any unit without a finding.
DIMENSIONLESS = "Dimensionless"
#: Came back from a dict/JSON round-trip: unit was erased (SIM305).
ERASED = "Erased"

#: The annotated units (everything a rule can mismatch on).
UNIT_NAMES: FrozenSet[str] = frozenset({SECONDS, BYTES, BYTES_PER_SEC, FRACTION})

Unit = Optional[str]

ALL_UNITS_RULES = tuple(UNIT_RULES) + tuple(MEM_RULES)
ALL_UNITS_RULES_BY_CODE = {**UNIT_RULES_BY_CODE, **MEM_RULES_BY_CODE}


# ----------------------------------------------------------------------
# Registry (SIM308)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UnitsRegistry:
    """Which modules the units layer treats as annotated roots.

    SIM308 keeps this two-way honest: a ``repro.*`` module adopting the
    unit aliases must be listed here, and a listed module must still
    carry annotations.  Fixture projects pass their own registry.
    """

    modules: Tuple[str, ...] = ()
    #: Only modules under this prefix are required to register.
    prefix: str = "repro."

    def registered(self) -> FrozenSet[str]:
        return frozenset(self.modules)


#: The shipped annotated root set (keep sorted; SIM308 polices drift).
UNITS_MODULES: Tuple[str, ...] = (
    "repro.jobs.coflow",
    "repro.jobs.flow",
    "repro.simulator.bandwidth.engine",
    "repro.simulator.bandwidth.maxmin",
    "repro.simulator.events",
    "repro.simulator.timecmp",
    "repro.theory.gap",
    "repro.theory.lowerbound",
    "repro.workloads.generator",
)

UNITS_REGISTRY = UnitsRegistry(modules=UNITS_MODULES)


# ----------------------------------------------------------------------
# Pragmas: ``# simlint: unit[Bytes]``
# ----------------------------------------------------------------------
_UNIT_PRAGMA_RE = re.compile(r"#\s*simlint:\s*unit\[\s*(?P<unit>[A-Za-z][A-Za-z0-9]*)\s*\]")


class UnitPragmas:
    """Per-line ``unit[...]`` assertions parsed from one source file."""

    def __init__(self, source: str) -> None:
        self.by_line: Dict[int, str] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _UNIT_PRAGMA_RE.search(text)
            if match is not None and match.group("unit") in UNIT_NAMES:
                self.by_line[lineno] = match.group("unit")

    def unit_on(self, line: int) -> Unit:
        return self.by_line.get(line)


# ----------------------------------------------------------------------
# Name conventions (weakest seed: only used when nothing else is known)
# ----------------------------------------------------------------------
_NAME_UNITS: Dict[str, str] = {
    "volume": BYTES,
    "bytes_sent": BYTES,
    "capacity": BYTES_PER_SEC,
    "rate": BYTES_PER_SEC,
    "link_rate": BYTES_PER_SEC,
    "link_capacity": BYTES_PER_SEC,
    "bandwidth": BYTES_PER_SEC,
    "now": SECONDS,
    "elapsed": SECONDS,
    "horizon": SECONDS,
    "duration": SECONDS,
    "deadline": SECONDS,
    "watermark": SECONDS,
    "jct": SECONDS,
}

_SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_bytes", BYTES),
    ("_rate", BYTES_PER_SEC),
    ("_capacity", BYTES_PER_SEC),
    ("_time", SECONDS),
    ("_seconds", SECONDS),
    ("_jct", SECONDS),
)


def heuristic_unit(name: str) -> Unit:
    """Unit implied by a bare identifier, or None."""
    stripped = name.lstrip("_")
    unit = _NAME_UNITS.get(stripped)
    if unit is not None:
        return unit
    for suffix, suffix_unit in _SUFFIX_UNITS:
        if stripped.endswith(suffix):
            return suffix_unit
    return None


# ----------------------------------------------------------------------
# Annotation readers
# ----------------------------------------------------------------------
_SEQUENCE_GENERICS = frozenset(
    {"List", "Sequence", "Iterable", "Iterator", "Set", "FrozenSet", "Deque", "list", "set"}
)
_MAPPING_GENERICS = frozenset({"Dict", "Mapping", "MutableMapping", "DefaultDict", "dict"})


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the terminal dotted component.
        return node.value.strip().rsplit(".", 1)[-1].rstrip("]").strip()
    parts = dotted_name(node)
    if parts is None:
        return None
    return parts[-1]


def annotation_unit(node: Optional[ast.AST]) -> Unit:
    """The unit named by an annotation: ``Seconds``, ``Optional[Bytes]``..."""
    if node is None:
        return None
    if isinstance(node, ast.Subscript):
        base = _terminal_name(node.value)
        if base in {"Optional", "Final", "ClassVar", "Annotated"}:
            inner = node.slice
            if base == "Annotated" and isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return annotation_unit(inner)
        return None
    name = _terminal_name(node)
    if name in UNIT_NAMES:
        return name
    return None


def _annotation_container(node: Optional[ast.AST]) -> Tuple[Unit, Unit]:
    """(sequence element unit, mapping value unit) named by an annotation."""
    if not isinstance(node, ast.Subscript):
        return None, None
    base = _terminal_name(node.value)
    if base == "Optional":
        return _annotation_container(node.slice)
    inner = node.slice
    if base in _SEQUENCE_GENERICS:
        return annotation_unit(inner), None
    if base in _MAPPING_GENERICS and isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
        value = inner.elts[1]
        unit = annotation_unit(value)
        if unit is None:
            unit = _uniform_tuple_unit(value)
        return None, unit
    if base == "Tuple":
        return _uniform_tuple_unit(node), None
    return None, None


def _uniform_tuple_unit(node: ast.AST) -> Unit:
    """Unit of ``Tuple[U, U]`` / ``Tuple[U, ...]`` when every slot agrees."""
    if not isinstance(node, ast.Subscript) or _terminal_name(node.value) != "Tuple":
        return None
    elts = node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
    units = set()
    for elt in elts:
        if isinstance(elt, ast.Constant) and elt.value is Ellipsis:
            continue
        units.add(annotation_unit(elt))
    if len(units) == 1:
        return units.pop()
    return None


# ----------------------------------------------------------------------
# The derivation table
# ----------------------------------------------------------------------
_MULT_TABLE = {
    (BYTES_PER_SEC, SECONDS): BYTES,
    (SECONDS, BYTES_PER_SEC): BYTES,
}
_DIV_TABLE = {
    (BYTES, SECONDS): BYTES_PER_SEC,
    (BYTES, BYTES_PER_SEC): SECONDS,
}


def derive_binop(op: ast.operator, left: Unit, right: Unit) -> Tuple[Unit, bool]:
    """(result unit, is-mixed-unit-violation) for ``left <op> right``."""
    if isinstance(op, (ast.Add, ast.Sub)):
        if left in UNIT_NAMES and right in UNIT_NAMES:
            if left == right:
                return left, False
            return None, True
        if left in UNIT_NAMES:
            return left, False
        if right in UNIT_NAMES:
            return right, False
        if left == DIMENSIONLESS and right == DIMENSIONLESS:
            return DIMENSIONLESS, False
        return None, False
    if isinstance(op, ast.Mult):
        result = _MULT_TABLE.get((left, right))
        if result is not None:
            return result, False
        for unit, other in ((left, right), (right, left)):
            if unit in UNIT_NAMES and other in (FRACTION, DIMENSIONLESS):
                return unit, False
        if left == DIMENSIONLESS and right == DIMENSIONLESS:
            return DIMENSIONLESS, False
        return None, False
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        result = _DIV_TABLE.get((left, right))
        if result is not None:
            return result, False
        if left in UNIT_NAMES and right == left:
            return FRACTION, False
        if left in UNIT_NAMES and right in (FRACTION, DIMENSIONLESS):
            return left, False
        if left == DIMENSIONLESS and right == DIMENSIONLESS:
            return DIMENSIONLESS, False
        return None, False
    if isinstance(op, ast.Mod):
        if left in UNIT_NAMES and (right == left or right in (FRACTION, DIMENSIONLESS)):
            return left, False
        return None, False
    return None, False


def _join(units: Sequence[Unit]) -> Unit:
    """min/max/sum-style join: agree on one known unit or give up."""
    known = {u for u in units if u in UNIT_NAMES}
    if len(known) == 1:
        return next(iter(known))
    if known:
        return None
    if units and all(u in (DIMENSIONLESS, None) for u in units) and any(
        u == DIMENSIONLESS for u in units
    ):
        return DIMENSIONLESS
    return None


# ----------------------------------------------------------------------
# World: everything the per-function walker looks up
# ----------------------------------------------------------------------
class _World:
    """Unit environment shared by every scope: seeds + inferred summaries."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: full function name -> {param name -> declared unit} (annotations only)
        self.param_units: Dict[str, Dict[str, str]] = {}
        #: full function name -> declared return unit (annotations only)
        self.annotated_returns: Dict[str, str] = {}
        #: full function name -> inferred or declared return unit
        self.returns: Dict[str, Unit] = {}
        #: full class name -> {attr -> unit}
        self.class_units: Dict[str, Dict[str, str]] = {}
        #: full class name -> ordered dataclass-style (field, unit) pairs
        self.class_fields: Dict[str, List[Tuple[str, Unit]]] = {}
        #: full class name -> names of @property methods
        self.properties: Dict[str, Set[str]] = {}
        #: module name -> {global -> unit} (module-level AnnAssign)
        self.global_units: Dict[str, Dict[str, str]] = {}
        #: module name -> first line carrying a unit annotation (SIM308)
        self.usage_lines: Dict[str, int] = {}
        #: module path -> UnitPragmas
        self.pragmas: Dict[str, UnitPragmas] = {}
        for mod in project.modules.values():
            self._seed_module(mod)

    # -- construction ---------------------------------------------------
    def _seed_module(self, mod: ModuleInfo) -> None:
        self.pragmas[mod.path] = UnitPragmas(mod.source)
        globals_here: Dict[str, str] = {}
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                unit = annotation_unit(stmt.annotation)
                if unit is not None:
                    globals_here[stmt.target.id] = unit
                    self._note_usage(mod.name, stmt.annotation.lineno)
        if globals_here:
            self.global_units[mod.name] = globals_here

        for func in mod.functions.values():
            self._seed_function(mod, func)

        for cls in mod.classes.values():
            attr_units: Dict[str, str] = {}
            fields: List[Tuple[str, Unit]] = []
            for stmt in cls.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    unit = annotation_unit(stmt.annotation)
                    fields.append((stmt.target.id, unit))
                    if unit is not None:
                        attr_units[stmt.target.id] = unit
                        self._note_usage(mod.name, stmt.annotation.lineno)
            init = cls.methods.get("__init__")
            if init is not None:
                declared = self.param_units.get(init.full_name, {})
                for node in ast.walk(init.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not isinstance(node.value, ast.Name):
                        continue
                    unit = declared.get(node.value.id)
                    if unit is None:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attr_units.setdefault(target.attr, unit)
            if attr_units:
                self.class_units[cls.full_name] = attr_units
            if fields:
                self.class_fields[cls.full_name] = fields
            props = {
                name
                for name, method in cls.methods.items()
                if any(
                    _terminal_name(dec) in ("property", "cached_property")
                    for dec in method.node.decorator_list  # type: ignore[attr-defined]
                )
            }
            if props:
                self.properties[cls.full_name] = props

    def _seed_function(self, mod: ModuleInfo, func: FunctionInfo) -> None:
        node = func.node
        args = node.args  # type: ignore[attr-defined]
        declared: Dict[str, str] = {}
        for arg in [*getattr(args, "posonlyargs", []), *args.args, *args.kwonlyargs]:
            unit = annotation_unit(arg.annotation)
            if unit is not None:
                declared[arg.arg] = unit
                self._note_usage(mod.name, arg.annotation.lineno)
        if declared:
            self.param_units[func.full_name] = declared
        ret = annotation_unit(node.returns)  # type: ignore[attr-defined]
        if ret is not None:
            self.annotated_returns[func.full_name] = ret
            self.returns[func.full_name] = ret
            self._note_usage(mod.name, node.returns.lineno)  # type: ignore[attr-defined]

    def _note_usage(self, module: str, lineno: int) -> None:
        current = self.usage_lines.get(module)
        if current is None or lineno < current:
            self.usage_lines[module] = lineno

    # -- queries --------------------------------------------------------
    def return_unit(self, full_name: str) -> Unit:
        return self.returns.get(full_name)

    def global_unit(self, mod: ModuleInfo, name: str) -> Unit:
        local = self.global_units.get(mod.name, {}).get(name)
        if local is not None:
            return local
        target = mod.imports.get(name)
        if target is not None and "." in target:
            owner, bare = target.rsplit(".", 1)
            return self.global_units.get(owner, {}).get(bare)
        return None


#: emit(path, lineno, col, code, message)
_Emit = Callable[[str, int, int, str, str], None]

#: Literal values exempt from SIM304 (identity / sentinel scalars).
_EXEMPT_LITERALS = (0, 1, -1)

_TIMECMP_SUFFIX = ".timecmp"


def _is_timecmp(mod: ModuleInfo) -> bool:
    return mod.name == "timecmp" or mod.name.endswith(_TIMECMP_SUFFIX)


# ----------------------------------------------------------------------
# The per-scope walker
# ----------------------------------------------------------------------
class _Scope:
    """Walks one function (or module) body, tracking units per name."""

    def __init__(
        self,
        world: _World,
        mod: ModuleInfo,
        func: Optional[FunctionInfo],
        emit: Optional[_Emit],
        env: Optional[Dict[str, Unit]] = None,
    ) -> None:
        self.world = world
        self.project = world.project
        self.mod = mod
        self.func = func
        self.emit = emit
        self.cls_info: Optional[ClassInfo] = (
            self.project.class_for_function(func) if func is not None else None
        )
        self.pragmas = world.pragmas.get(mod.path) or UnitPragmas("")
        self.env: Dict[str, Unit] = dict(env or {})
        #: sequence-like container -> element unit
        self.elem: Dict[str, Unit] = {}
        #: mapping-like container -> value unit
        self.dval: Dict[str, Unit] = {}
        self.return_units: List[Unit] = []
        if func is not None:
            self._seed_params(func)

    def _seed_params(self, func: FunctionInfo) -> None:
        declared = self.world.param_units.get(func.full_name, {})
        args = func.node.args  # type: ignore[attr-defined]
        all_args = [*getattr(args, "posonlyargs", []), *args.args, *args.kwonlyargs]
        for arg in all_args:
            unit = declared.get(arg.arg)
            if unit is None:
                unit = heuristic_unit(arg.arg) if arg.arg not in ("self", "cls") else None
            self.env[arg.arg] = unit
            seq, mapping = _annotation_container(arg.annotation)
            if seq is not None:
                self.elem[arg.arg] = seq
            if mapping is not None:
                self.dval[arg.arg] = mapping

    # -- reporting ------------------------------------------------------
    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if self.emit is not None:
            self.emit(
                self.mod.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                code,
                message,
            )

    # -- statement walking ----------------------------------------------
    def run(self) -> None:
        body = self.func.node.body if self.func is not None else self.mod.tree.body
        self.walk_body(body)

    def infer_return(self) -> Unit:
        self.run()
        return _join(self.return_units) if self.return_units else None

    def walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._walk_nested(stmt)
        elif isinstance(stmt, ast.ClassDef):
            pass  # methods are walked from mod.functions
        elif isinstance(stmt, ast.Assign):
            self._handle_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            self._handle_annassign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._handle_augassign(stmt)
        elif isinstance(stmt, ast.Return):
            self._handle_return(stmt)
        elif isinstance(stmt, ast.Expr):
            self.unit_of(stmt.value)
        elif isinstance(stmt, ast.If):
            self.unit_of(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.unit_of(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._handle_for(stmt)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.unit_of(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, None)
            self.walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.env[handler.name] = None
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.unit_of(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.unit_of(stmt.test)
            if stmt.msg is not None:
                self.unit_of(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    self.unit_of(target.slice)

    def _walk_nested(self, stmt: ast.stmt) -> None:
        """A nested def: its own scope, seeded with the enclosing env."""
        inner = _Scope(self.world, self.mod, None, self.emit, env=self.env)
        inner.cls_info = self.cls_info
        inner.elem.update(self.elem)
        inner.dval.update(self.dval)
        args = stmt.args  # type: ignore[attr-defined]
        for arg in [*getattr(args, "posonlyargs", []), *args.args, *args.kwonlyargs]:
            unit = annotation_unit(arg.annotation)
            inner.env[arg.arg] = unit if unit is not None else heuristic_unit(arg.arg)
        inner.walk_body(stmt.body)  # type: ignore[attr-defined]
        self.env[stmt.name] = None  # type: ignore[attr-defined]

    def _handle_assign(self, stmt: ast.Assign) -> None:
        value_unit = self.unit_of(stmt.value)
        pragma = self.pragmas.unit_on(stmt.lineno)
        if pragma is not None:
            if value_unit in UNIT_NAMES and value_unit != pragma:
                self._report(stmt, "SIM301", msg_annotation_conflict(pragma, value_unit))
            value_unit = pragma
        seq, mapping = self._container_of(stmt.value)
        for target in stmt.targets:
            self._bind_target(target, value_unit, seq=seq, mapping=mapping, value=stmt.value)

    def _handle_annassign(self, stmt: ast.AnnAssign) -> None:
        declared = annotation_unit(stmt.annotation)
        value_unit: Unit = None
        if stmt.value is not None:
            value_unit = self.unit_of(stmt.value)
            if (
                declared is not None
                and value_unit in UNIT_NAMES
                and value_unit != declared
            ):
                self._report(stmt, "SIM301", msg_annotation_conflict(declared, value_unit))
        if isinstance(stmt.target, ast.Name):
            self.env[stmt.target.id] = declared or value_unit
            seq, mapping = _annotation_container(stmt.annotation)
            if seq is not None:
                self.elem[stmt.target.id] = seq
            if mapping is not None:
                self.dval[stmt.target.id] = mapping

    def _handle_augassign(self, stmt: ast.AugAssign) -> None:
        target_unit = self.unit_of(stmt.target)
        value_unit = self.unit_of(stmt.value)
        result, mixed = derive_binop(stmt.op, target_unit, value_unit)
        if mixed:
            self._report(
                stmt,
                "SIM301",
                msg_mixed_arith(_OP_SYMBOLS.get(type(stmt.op), "?"), str(target_unit), str(value_unit)),
            )
        if isinstance(stmt.target, ast.Name):
            self.env[stmt.target.id] = result

    def _handle_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            return
        unit = self.unit_of(stmt.value)
        pragma = self.pragmas.unit_on(stmt.lineno)
        if pragma is not None:
            unit = pragma
        self.return_units.append(unit)
        if self.func is None:
            return
        declared = self.world.annotated_returns.get(self.func.full_name)
        if declared is not None and unit in UNIT_NAMES and unit != declared:
            self._report(
                stmt, "SIM303", msg_return_mismatch(str(unit), declared, self.func.full_name)
            )

    def _handle_for(self, stmt: ast.For) -> None:
        self.unit_of(stmt.iter)
        elem = self.elem_unit_of(stmt.iter)
        self._bind_target(stmt.target, elem, uniform=True)
        self.walk_body(stmt.body)
        self.walk_body(stmt.orelse)

    def _bind_target(
        self,
        target: ast.expr,
        unit: Unit,
        seq: Unit = None,
        mapping: Unit = None,
        value: Optional[ast.expr] = None,
        uniform: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = unit
            if seq is not None:
                self.elem[target.id] = seq
            if mapping is not None:
                self.dval[target.id] = mapping
        elif isinstance(target, (ast.Tuple, ast.List)):
            values: List[Optional[ast.expr]] = [None] * len(target.elts)
            if value is not None and isinstance(value, ast.Tuple) and len(
                value.elts
            ) == len(target.elts):
                values = list(value.elts)
            for sub, sub_value in zip(target.elts, values):
                if sub_value is not None:
                    self._bind_target(sub, self.unit_of(sub_value))
                else:
                    self._bind_target(sub, unit if uniform else None)
        elif isinstance(target, ast.Subscript):
            self.unit_of(target.slice)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, None)

    # -- expression evaluation ------------------------------------------
    def unit_of(self, node: Optional[ast.expr]) -> Unit:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or node.value is None:
                return None
            if isinstance(node.value, (int, float)):
                return DIMENSIONLESS
            return None
        if isinstance(node, ast.Name):
            return self._name_unit(node.id)
        if isinstance(node, ast.Attribute):
            return self._attribute_unit(node)
        if isinstance(node, ast.BinOp):
            return self._binop_unit(node)
        if isinstance(node, ast.UnaryOp):
            inner = self.unit_of(node.operand)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return inner
            return None
        if isinstance(node, ast.BoolOp):
            return _join([self.unit_of(v) for v in node.values])
        if isinstance(node, ast.Compare):
            return self._compare_unit(node)
        if isinstance(node, ast.Call):
            return self._call_unit(node)
        if isinstance(node, ast.IfExp):
            self.unit_of(node.test)
            return _join([self.unit_of(node.body), self.unit_of(node.orelse)])
        if isinstance(node, ast.Subscript):
            return self._subscript_unit(node)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for elt in node.elts:
                self.unit_of(elt)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.unit_of(key)
            for value in node.values:
                self.unit_of(value)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._comp_elt_unit(node)
            return None
        if isinstance(node, ast.DictComp):
            with self._comp_scope(node.generators):
                self.unit_of(node.key)
                self.unit_of(node.value)
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.unit_of(value.value)
            return None
        if isinstance(node, ast.Starred):
            return self.unit_of(node.value)
        if isinstance(node, ast.Lambda):
            return None
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.unit_of(node.value)  # type: ignore[arg-type]
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.unit_of(node.value)
            return None
        if isinstance(node, ast.NamedExpr):
            unit = self.unit_of(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = unit
            return unit
        return None

    def _name_unit(self, name: str) -> Unit:
        if name in self.env:
            unit = self.env[name]
            if unit is not None:
                return unit
            return heuristic_unit(name)
        unit = self.world.global_unit(self.mod, name)
        if unit is not None:
            return unit
        return heuristic_unit(name)

    def _attribute_unit(self, node: ast.Attribute) -> Unit:
        value = node.value
        if isinstance(value, ast.Name) and value.id == "self" and self.cls_info is not None:
            full = self.cls_info.full_name
            unit = self.world.class_units.get(full, {}).get(node.attr)
            if unit is not None:
                return unit
            if node.attr in self.world.properties.get(full, set()):
                method = self.cls_info.methods.get(node.attr)
                if method is not None:
                    return self.world.return_unit(method.full_name)
            return heuristic_unit(node.attr)
        inner = self.unit_of(value)
        if inner == ERASED:
            return ERASED
        resolved = self.project.resolve_expr(node, self.mod, cls=self.cls_info)
        if resolved is not None:
            # A module-level constant reached through its module.
            if "." in resolved:
                owner, bare = resolved.rsplit(".", 1)
                unit = self.world.global_units.get(owner, {}).get(bare)
                if unit is not None:
                    return unit
            # Property access through an inferred attribute type.
            cls_name = resolved.rsplit(".", 1)[0]
            if node.attr in self.world.properties.get(cls_name, set()):
                return self.world.return_unit(resolved)
            cls_attr = self.world.class_units.get(cls_name, {}).get(node.attr)
            if cls_attr is not None:
                return cls_attr
        return heuristic_unit(node.attr)

    def _binop_unit(self, node: ast.BinOp) -> Unit:
        left = self.unit_of(node.left)
        right = self.unit_of(node.right)
        result, mixed = derive_binop(node.op, left, right)
        if mixed:
            self._report(
                node,
                "SIM301",
                msg_mixed_arith(_OP_SYMBOLS.get(type(node.op), "?"), str(left), str(right)),
            )
        return result

    def _compare_unit(self, node: ast.Compare) -> Unit:
        operands = [node.left, *node.comparators]
        units = [self.unit_of(op) for op in operands]
        known = [u for u in units if u in UNIT_NAMES]
        distinct = sorted(set(known))
        if len(distinct) > 1:
            self._report(node, "SIM302", msg_cross_compare(distinct[0], distinct[1]))
        elif (
            distinct == [SECONDS]
            and len(known) >= 2
            and any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
            and not _is_timecmp(self.mod)
        ):
            self._report(node, "SIM302", msg_time_equality())
        return None

    def _subscript_unit(self, node: ast.Subscript) -> Unit:
        self.unit_of(node.slice)
        value_unit = self.unit_of(node.value)
        if value_unit == ERASED:
            return ERASED
        if isinstance(node.value, ast.Name):
            name = node.value.id
            if name in self.dval:
                return self.dval[name]
            if name in self.elem:
                return self.elem[name]
        return None

    # -- containers -----------------------------------------------------
    def _container_of(self, node: ast.expr) -> Tuple[Unit, Unit]:
        """(sequence element unit, mapping value unit) of an expression."""
        seq = self.elem_unit_of(node)
        mapping: Unit = None
        if isinstance(node, ast.Name):
            mapping = self.dval.get(node.id)
        return seq, mapping

    def elem_unit_of(self, node: ast.expr) -> Unit:
        if isinstance(node, ast.Name):
            return self.elem.get(node.id)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            if not node.elts:
                return None
            return _join([self.unit_of(e) for e in node.elts])
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comp_elt_unit(node)
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "values"
                and isinstance(func.value, ast.Name)
            ):
                return self.dval.get(func.value.id)
            resolved = self.project.resolve_expr(func, self.mod, cls=self.cls_info)
            if resolved == "builtins.sorted" and node.args:
                return self.elem_unit_of(node.args[0])
        return None

    def _comp_elt_unit(self, node: ast.expr) -> Unit:
        with self._comp_scope(node.generators):  # type: ignore[attr-defined]
            return self.unit_of(node.elt)  # type: ignore[attr-defined]

    def _comp_scope(self, generators: Sequence[ast.comprehension]) -> "_CompScope":
        return _CompScope(self, generators)

    # -- calls -----------------------------------------------------------
    def _call_unit(self, node: ast.Call) -> Unit:
        arg_units: List[Unit] = []
        for arg in node.args:
            arg_units.append(self.unit_of(arg))
        kw_units: Dict[str, Unit] = {}
        for kw in node.keywords:
            unit = self.unit_of(kw.value)
            if kw.arg is not None:
                kw_units[kw.arg] = unit

        func = node.func
        resolved = self.project.resolve_expr(func, self.mod, cls=self.cls_info)

        # json round-trips erase units.
        if resolved in ("json.load", "json.loads"):
            return ERASED
        if isinstance(func, ast.Attribute) and self.unit_of(func.value) == ERASED:
            # Reads off an erased mapping stay erased; anything else on it
            # (str methods etc.) is unknown.
            if func.attr in ("get", "pop", "setdefault"):
                return ERASED
            return None

        # Unit-transparent builtins.
        if resolved in ("builtins.float", "builtins.abs", "builtins.round"):
            return arg_units[0] if arg_units else None
        if resolved in ("builtins.min", "builtins.max"):
            units = list(arg_units)
            if len(node.args) == 1:
                elem = self.elem_unit_of(node.args[0])
                if elem is not None:
                    units.append(elem)
            default = kw_units.get("default")
            if default is not None:
                units.append(default)
            return _join(units)
        if resolved == "builtins.sum":
            units = []
            if node.args:
                elem = self.elem_unit_of(node.args[0])
                if elem is not None:
                    units.append(elem)
                if len(arg_units) > 1:
                    units.append(arg_units[1])
            return _join(units) if units else None
        if resolved == "builtins.len":
            return DIMENSIONLESS
        if resolved == "builtins.int":
            return None

        result = self._check_call_sinks(node, resolved, arg_units, kw_units)
        if result is not None:
            return result
        # Unresolved method call: fall back to the name convention
        # (job.completion_time() reads as Seconds even without a type).
        if isinstance(func, ast.Attribute):
            return heuristic_unit(func.attr)
        if isinstance(func, ast.Name):
            return heuristic_unit(func.id)
        return None

    def _check_call_sinks(
        self,
        node: ast.Call,
        resolved: Optional[str],
        arg_units: List[Unit],
        kw_units: Dict[str, Unit],
    ) -> Unit:
        """Match args against the target's declared units; return call unit."""
        if resolved is None:
            return None
        target: Optional[FunctionInfo] = self.project.functions.get(resolved)
        fields: Optional[List[Tuple[str, Unit]]] = None
        result: Unit = None
        target_name = resolved
        if target is None and resolved in self.project.classes:
            cls = self.project.classes[resolved]
            init = cls.methods.get("__init__")
            if init is not None:
                target = init
                target_name = resolved
            else:
                fields = self.world.class_fields.get(resolved)
            result = None  # instances carry no scalar unit
        elif target is not None:
            result = self.world.return_unit(resolved)

        if target is not None:
            declared = self.world.param_units.get(target.full_name, {})
            params = target.params
            offset = 1 if target.cls is not None and params[:1] in (["self"], ["cls"]) else 0
            for i, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    break
                index = offset + i
                if index >= len(params):
                    break
                self._check_sink(arg, arg_units[i], params[index], declared.get(params[index]), target_name)
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                self._check_sink(
                    kw.value, kw_units.get(kw.arg), kw.arg, declared.get(kw.arg), target_name
                )
        elif fields is not None:
            by_name = dict(fields)
            for i, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    break
                if i >= len(fields):
                    break
                name, unit = fields[i]
                self._check_sink(arg, arg_units[i], name, unit, target_name)
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                self._check_sink(
                    kw.value, kw_units.get(kw.arg), kw.arg, by_name.get(kw.arg), target_name
                )
        return result

    def _check_sink(
        self,
        arg: ast.expr,
        arg_unit: Unit,
        param: str,
        declared: Optional[str],
        target: str,
    ) -> None:
        if declared is None:
            return
        pragma = self.pragmas.unit_on(getattr(arg, "lineno", 0))
        literal = _literal_value(arg)
        if literal is not None and pragma is None:
            if literal not in _EXEMPT_LITERALS:
                self._report(arg, "SIM304", msg_unitless_literal(repr(literal), param, declared, target))
            return
        if pragma is not None:
            arg_unit = pragma
        if arg_unit == ERASED:
            self._report(arg, "SIM305", msg_erased(param, declared, target))
            return
        if arg_unit in UNIT_NAMES and arg_unit != declared:
            self._report(arg, "SIM303", msg_sink_mismatch(arg_unit, param, declared, target))


class _CompScope:
    """Temporarily binds comprehension targets inside the owning scope."""

    def __init__(self, scope: _Scope, generators: Sequence[ast.comprehension]) -> None:
        self.scope = scope
        self.generators = generators
        self._saved: Dict[str, Unit] = {}

    def __enter__(self) -> "_CompScope":
        scope = self.scope
        self._saved = dict(scope.env)
        for comp in self.generators:
            scope.unit_of(comp.iter)
            elem = scope.elem_unit_of(comp.iter)
            scope._bind_target(comp.target, elem, uniform=True)
            for cond in comp.ifs:
                scope.unit_of(cond)
        return self

    def __exit__(self, *exc: object) -> None:
        self.scope.env = self._saved


_OP_SYMBOLS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
}


def _literal_value(node: ast.expr) -> Optional[float]:
    """The numeric value of a bare literal argument, else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_value(node.operand)
        return -inner if inner is not None else None
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
@dataclass
class UnitsReport:
    """Outcome of one units-layer run over a project."""

    findings: List[Finding]
    suppressed: int
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings


def units_lint_project(
    project: Project,
    registry: Optional[UnitsRegistry] = None,
    hot_registry: Optional[HotPathRegistry] = None,
) -> UnitsReport:
    """Run SIM301-SIM308 over an already-built project."""
    units_registry = registry if registry is not None else UNITS_REGISTRY
    hot = hot_registry if hot_registry is not None else HOT_REGISTRY
    world = _World(project)

    # Fixed point: infer return units for unannotated functions so units
    # cross call boundaries in both directions.
    for _ in range(6):
        changed = False
        for func in project.functions.values():
            if func.full_name in world.annotated_returns:
                continue
            mod = project.modules[func.module]
            inferred = _Scope(world, mod, func, emit=None).infer_return()
            if inferred != world.returns.get(func.full_name):
                world.returns[func.full_name] = inferred
                changed = True
        if not changed:
            break

    # Observer pass: walk everything once more with reporting on.
    raw: List[Finding] = []
    seen: Set[Tuple[str, int, int, str, str]] = set()

    def emit(path: str, line: int, col: int, code: str, message: str) -> None:
        key = (path, line, col, code, message)
        if key in seen:
            return
        seen.add(key)
        raw.append(Finding(path=path, line=line, col=col, code=code, message=message))

    for mod in project.modules.values():
        _Scope(world, mod, None, emit).run()
        for func in mod.functions.values():
            _Scope(world, mod, func, emit).run()

    check_generator_materialization(project, emit)
    check_hot_accumulation(project, hot, emit)
    check_registry_drift(
        project, units_registry.registered(), units_registry.prefix, world.usage_lines, emit
    )

    # Pragma filtering (ignore[...] / skip-file), mirroring the deep layer.
    by_module = {mod.path: mod for mod in project.modules.values()}
    pragma_index: Dict[str, PragmaIndex] = {}
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        index = pragma_index.get(finding.path)
        if index is None:
            mod = by_module.get(finding.path)
            index = PragmaIndex(mod.source if mod is not None else "")
            pragma_index[finding.path] = index
        if index.suppresses(finding.line, finding.code):
            suppressed += 1
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.code, f.col))
    return UnitsReport(
        findings=kept, suppressed=suppressed, files_checked=len(project.modules)
    )


def units_lint_paths(
    paths: Sequence[str],
    registry: Optional[UnitsRegistry] = None,
    hot_registry: Optional[HotPathRegistry] = None,
) -> UnitsReport:
    """Build a project from ``paths`` and run the units layer on it."""
    return units_lint_project(
        build_project(paths), registry=registry, hot_registry=hot_registry
    )
