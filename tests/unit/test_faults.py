"""Unit tests for the deterministic fault-injection subsystem.

Covers the pure layers: seed-derived fault streams, profile/timeline
construction, the injector's reference-counted outage state, HR channel
dispositions, and the statistics surface.
"""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.simulator.faults import (
    CANNED_PROFILES,
    HR_DELAY,
    HR_DELIVER,
    HR_DROP,
    POLICY_RESTART,
    POLICY_RESUME,
    FaultInjector,
    FaultKind,
    FaultProfile,
    FaultStats,
    HostFault,
    HRDegradation,
    LinkFault,
    RandomHostCrashes,
    RandomLinkFlaps,
    RandomSwitchFailures,
    SwitchFault,
    build_timeline,
    default_fault_horizon,
    derive_fault_seed,
    fault_stream_u64,
    fault_stream_uniform,
    profile_from_name,
)
from repro.simulator.topology.fattree import FatTreeTopology


@pytest.fixture(scope="module")
def topo():
    return FatTreeTopology(k=4)


# ----------------------------------------------------------------------
# Fault streams
# ----------------------------------------------------------------------
class TestFaultStreams:
    def test_stream_is_deterministic(self):
        a = fault_stream_u64(7, "links", 0, 1)
        assert a == fault_stream_u64(7, "links", 0, 1)

    def test_stream_varies_with_every_component(self):
        base = fault_stream_u64(7, "links", 0, 1)
        assert base != fault_stream_u64(8, "links", 0, 1)
        assert base != fault_stream_u64(7, "hosts", 0, 1)
        assert base != fault_stream_u64(7, "links", 1, 1)
        assert base != fault_stream_u64(7, "links", 0, 2)

    def test_uniform_is_in_unit_interval(self):
        for index in range(200):
            sample = fault_stream_uniform(3, "u", index)
            assert 0.0 <= sample < 1.0

    def test_derive_fault_seed_matches_unit_seed_discipline(self):
        seed = derive_fault_seed(42, "link-flap")
        assert seed == derive_fault_seed(42, "link-flap")
        assert seed != derive_fault_seed(42, "hr-loss")
        assert seed != derive_fault_seed(43, "link-flap")
        assert 0 <= seed < 2**63


# ----------------------------------------------------------------------
# Specs, profiles, timelines
# ----------------------------------------------------------------------
class TestProfiles:
    def test_canned_profiles_materialize(self, topo):
        for name in CANNED_PROFILES:
            profile = profile_from_name(name, seed=derive_fault_seed(1, name))
            timeline = build_timeline(profile, topo, horizon=10.0)
            # hr-loss degrades only the control channel: no fabric events.
            if name == "hr-loss":
                assert not timeline
                assert profile.hr is not None
            else:
                assert timeline, name

    def test_unknown_profile_raises(self):
        with pytest.raises(FaultError):
            profile_from_name("not-a-profile")

    def test_intensity_scales_incident_count(self, topo):
        seed = derive_fault_seed(5, "link-flap")
        light = profile_from_name("link-flap", intensity=1.0, seed=seed)
        heavy = profile_from_name("link-flap", intensity=3.0, seed=seed)
        few = build_timeline(light, topo, horizon=10.0)
        many = build_timeline(heavy, topo, horizon=10.0)
        assert len(many) > len(few)

    def test_timeline_is_deterministic_and_sorted(self, topo):
        profile = profile_from_name(
            "chaos", seed=derive_fault_seed(9, "chaos")
        )
        one = build_timeline(profile, topo, horizon=20.0)
        two = build_timeline(profile, topo, horizon=20.0)
        assert one == two
        assert [a.time for a in one] == sorted(a.time for a in one)

    def test_scheduled_specs_expand_to_their_cable(self, topo):
        cable = next(iter(topo.links))
        spec = LinkFault(
            src_node=cable.src_node, dst_node=cable.dst_node,
            at=1.0, duration=2.0,
        )
        profile = FaultProfile(name="one-link", specs=(spec,), seed=3)
        timeline = build_timeline(profile, topo, horizon=10.0)
        downs = [a for a in timeline if a.kind == FaultKind.LINK_DOWN]
        ups = [a for a in timeline if a.kind == FaultKind.LINK_UP]
        assert len(downs) == 1 and len(ups) == 1
        # Both directions of the cable go down together.
        assert len(downs[0].links) == 2
        assert downs[0].time == 1.0 and ups[0].time == 3.0

    def test_switch_fault_downs_every_attached_link(self, topo):
        switch = next(
            link.src_node
            for link in topo.links
            if not link.src_node.startswith("h")
        )
        profile = FaultProfile(
            name="one-switch",
            specs=(SwitchFault(node=switch, at=2.0, duration=1.0),),
            seed=11,
        )
        timeline = build_timeline(profile, topo, horizon=10.0)
        downs = [a for a in timeline if a.kind == FaultKind.SWITCH_DOWN]
        assert len(downs) == 1
        # An edge switch in a k=4 FatTree has 4 attached duplex cables.
        assert len(downs[0].links) >= 4

    def test_host_fault_policies(self, topo):
        for policy in (POLICY_RESTART, POLICY_RESUME):
            profile = FaultProfile(
                name="crash",
                specs=(HostFault(host=0, at=1.0, duration=1.0, policy=policy),),
                seed=1,
            )
            timeline = build_timeline(profile, topo, horizon=10.0)
            down = next(
                a for a in timeline if a.kind == FaultKind.HOST_DOWN
            )
            assert down.hosts == (0,)
            assert down.policy == policy

    def test_hr_degradation_validates_fractions(self):
        with pytest.raises(FaultError):
            HRDegradation(drop_fraction=0.8, delay_fraction=0.4)
        with pytest.raises(FaultError):
            HRDegradation(drop_fraction=-0.1)

    def test_default_fault_horizon_covers_arrivals(self):
        assert default_fault_horizon([0.0, 2.0, 5.0]) == 11.0
        assert default_fault_horizon([]) == 1.0


# ----------------------------------------------------------------------
# Injector state machine
# ----------------------------------------------------------------------
class TestInjector:
    def _injector(self, topo, specs, hr=None):
        profile = FaultProfile(name="t", specs=tuple(specs), hr=hr, seed=2)
        return FaultInjector(profile, topo, horizon=10.0)

    def test_refcounted_link_outage(self, topo):
        injector = self._injector(topo, [])
        newly = injector.links_down([3, 4])
        assert newly == [3, 4]
        assert injector.links_down([3]) == []  # second fault, same link
        assert injector.links_up([3]) == []  # one repair outstanding
        assert 3 in injector.downed_links
        assert injector.links_up([3]) == [3]  # last repair restores it
        assert 3 not in injector.downed_links

    def test_refcounted_host_outage(self, topo):
        injector = self._injector(topo, [])
        assert injector.hosts_down([5], POLICY_RESTART) == [5]
        assert injector.hosts_down([5], POLICY_RESTART) == []
        assert injector.hosts_up([5]) == []
        assert injector.hosts_up([5]) == [5]
        assert 5 not in injector.crashed_hosts

    def test_hr_disposition_is_deterministic_per_round(self, topo):
        hr = HRDegradation(drop_fraction=0.5, delay_fraction=0.3)
        one = self._injector(topo, [], hr=hr)
        two = self._injector(topo, [], hr=hr)
        rounds = [one.hr_disposition(i, now=float(i)) for i in range(50)]
        assert rounds == [two.hr_disposition(i, now=float(i)) for i in range(50)]
        kinds = {kind for kind, _delay in rounds}
        assert kinds <= {HR_DELIVER, HR_DROP, HR_DELAY}
        assert HR_DROP in kinds and HR_DELAY in kinds

    def test_hr_disposition_without_degradation_always_delivers(self, topo):
        injector = self._injector(topo, [])
        assert injector.hr_disposition(0, now=0.0) == (HR_DELIVER, 0.0)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
class TestFaultStats:
    def test_recovery_aggregates(self):
        stats = FaultStats(recovery_seconds=[1.0, 3.0])
        assert stats.max_recovery_seconds == 3.0
        assert stats.mean_recovery_seconds == 2.0
        assert FaultStats().max_recovery_seconds == 0.0

    def test_staleness_histogram_buckets(self):
        stats = FaultStats(hr_staleness=[0.05, 0.15, 0.15, 0.9])
        assert stats.staleness_histogram([0.1, 0.2]) == [1, 2, 1]
        assert FaultStats().staleness_histogram([0.1]) == [0, 0]


# ----------------------------------------------------------------------
# Reporting surfaces
# ----------------------------------------------------------------------
class TestCounterSurface:
    def test_fault_counters_zero_filled_without_profile(self):
        from repro.simulator.observability import fault_counters
        from repro.simulator.runtime import SimulationResult

        counters = fault_counters(
            SimulationResult(
                jobs=[], makespan=0.0, events_processed=0,
                reallocations=0, scheduler_name="none",
            )
        )
        assert counters["faults_injected"] == 0.0
        assert counters["flows_rerouted"] == 0.0
        assert counters["max_hr_staleness"] == 0.0

    def test_format_fault_table_renders_all_schedulers(self):
        from repro.metrics.report import format_fault_table

        table = format_fault_table(
            {
                "gurita": {"flows_rerouted": 3.0, "flow_restarts": 1.0},
                "pfs": {"flows_rerouted": 2.0},
            }
        )
        assert "gurita" in table and "pfs" in table
        assert "rerouted" in table

    def test_format_degradation_table(self):
        from repro.metrics.report import format_degradation_table

        table = format_degradation_table(
            {"link-flap": {"gurita": 1.1, "pfs": 1.4}}
        )
        assert "link-flap" in table
        assert "1.10x" in table and "1.40x" in table
