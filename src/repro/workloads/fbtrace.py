"""Facebook coflow trace: parser, writer, and calibrated synthesizer.

The paper replays the public coflow benchmark trace collected from 3000
machines / 150 racks of a Facebook datacenter (distributed with Varys as
``FB2010-1Hr-150-0.txt``).  That file is not redistributable here, so this
module provides both:

* :func:`parse_trace` / :func:`write_trace` for the exact on-disk format,
  so the real trace can be dropped in, and
* :func:`synthesize_trace`, a generator calibrated to the trace's published
  marginals — heavy-tailed coflow sizes spanning the paper's seven job
  categories (most coflows tiny, a fat tail of multi-TB shuffles),
  heavy-tailed mapper/reducer fan-in, Poisson arrivals over an hour.

Trace format (one coflow per line after the header)::

    <num_machines> <num_coflows>
    <id> <arrival_ms> <m> <mapper_1> ... <mapper_m> <r> <reducer_1>:<MB_1> ...

Machine indices are 1-based rack locations in the original file; here they
index hosts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from repro.errors import TraceFormatError
from repro.workloads.categories import MB

#: Machine count of the original Facebook trace.
FB_TRACE_MACHINES = 3000

#: Duration of the original trace (one hour), in seconds.
FB_TRACE_DURATION = 3600.0


@dataclass(frozen=True)
class TraceCoflow:
    """One coflow record: where its mappers/reducers sit and reducer bytes."""

    coflow_id: int
    arrival_seconds: float
    mappers: Tuple[int, ...]
    #: (machine, bytes received by that reducer)
    reducers: Tuple[Tuple[int, float], ...]

    @property
    def total_bytes(self) -> float:
        return sum(size for _machine, size in self.reducers)

    @property
    def num_flows(self) -> int:
        """Width when every mapper feeds every reducer."""
        return len(self.mappers) * len(self.reducers)

    def flow_specs(self) -> List[Tuple[int, int, float]]:
        """Expand into (src, dst, size) specs: mapper x reducer bipartite.

        Each reducer's bytes are split evenly across the mappers feeding
        it, the standard interpretation of the trace format.
        """
        specs: List[Tuple[int, int, float]] = []
        num_mappers = len(self.mappers)
        for reducer, size in self.reducers:
            per_mapper = size / num_mappers
            for mapper in self.mappers:
                if mapper != reducer:
                    specs.append((mapper, reducer, per_mapper))
                # A mapper co-located with its reducer moves no network
                # bytes, so that share simply never hits the fabric.
        if not specs:
            # Degenerate but possible: every mapper co-located with the
            # reducer.  Emit one loop-free flow to a neighbour machine.
            reducer, size = self.reducers[0]
            src = self.mappers[0]
            dst = reducer if reducer != src else (reducer + 1)
            specs.append((src, dst, size))
        return specs


# ----------------------------------------------------------------------
# On-disk format
# ----------------------------------------------------------------------
def parse_trace(path: Union[str, Path]) -> Tuple[int, List[TraceCoflow]]:
    """Parse a Varys-format coflow trace file."""
    lines = Path(path).read_text().strip().splitlines()
    if not lines:
        raise TraceFormatError(f"{path}: empty trace file")
    header = lines[0].split()
    if len(header) != 2:
        raise TraceFormatError(f"{path}: header must be '<machines> <coflows>'")
    num_machines, num_coflows = int(header[0]), int(header[1])
    if num_coflows != len(lines) - 1:
        raise TraceFormatError(
            f"{path}: header promises {num_coflows} coflows, "
            f"found {len(lines) - 1} lines"
        )
    coflows: List[TraceCoflow] = []
    for line_no, line in enumerate(lines[1:], start=2):
        coflows.append(_parse_line(line, line_no, num_machines))
    return num_machines, coflows


def _parse_line(line: str, line_no: int, num_machines: int) -> TraceCoflow:
    tokens = line.split()
    try:
        coflow_id = int(tokens[0])
        arrival_ms = float(tokens[1])
        num_mappers = int(tokens[2])
        mappers = tuple(int(t) for t in tokens[3 : 3 + num_mappers])
        cursor = 3 + num_mappers
        num_reducers = int(tokens[cursor])
        cursor += 1
        reducers = []
        for token in tokens[cursor : cursor + num_reducers]:
            machine_text, mb_text = token.split(":")
            reducers.append((int(machine_text), float(mb_text) * MB))
        if len(mappers) != num_mappers or len(reducers) != num_reducers:
            raise ValueError("token count mismatch")
    except (ValueError, IndexError) as exc:
        raise TraceFormatError(f"line {line_no}: malformed coflow record") from exc
    for machine in list(mappers) + [m for m, _ in reducers]:
        if not 0 <= machine < num_machines:
            raise TraceFormatError(
                f"line {line_no}: machine {machine} outside 0..{num_machines - 1}"
            )
    return TraceCoflow(
        coflow_id=coflow_id,
        arrival_seconds=arrival_ms / 1000.0,
        mappers=mappers,
        reducers=tuple(reducers),
    )


def write_trace(
    path: Union[str, Path],
    coflows: Sequence[TraceCoflow],
    num_machines: int,
) -> None:
    """Write coflows in the Varys trace format."""
    lines = [f"{num_machines} {len(coflows)}"]
    for coflow in coflows:
        parts = [
            str(coflow.coflow_id),
            str(int(round(coflow.arrival_seconds * 1000.0))),
            str(len(coflow.mappers)),
            *(str(m) for m in coflow.mappers),
            str(len(coflow.reducers)),
            *(f"{machine}:{size / MB:.9g}" for machine, size in coflow.reducers),
        ]
        lines.append(" ".join(parts))
    Path(path).write_text("\n".join(lines) + "\n")


# ----------------------------------------------------------------------
# Calibrated synthesis
# ----------------------------------------------------------------------
def _sample_total_bytes(rng: random.Random, scale: float) -> float:
    """Heavy-tailed coflow size spanning the paper's categories I..VII.

    A three-component lognormal mixture: most coflows are MB-scale, a
    sizeable middle class is 100MB–10GB, and a thin tail reaches multi-TB —
    matching the published shape of the Facebook trace where the largest
    few percent of coflows carry most of the bytes.
    """
    roll = rng.random()
    if roll < 0.60:
        exponent = rng.gauss(0.9, 0.7)  # median ~8 MB
    elif roll < 0.92:
        exponent = rng.gauss(2.8, 0.9)  # median ~630 MB
    else:
        exponent = rng.gauss(4.6, 0.8)  # median ~40 GB
    exponent = min(max(exponent, 0.2), 6.2)  # clamp to ~1.6 MB .. ~1.6 TB
    return (10.0**exponent) * MB * scale


def _sample_fanin(rng: random.Random, cap: int, total_bytes: float) -> int:
    """Mapper/reducer count, correlated with coflow size.

    In the Facebook trace, the coflows that carry most of the bytes are
    also the *wide* ones — elephants shuffle across most ports, which is
    what makes them block mice under per-flow fairness.  Small coflows are
    narrow (1-3 endpoints); width grows roughly with log(size).
    """
    if total_bytes < 100 * MB:
        value = 1 + rng.randrange(3)
    elif total_bytes < 10_000 * MB:
        value = int(rng.lognormvariate(1.6, 0.6))
    else:
        value = int(rng.lognormvariate(2.6, 0.5))
    return min(max(value, 1), cap)


def synthesize_trace(
    num_coflows: int,
    num_machines: int = FB_TRACE_MACHINES,
    duration: float = FB_TRACE_DURATION,
    seed: int = 0,
    size_scale: float = 1.0,
    max_fanin: int = 25,
) -> List[TraceCoflow]:
    """Generate a synthetic Facebook-like coflow trace.

    Parameters
    ----------
    num_coflows:
        Records to generate.
    num_machines:
        Machine-id space (mappers/reducers are placed uniformly).
    duration:
        Arrivals are uniform over [0, duration) — the Poisson-process
        order statistics — then sorted.
    size_scale:
        Multiplier on all byte counts; < 1 speeds up simulations while
        preserving relative job sizes.
    max_fanin:
        Cap on mapper and reducer counts (bounds flows per coflow at
        ``max_fanin**2``).
    """
    if num_coflows < 1:
        raise TraceFormatError("need at least one coflow")
    if num_machines < 2:
        raise TraceFormatError("need at least two machines")
    rng = random.Random(seed)
    arrivals = sorted(rng.uniform(0.0, duration) for _ in range(num_coflows))
    coflows: List[TraceCoflow] = []
    for coflow_id, arrival in enumerate(arrivals):
        # Width is correlated with the *unscaled* size so that size_scale
        # rescales volumes without perturbing the sampled structure.
        raw_total = _sample_total_bytes(rng, 1.0)
        total = raw_total * size_scale
        num_mappers = _sample_fanin(rng, max_fanin, raw_total)
        num_reducers = _sample_fanin(rng, max_fanin, raw_total)
        machines = rng.sample(
            range(num_machines), min(num_mappers + num_reducers, num_machines)
        )
        mappers = tuple(machines[:num_mappers])
        reducer_hosts = machines[num_mappers:]
        if not reducer_hosts:  # all slots went to mappers on tiny clusters
            mappers = tuple(machines[:-1])
            reducer_hosts = machines[-1:]
        weights = [rng.uniform(0.5, 1.5) for _ in reducer_hosts]
        weight_sum = sum(weights)
        reducers = tuple(
            (host, total * w / weight_sum)
            for host, w in zip(reducer_hosts, weights)
        )
        coflows.append(
            TraceCoflow(
                coflow_id=coflow_id,
                arrival_seconds=arrival,
                mappers=mappers,
                reducers=reducers,
            )
        )
    return coflows
