"""Facebook TAO job structure (Bronson et al., USENIX ATC 2013).

TAO serves the social graph with massive read fan-out: a request expands
into many parallel association-list fetches whose results are merged, with
a short dependency depth but great width.  The paper uses "FB-Tao
structure" as its second DAG template: wide parallel chains funnelling
into a small merge stage — an inverted-tree / multi-parallel-chain hybrid
that is *on-and-off* by construction (wide early stages, tiny late ones).

The default template has ``fanout`` parallel two-deep chains merging into
one aggregation coflow and a final response coflow (depth 4)::

    fetch_1a -> fetch_1b \\
    fetch_2a -> fetch_2b  +--> merge --> respond
    fetch_3a -> fetch_3b /

Early fetch stages carry nearly all the bytes; the merge and response
stages are small — the shape that TBS schedulers punish and Gurita's
per-stage blocking effect rewards.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import WorkloadError
from repro.workloads.shapes import DagShape

#: Default number of parallel fetch chains.
DEFAULT_FANOUT = 3

#: Bytes fraction carried by (fetch_a, fetch_b, merge, respond) stages.
STAGE_WEIGHTS: Tuple[float, float, float, float] = (0.60, 0.30, 0.08, 0.02)


def tao_shape(fanout: int = DEFAULT_FANOUT) -> DagShape:
    """The TAO DAG: ``fanout`` 2-chains -> merge -> respond.

    Node layout: respond=0, merge=1, then per chain c:
    fetch_b = 2 + 2c (feeds merge), fetch_a = 3 + 2c (feeds fetch_b).
    """
    if fanout < 1:
        raise WorkloadError("TAO fanout must be >= 1")
    edges: List[Tuple[int, int]] = [(1, 0)]  # merge feeds respond
    for c in range(fanout):
        fetch_b = 2 + 2 * c
        fetch_a = 3 + 2 * c
        edges.append((fetch_b, 1))
        edges.append((fetch_a, fetch_b))
    return DagShape(name=f"fb-tao-{fanout}", num_nodes=2 + 2 * fanout, edges=tuple(edges))


def tao_volumes(total_bytes: float, fanout: int = DEFAULT_FANOUT) -> List[float]:
    """Split a job's total bytes over the TAO DAG's nodes.

    The first fetch wave gets 60% of the bytes, the second 30% (split
    evenly across chains); merge and respond get the small remainder.
    """
    if fanout < 1:
        raise WorkloadError("TAO fanout must be >= 1")
    wave_a, wave_b, merge, respond = STAGE_WEIGHTS
    volumes = [total_bytes * respond, total_bytes * merge]
    for _chain in range(fanout):
        volumes.append(total_bytes * wave_b / fanout)  # fetch_b
        volumes.append(total_bytes * wave_a / fanout)  # fetch_a
    return volumes
