"""Unit tests for exponential priority thresholds."""

import pytest

from repro.errors import SchedulerError
from repro.schedulers.thresholds import ExponentialThresholds


class TestBoundaries:
    def test_default_spacing_is_powers_of_ten(self):
        thresholds = ExponentialThresholds(4, first=10e6, base=10.0)
        assert thresholds.boundaries == pytest.approx([10e6, 100e6, 1000e6])

    def test_single_class_has_no_boundaries(self):
        assert ExponentialThresholds(1).boundaries == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SchedulerError):
            ExponentialThresholds(0)
        with pytest.raises(SchedulerError):
            ExponentialThresholds(4, first=-1.0)
        with pytest.raises(SchedulerError):
            ExponentialThresholds(4, base=1.0)


class TestClassification:
    def test_small_scores_get_top_class(self):
        thresholds = ExponentialThresholds(4, first=10.0, base=10.0)
        assert thresholds.class_of(0.0) == 0
        assert thresholds.class_of(9.99) == 0

    def test_boundary_is_exclusive_of_lower_class(self):
        thresholds = ExponentialThresholds(4, first=10.0, base=10.0)
        assert thresholds.class_of(10.0) == 1
        assert thresholds.class_of(100.0) == 2

    def test_huge_scores_get_bottom_class(self):
        thresholds = ExponentialThresholds(4, first=10.0, base=10.0)
        assert thresholds.class_of(1e12) == 3

    def test_monotone_in_score(self):
        thresholds = ExponentialThresholds(8, first=1.0, base=2.0)
        scores = [0.5 * 2**i for i in range(12)]
        classes = [thresholds.class_of(s) for s in scores]
        assert classes == sorted(classes)

    def test_demoted_applies_floor(self):
        thresholds = ExponentialThresholds(4, first=10.0, base=10.0)
        assert thresholds.demoted(0.0, floor_class=2) == 2
        assert thresholds.demoted(1e9, floor_class=2) == 3
