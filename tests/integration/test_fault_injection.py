"""Integration tests for fault injection and graceful degradation.

The robustness contracts, end to end:

* a fixed fault seed produces bit-identical JCTs whether the scenario
  runs serially or through the parallel grid engine;
* a zero-fault run is untouched by the subsystem's existence (canonical
  encodings — and therefore unit seeds and cache keys — are unchanged
  for configs that do not opt in);
* under HR degradation receivers keep scheduling on stale Ψ̈ instead of
  deadlocking;
* the ECMP router degrades with typed errors, never arithmetic ones;
* the runtime invariants hold in strict mode throughout fault/repair
  cycles, including the new downed-link / crashed-host checks;
* the incremental engine stays coherent across capacity revocation and
  rerouting.
"""

from __future__ import annotations

import pytest

from repro.errors import NoPathError
from repro.experiments.chaos import BASELINE, chaos_configs, run_chaos
from repro.experiments.common import (
    ScenarioConfig,
    build_jobs,
    build_topology,
    run_scenario,
)
from repro.experiments.parallel import WorkUnit, canonical_config, run_grid
from repro.jobs.flow import Flow
from repro.schedulers.registry import make_scheduler
from repro.simulator.bandwidth.engine import AllocationState
from repro.simulator.bandwidth.request import AllocationRequest
from repro.simulator.faults import (
    POLICY_RESUME,
    FaultProfile,
    HostFault,
    HRDegradation,
    derive_fault_seed,
    profile_from_name,
)
from repro.simulator.routing.ecmp import EcmpRouter, select_route
from repro.simulator.runtime import CoflowSimulation, simulate
from repro.simulator.topology.fattree import FatTreeTopology

FAULTED = ScenarioConfig(
    name="faulted",
    num_jobs=10,
    fattree_k=4,
    seed=7,
    schedulers=("pfs", "gurita"),
    fault_profile="chaos",
    fault_intensity=1.0,
    fault_seed=123,
)


def _jcts(outcome):
    return {
        name: sim.job_completion_times()
        for name, sim in outcome.results.items()
    }


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestFaultDeterminism:
    def test_serial_and_parallel_runs_are_bit_identical(self):
        serial = run_scenario(FAULTED)
        report = run_grid([WorkUnit(config=FAULTED)] , parallel=2)
        (parallel_outcome,) = report.scenario_results()
        assert _jcts(serial) == _jcts(parallel_outcome)

    def test_repeated_runs_are_bit_identical(self):
        assert _jcts(run_scenario(FAULTED)) == _jcts(run_scenario(FAULTED))

    def test_fault_seed_actually_changes_the_timeline(self):
        other = FAULTED.with_overrides(fault_seed=124)
        assert _jcts(run_scenario(FAULTED)) != _jcts(run_scenario(other))

    def test_chaos_report_is_deterministic(self):
        config = FAULTED.with_overrides(
            name="chaos-det", fault_profile="", fault_seed=0
        )
        one = run_chaos(config, profiles=("link-flap",), parallel=1)
        two = run_chaos(config, profiles=("link-flap",), parallel=2)
        assert _jcts(one.baseline) == _jcts(two.baseline)
        assert _jcts(one.outcomes["link-flap"]) == _jcts(
            two.outcomes["link-flap"]
        )
        assert one.degradation("link-flap") == two.degradation("link-flap")


# ----------------------------------------------------------------------
# Zero-fault neutrality
# ----------------------------------------------------------------------
class TestZeroFaultNeutrality:
    def test_default_config_encoding_has_no_fault_fields(self):
        encoding = canonical_config(ScenarioConfig())
        assert "fault_profile" not in encoding
        assert "fault_intensity" not in encoding
        assert "fault_seed" not in encoding

    def test_faulted_config_encoding_differs(self):
        assert canonical_config(FAULTED) != canonical_config(
            FAULTED.with_overrides(
                fault_profile="", fault_intensity=1.0, fault_seed=0
            )
        )

    def test_chaos_baseline_strips_fault_fields(self):
        configs = chaos_configs(FAULTED, profiles=("link-flap",))
        baseline = configs[0]
        assert baseline.fault_profile == ""
        assert baseline.fault_seed == 0
        assert BASELINE in baseline.name

    def test_no_profile_run_reports_no_fault_stats(self):
        outcome = run_scenario(
            FAULTED.with_overrides(fault_profile="", fault_seed=0)
        )
        for result in outcome.results.values():
            assert result.fault_stats is None


# ----------------------------------------------------------------------
# HR degradation: stale Ψ̈ continuation, no deadlock
# ----------------------------------------------------------------------
class TestHRDegradation:
    def test_receivers_continue_on_stale_psi(self):
        config = FAULTED.with_overrides(
            name="hr", fault_profile="hr-loss", schedulers=("gurita",)
        )
        outcome = run_scenario(config)
        result = outcome.results["gurita"]
        stats = result.fault_stats
        assert stats is not None
        assert stats.hr_rounds_dropped > 0
        # The decisive assertion: every job still completes — receivers
        # schedule on their stale view rather than blocking on the HR.
        assert all(job.completion_time() is not None for job in result.jobs)
        assert stats.max_hr_staleness > 0.0

    def test_total_hr_loss_with_failover_completes(self):
        topology = FatTreeTopology(k=4)
        config = FAULTED.with_overrides(schedulers=("gurita",))
        jobs = build_jobs(config, topology.num_hosts)
        # Crash every host that serves as an HR for a while: pick host 0
        # and rely on failover election to move the role.
        profile = FaultProfile(
            name="hr-crash",
            specs=(HostFault(host=0, at=0.0005, duration=0.02),),
            hr=HRDegradation(drop_fraction=0.5),
            seed=derive_fault_seed(7, "hr-crash"),
        )
        result = simulate(
            topology, make_scheduler("gurita"), jobs, faults=profile
        )
        assert all(job.completion_time() is not None for job in result.jobs)


# ----------------------------------------------------------------------
# Typed routing errors
# ----------------------------------------------------------------------
class TestEcmpDegradation:
    def test_select_route_refuses_empty_candidates(self):
        with pytest.raises(NoPathError):
            select_route([], selector=12345)

    def test_partitioned_pair_raises_no_path(self):
        topology = FatTreeTopology(k=4)
        router = EcmpRouter(topology)
        # Down every link attached to host 0's node: full partition.
        host_node = "h0"
        downed = {
            link.link_id
            for link in topology.links
            if host_node in (link.src_node, link.dst_node)
        }
        router.set_downed_links(downed)
        flow = Flow(flow_id=1, coflow_id=1, src=0, dst=5,
                    size_bytes=100)
        with pytest.raises(NoPathError):
            router.route_flow(flow)

    def test_reroute_is_deterministic_and_avoids_downed_links(self):
        topology = FatTreeTopology(k=4)
        router = EcmpRouter(topology)
        flow = Flow(flow_id=3, coflow_id=1, src=0, dst=9,
                    size_bytes=100)
        original = router.route_flow(flow)
        # Down a link on the chosen path that alternate paths avoid (the
        # first hop is the host's only uplink; downing it would partition).
        candidates = router.alive_routes(flow.src, flow.dst)
        target = next(
            link_id
            for link_id in original
            if any(link_id not in c for c in candidates)
        )
        router.set_downed_links({target})
        rerouted = router.route_flow(flow)
        assert target not in rerouted
        assert rerouted == router.route_flow(flow)
        # Repair: the flow hashes back onto its original path.
        router.set_downed_links(set())
        assert router.route_flow(flow) == original


# ----------------------------------------------------------------------
# Invariants under faults
# ----------------------------------------------------------------------
class TestInvariantsUnderFaults:
    @pytest.mark.parametrize("profile", ["link-flap", "host-crash", "chaos"])
    def test_strict_invariants_hold_through_fault_cycles(self, profile):
        config = FAULTED.with_overrides(
            name=f"inv-{profile}", fault_profile=profile
        )
        topology = build_topology(config)
        jobs = build_jobs(config, topology.num_hosts)
        faults = profile_from_name(
            profile, seed=derive_fault_seed(config.seed, profile)
        )
        sim = CoflowSimulation(
            topology,
            make_scheduler("gurita"),
            jobs,
            check_invariants=True,
            strict_invariants=True,
            faults=faults,
        )
        result = sim.run()
        assert result.invariant_report is not None
        assert result.invariant_report.clean

    def test_resume_policy_preserves_progress(self):
        config = FAULTED.with_overrides(schedulers=("pfs",))
        topology = build_topology(config)
        jobs_restart = build_jobs(config, topology.num_hosts)
        jobs_resume = build_jobs(config, topology.num_hosts)
        crash = dict(host=0, at=0.001, duration=0.01)
        restart = simulate(
            build_topology(config), make_scheduler("pfs"), jobs_restart,
            faults=FaultProfile(
                name="r0", seed=1,
                specs=(HostFault(policy="restart", **crash),),
            ),
        )
        resume = simulate(
            build_topology(config), make_scheduler("pfs"), jobs_resume,
            faults=FaultProfile(
                name="r1", seed=1,
                specs=(HostFault(policy=POLICY_RESUME, **crash),),
            ),
        )
        assert restart.fault_stats is not None
        assert resume.fault_stats is not None
        assert resume.fault_stats.flow_restarts == 0
        # Restart-from-zero can only prolong the schedule relative to
        # checkpoint-resume (identical fault timing otherwise).
        if restart.fault_stats.flow_restarts > 0:
            assert restart.makespan >= resume.makespan


# ----------------------------------------------------------------------
# Engine coherence under revocation / rerouting
# ----------------------------------------------------------------------
class TestEngineFaultSurface:
    def _state(self):
        topology = FatTreeTopology(k=4)
        state = AllocationState(topology.links.capacities())
        return topology, state

    def test_set_capacity_revokes_and_restores(self):
        _topology, state = self._state()
        original = state.capacity_of(0)
        state.set_capacity(0, 0.0)
        assert state.capacity_of(0) == 0.0
        state.set_capacity(0, original)
        assert state.capacity_of(0) == original
        assert state.stats.capacity_revocations == 2

    def test_set_capacity_rejects_bad_input(self):
        _topology, state = self._state()
        with pytest.raises(Exception):
            state.set_capacity(10**9, 1.0)
        with pytest.raises(Exception):
            state.set_capacity(0, -1.0)

    def test_update_route_preserves_class_membership(self):
        topology, state = self._state()
        flow = Flow(flow_id=1, coflow_id=1, src=0, dst=9,
                    size_bytes=100)
        router = EcmpRouter(topology)
        route = router.route_flow(flow)
        state.add_flow(flow.flow_id, route)
        alternates = router.alive_routes(flow.src, flow.dst)
        new_route = next(r for r in alternates if r != route)
        state.update_route(flow.flow_id, new_route)
        rates = state.allocate(AllocationRequest())
        assert rates[flow.flow_id] > 0.0
