"""Observability: link utilisation, class accounting, engine counters.

An optional probe that snapshots the network at every reallocation:
per-link utilisation, bytes served per priority class, and a starvation
detector (flows stuck at rate zero).  Used by the ablation benches to
*show* — rather than assert — that Gurita's WRR emulation removes
starvation while raw SPQ exhibits it.

Also the reporting surface for the incremental allocation engine:
:func:`allocation_counters` condenses a run's epoch bookkeeping (epochs
skipped via the dirty flag, rate-cache hits, incremental rows applied,
full membership rebuilds) into one :class:`AllocationCounters` snapshot —
the acceptance metric for the engine is read from here.  Runs with the
opt-in invariant checker enabled additionally surface their violation
counters through :func:`invariant_counters`, and fault-injected runs
surface their degradation/recovery counters through
:func:`fault_counters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.simulator.bandwidth.engine import EngineStats
from repro.simulator.faults import FaultStats
from repro.simulator.invariants import InvariantChecker, InvariantReport
from repro.simulator.runtime import CoflowSimulation, SimulationResult

if TYPE_CHECKING:  # import-only: the experiments layer sits above this one
    from repro.experiments.parallel import GridReport


@dataclass
class UtilizationSample:
    """One snapshot of network state at a reallocation instant."""

    time: float
    active_flows: int
    busiest_link_utilization: float
    mean_link_utilization: float
    starved_flows: int  #: active flows currently at rate zero


@dataclass
class ClassAccounting:
    """Bytes served and flow-seconds spent per priority class."""

    bytes_served: Dict[int, float] = field(default_factory=dict)
    flow_seconds: Dict[int, float] = field(default_factory=dict)

    def record(self, priority: Optional[int], rate: float, elapsed: float) -> None:
        cls = priority if priority is not None else 0
        self.bytes_served[cls] = self.bytes_served.get(cls, 0.0) + rate * elapsed
        self.flow_seconds[cls] = self.flow_seconds.get(cls, 0.0) + elapsed


@dataclass
class AllocationCounters:
    """One run's allocation-epoch bookkeeping, for reports and benches."""

    #: reallocation epochs actually computed
    reallocations: int
    #: event batches where the dirty flag let the runtime skip reallocation
    epochs_skipped: int
    #: allocations answered from the engine's cached rate vector
    cache_hits: int
    #: membership rows touched incrementally (flow add/remove/class move)
    rows_updated: int
    #: per-class membership rebuilds triggered by cache invalidation
    full_rebuilds: int

    @property
    def skip_fraction(self) -> float:
        total = self.reallocations + self.epochs_skipped
        return self.epochs_skipped / total if total else 0.0


def allocation_counters(result: SimulationResult) -> AllocationCounters:
    """Condense a result's engine statistics into one counter snapshot.

    Works for legacy (engine-off) runs too — the engine-specific counters
    read zero there, while ``epochs_skipped`` (a runtime-level feature)
    stays meaningful.
    """
    stats = result.engine_stats if result.engine_stats is not None else EngineStats()
    return AllocationCounters(
        reallocations=result.reallocations,
        epochs_skipped=result.epochs_skipped,
        cache_hits=stats.cache_hits,
        rows_updated=stats.delta_updates,
        full_rebuilds=stats.full_rebuilds,
    )


def parallel_counters(report: "GridReport") -> Dict[str, float]:
    """The parallel experiment engine's counters, as one flat snapshot.

    Condenses a :class:`repro.experiments.parallel.GridReport` into the
    same flat-dict shape the other counter surfaces use: units completed
    vs total, cache hits, retries, failures, and how busy the worker
    pool actually was (``worker_utilization`` is the fraction of
    ``workers × elapsed`` wall time spent simulating).
    """
    stats = report.stats
    return {
        "units_total": float(stats.total_units),
        "units_completed": float(stats.completed),
        "cache_hits": float(stats.cache_hits),
        "retries": float(stats.retries),
        "failures": float(stats.failures),
        "workers": float(stats.workers),
        "cache_corrupt": float(stats.cache_corrupt),
        "worker_crashes": float(stats.worker_crashes),
        "abandoned": float(stats.abandoned),
        "unit_seconds": stats.unit_seconds,
        "elapsed_seconds": stats.elapsed_seconds,
        "worker_utilization": stats.worker_utilization,
    }


def fault_counters(result: SimulationResult) -> Dict[str, float]:
    """One run's fault-injection counters, as one flat snapshot.

    Always returns the full key set — a run executed without a fault
    profile reads all-zero — so chaos reports can tabulate faulted and
    perfect-fabric runs uniformly.
    """
    stats = result.fault_stats if result.fault_stats is not None else FaultStats()
    return {
        "faults_injected": float(stats.faults_injected),
        "repairs_applied": float(stats.repairs_applied),
        "link_down_events": float(stats.link_down_events),
        "switch_failures": float(stats.switch_failures),
        "host_crashes": float(stats.host_crashes),
        "flows_rerouted": float(stats.flows_rerouted),
        "rerouted_bytes": stats.rerouted_bytes,
        "flows_parked": float(stats.flows_parked),
        "flow_restarts": float(stats.flow_restarts),
        "flows_recovered": float(stats.flows_recovered),
        "max_recovery_seconds": stats.max_recovery_seconds,
        "mean_recovery_seconds": stats.mean_recovery_seconds,
        "hr_rounds_total": float(stats.hr_rounds_total),
        "hr_rounds_dropped": float(stats.hr_rounds_dropped),
        "hr_rounds_delayed": float(stats.hr_rounds_delayed),
        "max_hr_staleness": stats.max_hr_staleness,
    }


def invariant_counters(result: SimulationResult) -> Dict[str, int]:
    """Violation count per invariant kind for ``result``.

    Always returns a zero-filled dict over every
    :attr:`InvariantChecker.KINDS` entry so reports can be tabulated
    uniformly; a run executed without the checker reads all-zero.
    """
    counts = {kind: 0 for kind in InvariantChecker.KINDS}
    report = result.invariant_report
    if report is not None:
        for kind, count in report.counts.items():
            counts[kind] = count
    return counts


class NetworkProbe:
    """Wraps a simulation's reallocation step to collect samples.

    Usage::

        sim = CoflowSimulation(topology, scheduler, jobs)
        probe = NetworkProbe(sim)
        result = sim.run()
        print(probe.max_starvation_streak())

    ``sample_every=n`` keeps only every n-th utilisation snapshot (the
    expensive per-link pass).  Class accounting, starvation tracking, and
    ``ever_starved`` still observe *every* reallocation round — they are
    exact regardless of the sampling rate; only the utilisation time
    series is thinned.
    """

    def __init__(
        self, simulation: CoflowSimulation, sample_every: int = 1
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.simulation = simulation
        self.sample_every = sample_every
        self.samples: List[UtilizationSample] = []
        self.class_accounting = ClassAccounting()
        self._capacities = simulation.topology.links.capacities()
        self._last_time: Optional[float] = None
        self._last_rates: Dict[int, Tuple[Optional[int], float]] = {}
        self._starved_since: Dict[int, float] = {}
        self._max_starvation: float = 0.0
        self._ever_starved = False
        self._rounds = 0
        original = simulation._reallocate

        def wrapped() -> None:
            self._account_elapsed()
            original()
            self._sample()

        simulation._reallocate = wrapped  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def _account_elapsed(self) -> None:
        now = self.simulation.now
        if self._last_time is not None:
            elapsed = now - self._last_time
            if elapsed > 0:
                for _flow_id, (priority, rate) in self._last_rates.items():
                    self.class_accounting.record(priority, rate, elapsed)
        self._last_time = now

    def _sample(self) -> None:
        sim = self.simulation
        now = sim.now
        starved = 0
        last_rates: Dict[int, Tuple[Optional[int], float]] = {}
        # Exact bookkeeping, every round: the class accounting and the
        # starvation detector must see every rate assignment or their
        # totals drift.
        for flow in sim._active.values():
            last_rates[flow.flow_id] = (flow.priority, flow.rate)
            if flow.rate <= 0.0:
                starved += 1
                start = self._starved_since.setdefault(flow.flow_id, now)
                self._max_starvation = max(self._max_starvation, now - start)
            else:
                self._starved_since.pop(flow.flow_id, None)
        self._last_rates = last_rates
        if starved:
            self._ever_starved = True
        take_snapshot = self._rounds % self.sample_every == 0
        self._rounds += 1
        if not take_snapshot:
            return
        # Thinned snapshot: the per-link pass is the probe's hot cost.
        usage = [0.0] * len(self._capacities)
        for flow in sim._active.values():
            for link_id in flow.route:
                usage[link_id] += flow.rate
        utilizations = [
            use / cap for use, cap in zip(usage, self._capacities) if cap > 0
        ]
        busiest = max(utilizations, default=0.0)
        mean = sum(utilizations) / len(utilizations) if utilizations else 0.0
        self.samples.append(
            UtilizationSample(
                time=now,
                active_flows=len(sim._active),
                busiest_link_utilization=busiest,
                mean_link_utilization=mean,
                starved_flows=starved,
            )
        )

    # ------------------------------------------------------------------
    # Report helpers
    # ------------------------------------------------------------------
    def peak_utilization(self) -> float:
        return max((s.busiest_link_utilization for s in self.samples), default=0.0)

    def mean_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.mean_link_utilization for s in self.samples) / len(self.samples)

    def ever_starved(self) -> bool:
        """Did any flow sit at rate zero at some reallocation instant?

        Exact at any ``sample_every``: tracked per round, not per
        retained snapshot.
        """
        return self._ever_starved

    def max_starvation_streak(self) -> float:
        """Longest continuous time one flow spent at rate zero."""
        # Close out flows still starved at the end of the run.
        now = self.simulation.now
        for start in self._starved_since.values():
            self._max_starvation = max(self._max_starvation, now - start)
        return self._max_starvation

    def bytes_by_class(self) -> Dict[int, float]:
        return dict(self.class_accounting.bytes_served)

    def engine_stats(self) -> Optional[EngineStats]:
        """Live incremental-engine counters (None when the engine is off)."""
        engine = self.simulation.engine
        return engine.stats if engine is not None else None

    def invariant_report(self) -> Optional[InvariantReport]:
        """Live invariant-checker report (None when checking is off)."""
        checker = self.simulation.invariants
        return checker.report() if checker is not None else None
