"""Job, coflow, flow, and DAG data model for multi-stage datacenter jobs."""

from repro.jobs.builder import (
    FlowSpec,
    IdAllocator,
    JobBuilder,
    chain_job,
    single_stage_job,
)
from repro.jobs.coflow import Coflow, CoflowState
from repro.jobs.dag import CoflowDag
from repro.jobs.flow import Flow, FlowState
from repro.jobs.job import Job, JobState
from repro.jobs.paths import (
    critical_path,
    critical_path_coflows,
    enumerate_paths,
    path_cost,
)
from repro.jobs.validate import ValidationReport, validate_workload

__all__ = [
    "Coflow",
    "CoflowDag",
    "CoflowState",
    "Flow",
    "FlowSpec",
    "FlowState",
    "IdAllocator",
    "Job",
    "JobBuilder",
    "JobState",
    "ValidationReport",
    "chain_job",
    "critical_path",
    "critical_path_coflows",
    "enumerate_paths",
    "path_cost",
    "single_stage_job",
    "validate_workload",
]
