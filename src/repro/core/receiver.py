"""Receiver agents: the decentralized observation plane of Gurita.

In deployment (paper §IV.B), every *receiver host* runs a NetFilter shim
that tracks its incoming connections in a flow table and periodically
reports to the job's head receiver: number of open connections, bytes
received per flow.  The HR merges the reports of all its peers to form
the coflow-level view that the blocking-effect estimate Ψ̈ consumes.

This module implements that plane literally:

* :class:`ReceiverAgent` — one per (host, job): owns a
  :class:`~repro.core.flowtable.FlowTable` keyed by synthetic 5-tuples,
  fed by byte-arrival accounting;
* :class:`ReceiverReport` — what an agent sends its HR each δ round;
* :class:`ObservationPlane` — the bookkeeping that routes a simulation's
  flows to agents and merges reports per coflow.

The fast path in :class:`~repro.core.gurita.GuritaScheduler` reads the
same observable quantities straight off the coflow objects; enabling
``GuritaConfig.use_flow_tables`` routes the estimates through this plane
instead.  The two paths are equivalent by construction (a test asserts
it); the plane exists to mirror the deployment architecture and to let
users instrument per-receiver state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.core.flowtable import FlowTable, five_tuple_for_flow
from repro.jobs.coflow import Coflow
from repro.jobs.flow import Flow


@dataclass(frozen=True)
class CoflowObservation:
    """Merged view of one coflow across all its receivers."""

    coflow_id: int
    open_connections: int
    bytes_received: float
    max_flow_bytes: float
    num_flows: int

    @property
    def mean_flow_bytes(self) -> float:
        if self.num_flows == 0:
            return 0.0
        return self.bytes_received / self.num_flows


@dataclass
class ReceiverReport:
    """One receiver's per-coflow numbers for a coordination round."""

    host: int
    #: coflow id -> (open connections, bytes, max per-flow bytes, flows)
    per_coflow: Dict[int, Tuple[int, float, float, int]] = field(
        default_factory=dict
    )


class ReceiverAgent:
    """Flow-table-backed observation agent for one receiver host."""

    def __init__(self, host: int, num_buckets: int = 256) -> None:
        self.host = host
        self.table = FlowTable(num_buckets=num_buckets)
        self._tuples: Dict[int, tuple] = {}

    def open_connection(self, flow: Flow) -> None:
        """A sender connected: register the flow's 5-tuple."""
        five_tuple = five_tuple_for_flow(flow.flow_id, flow.src, flow.dst)
        self._tuples[flow.flow_id] = five_tuple
        self.table.insert(five_tuple, flow.flow_id, flow.coflow_id)

    def account(self, flow: Flow, num_bytes: float) -> None:
        """Bytes arrived on a connection."""
        five_tuple = self._tuples.get(flow.flow_id)
        if five_tuple is not None and num_bytes > 0:
            self.table.account_bytes(five_tuple, num_bytes)

    def close_connection(self, flow: Flow) -> None:
        """The sender closed: settle the byte count, then mark closed.

        Closed records stay in the table (still counted by the HR) until
        their whole coflow completes and :meth:`evict_coflow` runs — the
        paper's HR only "excludes information of completed flows" once the
        receiver's task is done.
        """
        five_tuple = self._tuples.pop(flow.flow_id, None)
        if five_tuple is None:
            return
        record = self.table.lookup(five_tuple)
        if record is not None and record.open:
            delta = flow.bytes_sent - record.bytes_received
            if delta > 0:
                self.table.account_bytes(five_tuple, delta)
        self.table.close(five_tuple)

    def reset_connection(self, flow: Flow) -> None:
        """A crashed endpoint restarted the transfer from zero.

        The old record's byte count is discarded by re-inserting a fresh
        record under the same 5-tuple (the table's stale-entry
        replacement), mirroring a new TCP connection after the crash.
        """
        five_tuple = self._tuples.get(flow.flow_id)
        if five_tuple is not None:
            self.table.insert(five_tuple, flow.flow_id, flow.coflow_id)

    def evict_coflow(self, coflow_id: int) -> int:
        """Forget a completed coflow's closed records."""
        return self.table.evict_closed(coflow_id=coflow_id)

    def report(self) -> ReceiverReport:
        """Snapshot this receiver's per-coflow statistics."""
        report = ReceiverReport(host=self.host)
        for coflow_id, stats in self.table.coflow_stats().items():
            report.per_coflow[coflow_id] = (
                stats.open_connections,
                stats.bytes_received,
                stats.max_flow_bytes,
                stats.num_flows,
            )
        return report

    def evict_completed(self) -> int:
        """Forget closed connections (HR excludes completed flows)."""
        return self.table.evict_closed()


class ObservationPlane:
    """All receiver agents of a simulation plus the merge logic."""

    def __init__(self, num_buckets: int = 256) -> None:
        self.num_buckets = num_buckets
        self._agents: Dict[int, ReceiverAgent] = {}

    def agent_for(self, host: int) -> ReceiverAgent:
        agent = self._agents.get(host)
        if agent is None:
            agent = ReceiverAgent(host, num_buckets=self.num_buckets)
            self._agents[host] = agent
        return agent

    # ------------------------------------------------------------------
    # Simulation hooks
    # ------------------------------------------------------------------
    def on_coflow_release(self, coflow: Coflow) -> None:
        for flow in coflow.flows:
            self.agent_for(flow.dst).open_connection(flow)

    def on_flow_finish(self, flow: Flow) -> None:
        agent = self._agents.get(flow.dst)
        if agent is not None:
            agent.close_connection(flow)

    def on_flow_restart(self, flow: Flow) -> None:
        """A restart-from-zero crash recovery re-zeroed a flow's bytes."""
        agent = self._agents.get(flow.dst)
        if agent is not None:
            agent.reset_connection(flow)

    def on_coflow_finish(self, coflow: Coflow) -> None:
        """Receiver tasks done: evict the coflow's records everywhere."""
        for host in sorted({flow.dst for flow in coflow.flows}):
            agent = self._agents.get(host)
            if agent is not None:
                agent.evict_coflow(coflow.coflow_id)

    def sync_bytes(self, flows: Iterable[Flow]) -> None:
        """Bring flow tables up to date with delivered byte counts.

        Called at each coordination round: receivers read their local
        counters (the simulator's ground truth for "bytes received").
        """
        for flow in flows:
            agent = self._agents.get(flow.dst)
            if agent is None:
                continue
            five_tuple = agent._tuples.get(flow.flow_id)
            if five_tuple is None:
                continue
            record = agent.table.lookup(five_tuple)
            if record is not None and record.open:
                delta = flow.bytes_sent - record.bytes_received
                if delta > 0:
                    agent.table.account_bytes(five_tuple, delta)

    # ------------------------------------------------------------------
    # HR merge
    # ------------------------------------------------------------------
    def observe_coflows(
        self, coflow_ids: Iterable[int]
    ) -> Dict[int, CoflowObservation]:
        """Merge all receivers' reports for the given coflows."""
        wanted = set(coflow_ids)
        merged: Dict[int, List[Tuple[int, float, float, int]]] = {
            cid: [] for cid in sorted(wanted)
        }
        for agent in self._agents.values():
            for coflow_id, numbers in agent.report().per_coflow.items():
                if coflow_id in wanted:
                    merged[coflow_id].append(numbers)
        out: Dict[int, CoflowObservation] = {}
        for coflow_id, entries in merged.items():
            out[coflow_id] = CoflowObservation(
                coflow_id=coflow_id,
                open_connections=sum(e[0] for e in entries),
                bytes_received=sum(e[1] for e in entries),
                max_flow_bytes=max((e[2] for e in entries), default=0.0),
                num_flows=sum(e[3] for e in entries),
            )
        return out

    def evict_completed(self) -> int:
        """Evict closed records across all receivers; returns the count."""
        return sum(agent.evict_completed() for agent in self._agents.values())

    @property
    def num_agents(self) -> int:
        return len(self._agents)
