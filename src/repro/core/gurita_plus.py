"""GuritaPlus — the clairvoyant upper bound of paper §V.

GuritaPlus is Gurita under ideal conditions: per-stage coflow information
(true width, true flow sizes, the job's total stage count) is available
ahead of time, priorities are recomputed instantaneously at every network
event rather than every δ, and priority changes — including promotions —
apply immediately to in-flight flows (no TCP-reordering concern).

The paper uses it to show that Gurita's receiver-side estimates lose at
most ~0.15% (Figure 8).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.blocking import coflow_psi_clairvoyant, job_stage_psi
from repro.core.config import GuritaConfig
from repro.core.critical_path import clairvoyant_critical_set
from repro.core.starvation import build_request
from repro.jobs.flow import Flow
from repro.jobs.job import Job
from repro.schedulers.base import SchedulerPolicy
from repro.simulator.bandwidth.request import AllocationRequest


class GuritaPlusScheduler(SchedulerPolicy):
    """Clairvoyant LBEF: true per-stage Ψ, true critical paths, no lag."""

    name = "gurita+"

    def __init__(self, config: Optional[GuritaConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else GuritaConfig()
        # No periodic rounds: information is instantaneous.
        self.update_interval = None
        self._critical_sets: Dict[int, Set[int]] = {}

    def on_job_arrival(self, job: Job, now: float) -> None:
        if self.config.critical_path_bonus > 0:
            self._critical_sets[job.job_id] = clairvoyant_critical_set(job)

    def on_job_finish(self, job: Job, now: float) -> None:
        self._critical_sets.pop(job.job_id, None)

    def _job_priorities(self, job: Job) -> Dict[int, int]:
        """Priority class per running coflow from the true per-stage Ψ."""
        running = job.running_coflows()
        critical = self._critical_sets.get(job.job_id, set())
        psis: Dict[int, float] = {}
        for coflow in running:
            psi = coflow_psi_clairvoyant(
                coflow, job, beta_floor=self.config.beta_floor
            )
            if coflow.coflow_id in critical:
                psi *= 1.0 - self.config.critical_path_bonus
            psis[coflow.coflow_id] = psi
        stage_totals: Dict[int, float] = {}
        for coflow in running:
            stage_totals[coflow.stage] = stage_totals.get(coflow.stage, 0.0)
        for coflow in running:
            stage_totals[coflow.stage] += psis[coflow.coflow_id]
        return {
            coflow.coflow_id: self.config.thresholds.class_of(
                job_stage_psi([stage_totals[coflow.stage]])
            )
            for coflow in running
        }

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        assert self.context is not None
        coflow_classes: Dict[int, int] = {}
        seen_jobs: Set[int] = set()
        for flow in active_flows:
            job_id = self.context.coflow(flow.coflow_id).job_id
            if job_id in seen_jobs:
                continue
            seen_jobs.add(job_id)
            coflow_classes.update(self._job_priorities(self.context.job(job_id)))
        priorities = {
            flow.flow_id: coflow_classes.get(flow.coflow_id, 0)
            for flow in active_flows
        }
        return build_request(self.config, priorities)
