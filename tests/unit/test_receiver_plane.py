"""Unit tests for the receiver observation plane (flow-table path)."""

import pytest

from repro.core.receiver import (
    CoflowObservation,
    ObservationPlane,
    ReceiverAgent,
)
from repro.jobs import JobBuilder


def two_receiver_coflow(ids):
    builder = JobBuilder(ids=ids)
    cid = builder.add_coflow(
        [(0, 4, 100.0), (1, 4, 60.0), (2, 5, 40.0)]
    )
    job = builder.build()
    return job, job.coflow(cid)


class TestReceiverAgent:
    def test_open_account_report(self, ids):
        _job, coflow = two_receiver_coflow(ids)
        coflow.release(0.0)
        agent = ReceiverAgent(host=4)
        for flow in coflow.flows:
            if flow.dst == 4:
                agent.open_connection(flow)
        agent.account(coflow.flows[0], 30.0)
        report = agent.report()
        stats = report.per_coflow[coflow.coflow_id]
        open_connections, bytes_received, max_bytes, num_flows = stats
        assert open_connections == 2
        assert bytes_received == pytest.approx(30.0)
        assert max_bytes == pytest.approx(30.0)
        assert num_flows == 2

    def test_close_settles_final_bytes(self, ids):
        _job, coflow = two_receiver_coflow(ids)
        coflow.release(0.0)
        flow = coflow.flows[0]
        agent = ReceiverAgent(host=4)
        agent.open_connection(flow)
        flow.rate = 10.0
        flow.advance(10.0)  # delivered 100 of 100
        flow.finish(10.0)
        agent.close_connection(flow)
        stats = agent.report().per_coflow[coflow.coflow_id]
        assert stats[0] == 0  # no open connections
        assert stats[1] == pytest.approx(100.0)  # but bytes fully settled

    def test_evict_coflow_only_drops_closed(self, ids):
        _job, coflow = two_receiver_coflow(ids)
        coflow.release(0.0)
        agent = ReceiverAgent(host=4)
        flows = [f for f in coflow.flows if f.dst == 4]
        for flow in flows:
            agent.open_connection(flow)
        flows[0].finish(1.0)
        agent.close_connection(flows[0])
        assert agent.evict_coflow(coflow.coflow_id) == 1
        assert len(agent.table) == 1  # the still-open record remains


class TestObservationPlane:
    def _run_plane(self, ids, deliver):
        job, coflow = two_receiver_coflow(ids)
        coflow.release(0.0)
        plane = ObservationPlane()
        plane.on_coflow_release(coflow)
        for flow, bytes_done in zip(coflow.flows, deliver):
            flow.rate = 1.0
            flow.advance(bytes_done)
        plane.sync_bytes(coflow.flows)
        return job, coflow, plane

    def test_merges_across_receivers(self, ids):
        _job, coflow, plane = self._run_plane(ids, (50.0, 20.0, 10.0))
        assert plane.num_agents == 2
        obs = plane.observe_coflows([coflow.coflow_id])[coflow.coflow_id]
        assert obs.open_connections == 3
        assert obs.bytes_received == pytest.approx(80.0)
        assert obs.max_flow_bytes == pytest.approx(50.0)
        assert obs.num_flows == 3
        assert obs.mean_flow_bytes == pytest.approx(80.0 / 3)

    def test_sync_is_idempotent(self, ids):
        _job, coflow, plane = self._run_plane(ids, (50.0, 20.0, 10.0))
        plane.sync_bytes(coflow.flows)
        plane.sync_bytes(coflow.flows)
        obs = plane.observe_coflows([coflow.coflow_id])[coflow.coflow_id]
        assert obs.bytes_received == pytest.approx(80.0)

    def test_matches_direct_coflow_observables(self, ids):
        """The plane's merged view equals the coflow's own counters —
        the equivalence the fast path relies on."""
        _job, coflow, plane = self._run_plane(ids, (50.0, 20.0, 10.0))
        obs = plane.observe_coflows([coflow.coflow_id])[coflow.coflow_id]
        assert obs.open_connections == coflow.active_width
        assert obs.bytes_received == pytest.approx(coflow.bytes_sent)
        assert obs.max_flow_bytes == pytest.approx(
            coflow.observed_max_flow_bytes
        )
        assert obs.mean_flow_bytes == pytest.approx(
            coflow.observed_mean_flow_bytes
        )

    def test_coflow_finish_evicts_everywhere(self, ids):
        _job, coflow, plane = self._run_plane(ids, (100.0, 60.0, 40.0))
        for flow in coflow.flows:
            flow.finish(1.0)
            plane.on_flow_finish(flow)
        coflow.maybe_complete(1.0)
        plane.on_coflow_finish(coflow)
        obs = plane.observe_coflows([coflow.coflow_id])[coflow.coflow_id]
        assert obs.num_flows == 0
        assert obs.bytes_received == 0.0


class TestObservationDataclass:
    def test_mean_of_empty(self):
        obs = CoflowObservation(1, 0, 0.0, 0.0, 0)
        assert obs.mean_flow_bytes == 0.0
