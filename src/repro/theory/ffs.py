"""FFS-MJ: the Flexible Flow Shop with Multi-stage Jobs problem (§III.B).

The paper's formal model of multi-stage job scheduling: jobs are sets of
coflows with DAG precedence; a coflow is a set of parallel *operations*
(one per flow); each operation runs on one machine of its layer; machines
process one operation at a time; the objective is minimum total (sum of)
job completion times.

This module gives the problem a concrete, discrete form — used by the
exact solver (:mod:`repro.theory.exact`) to certify near-optimality on
small instances and by tests to pin down the paper's worked examples.
Machines here are unit-rate and *preemptive at unit granularity*, matching
how the paper's motivating examples (Figures 2 and 4) count time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.errors import InvalidJobError


@dataclass(frozen=True)
class FfsOperation:
    """One unit of parallel work of a coflow: ``duration`` on some machine
    of layer ``layer``."""

    duration: float
    layer: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise InvalidJobError("operation duration must be positive")
        if self.layer < 0:
            raise InvalidJobError("layer must be >= 0")


@dataclass(frozen=True)
class FfsCoflow:
    """A coflow: parallel operations plus intra-job dependencies."""

    coflow_id: int
    operations: Tuple[FfsOperation, ...]
    depends_on: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.operations:
            raise InvalidJobError(f"coflow {self.coflow_id} has no operations")

    @property
    def work(self) -> float:
        return sum(op.duration for op in self.operations)

    @property
    def span(self) -> float:
        """Time to finish all operations with unlimited machines."""
        return max(op.duration for op in self.operations)


@dataclass(frozen=True)
class FfsJob:
    """A job: coflows with dependencies forming a DAG.

    ``release_time`` is when the job enters the system; completion times
    are measured relative to it (the JCT convention of the paper's worked
    examples, where jobs arrive at different instants).
    """

    job_id: int
    coflows: Tuple[FfsCoflow, ...]
    release_time: float = 0.0

    def __post_init__(self) -> None:
        if self.release_time < 0:
            raise InvalidJobError(f"job {self.job_id}: negative release time")
        ids = {c.coflow_id for c in self.coflows}
        if len(ids) != len(self.coflows):
            raise InvalidJobError(f"job {self.job_id}: duplicate coflow ids")
        for coflow in self.coflows:
            for dep in coflow.depends_on:
                if dep not in ids:
                    raise InvalidJobError(
                        f"job {self.job_id}: coflow {coflow.coflow_id} depends "
                        f"on unknown coflow {dep}"
                    )

    @property
    def total_work(self) -> float:
        return sum(c.work for c in self.coflows)


@dataclass
class FfsInstance:
    """An FFS-MJ instance: jobs + machines per layer."""

    jobs: Tuple[FfsJob, ...]
    machines_per_layer: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        layers = {
            op.layer for job in self.jobs for c in job.coflows for op in c.operations
        }
        for layer in layers:
            count = self.machines_per_layer.get(layer, 1)
            if count < 1:
                raise InvalidJobError(f"layer {layer} needs >= 1 machine")
            self.machines_per_layer[layer] = count

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)


def single_stage_instance(
    job_sizes: Sequence[Sequence[float]],
    machines: int = 1,
) -> FfsInstance:
    """Instance where job ``i`` is one coflow with the given durations.

    Handy for encoding the paper's Figure-4 blocking example.
    """
    jobs = tuple(
        FfsJob(
            job_id=i,
            coflows=(
                FfsCoflow(
                    coflow_id=0,
                    operations=tuple(FfsOperation(d) for d in sizes),
                ),
            ),
        )
        for i, sizes in enumerate(job_sizes)
    )
    return FfsInstance(jobs=jobs, machines_per_layer={0: machines})


def chain_instance(
    stage_sizes_per_job: Sequence[Sequence[float]],
    machines: int = 1,
    release_times: Sequence[float] = None,
    layers_per_job: Sequence[Sequence[int]] = None,
) -> FfsInstance:
    """Instance where job ``i`` is a chain of single-operation coflows.

    Encodes the paper's Figure-2 motivation example: job A transmits
    10, 1, 1, 1 units over four dependent stages; jobs B, C, D transmit 2
    units each in one stage.  ``release_times`` staggers job arrivals;
    ``layers_per_job`` places each stage's operation on a specific machine
    layer (default: everything on layer 0).
    """
    jobs = []
    for job_id, stage_sizes in enumerate(stage_sizes_per_job):
        coflows = []
        for idx, size in enumerate(stage_sizes):
            layer = (
                layers_per_job[job_id][idx] if layers_per_job is not None else 0
            )
            coflows.append(
                FfsCoflow(
                    coflow_id=idx,
                    operations=(FfsOperation(size, layer=layer),),
                    depends_on=(idx - 1,) if idx > 0 else (),
                )
            )
        release = release_times[job_id] if release_times is not None else 0.0
        jobs.append(
            FfsJob(job_id=job_id, coflows=tuple(coflows), release_time=release)
        )
    layers = {
        op.layer
        for job in jobs
        for coflow in job.coflows
        for op in coflow.operations
    }
    return FfsInstance(
        jobs=tuple(jobs),
        machines_per_layer={layer: machines for layer in layers},
    )
