"""Property-based tests for the Jenkins-hash flow table."""

from hypothesis import given, settings, strategies as st

from repro.core.flowtable import (
    FlowTable,
    five_tuple_for_flow,
    hash_five_tuple,
)


@st.composite
def flow_populations(draw):
    """Random (flow_id, src, dst, coflow_id) tuples with unique flow ids."""
    count = draw(st.integers(min_value=1, max_value=40))
    flow_ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    flows = []
    for flow_id in flow_ids:
        src = draw(st.integers(min_value=0, max_value=63))
        dst = draw(st.integers(min_value=64, max_value=127))
        coflow_id = draw(st.integers(min_value=0, max_value=5))
        flows.append((flow_id, src, dst, coflow_id))
    return flows


@given(flow_populations(), st.integers(min_value=1, max_value=64))
@settings(max_examples=100, deadline=None)
def test_every_inserted_flow_is_found(flows, buckets):
    table = FlowTable(num_buckets=buckets)
    for flow_id, src, dst, coflow_id in flows:
        table.insert(five_tuple_for_flow(flow_id, src, dst), flow_id, coflow_id)
    assert len(table) == len(flows)
    for flow_id, src, dst, _coflow_id in flows:
        record = table.lookup(five_tuple_for_flow(flow_id, src, dst))
        assert record is not None
        assert record.flow_id == flow_id


@given(flow_populations())
@settings(max_examples=100, deadline=None)
def test_rollups_conserve_bytes(flows):
    table = FlowTable(num_buckets=16)
    total_per_coflow = {}
    for index, (flow_id, src, dst, coflow_id) in enumerate(flows):
        five_tuple = five_tuple_for_flow(flow_id, src, dst)
        table.insert(five_tuple, flow_id, coflow_id)
        credited = float(index * 7 % 100)
        table.account_bytes(five_tuple, credited)
        total_per_coflow[coflow_id] = (
            total_per_coflow.get(coflow_id, 0.0) + credited
        )
    stats = table.coflow_stats()
    for coflow_id, expected in total_per_coflow.items():
        assert abs(stats[coflow_id].bytes_received - expected) < 1e-9
    assert sum(s.num_flows for s in stats.values()) == len(flows)


@given(flow_populations())
@settings(max_examples=50, deadline=None)
def test_eviction_removes_exactly_closed_records(flows, ):
    table = FlowTable(num_buckets=8)
    for flow_id, src, dst, coflow_id in flows:
        table.insert(five_tuple_for_flow(flow_id, src, dst), flow_id, coflow_id)
    closed = [f for i, f in enumerate(flows) if i % 2 == 0]
    for flow_id, src, dst, _coflow_id in closed:
        table.close(five_tuple_for_flow(flow_id, src, dst))
    assert table.evict_closed() == len(closed)
    assert len(table) == len(flows) - len(closed)


@given(st.lists(st.integers(min_value=0, max_value=2**31), min_size=2, max_size=50, unique=True))
@settings(max_examples=100, deadline=None)
def test_hash_is_stable_and_in_range(flow_ids):
    for flow_id in flow_ids:
        five_tuple = five_tuple_for_flow(flow_id, 1, 2)
        value = hash_five_tuple(five_tuple)
        assert 0 <= value < 2**32
        assert value == hash_five_tuple(five_tuple)
