"""Fluent construction of jobs, coflows, and flows with consistent ids.

The builder allocates globally unique flow/coflow ids from shared counters
so that jobs built for one simulation never collide.  Typical use::

    ids = IdAllocator()
    builder = JobBuilder(job_id=0, arrival_time=0.0, ids=ids)
    a = builder.add_coflow([(src, dst, size), ...])
    b = builder.add_coflow([(src, dst, size)], depends_on=[a])
    job = builder.build()
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import InvalidJobError
from repro.jobs.coflow import Coflow
from repro.jobs.dag import CoflowDag
from repro.jobs.flow import Flow
from repro.jobs.job import Job

#: A flow specification: (src_host, dst_host, size_bytes).
FlowSpec = Tuple[int, int, float]


@dataclass
class IdAllocator:
    """Shared counters handing out unique job/coflow/flow ids."""

    _jobs: "itertools.count[int]" = field(default_factory=itertools.count)
    _coflows: "itertools.count[int]" = field(default_factory=itertools.count)
    _flows: "itertools.count[int]" = field(default_factory=itertools.count)

    def next_job_id(self) -> int:
        return next(self._jobs)

    def next_coflow_id(self) -> int:
        return next(self._coflows)

    def next_flow_id(self) -> int:
        return next(self._flows)


class JobBuilder:
    """Accumulates coflows and dependencies, then builds a validated Job."""

    def __init__(
        self,
        job_id: Optional[int] = None,
        arrival_time: float = 0.0,
        ids: Optional[IdAllocator] = None,
    ) -> None:
        self._ids = ids if ids is not None else IdAllocator()
        self.job_id = job_id if job_id is not None else self._ids.next_job_id()
        self.arrival_time = arrival_time
        self._coflows: List[Coflow] = []
        self._edges: List[Tuple[int, int]] = []

    def add_coflow(
        self,
        flow_specs: Sequence[FlowSpec],
        depends_on: Iterable[int] = (),
    ) -> int:
        """Add a coflow made of ``flow_specs``; returns its coflow id.

        ``depends_on`` lists coflow ids (returned by earlier calls) that
        must complete before this coflow starts.
        """
        if not flow_specs:
            raise InvalidJobError("a coflow needs at least one flow")
        coflow_id = self._ids.next_coflow_id()
        flows = [
            Flow(
                flow_id=self._ids.next_flow_id(),
                coflow_id=coflow_id,
                src=src,
                dst=dst,
                size_bytes=float(size),
            )
            for src, dst, size in flow_specs
        ]
        self._coflows.append(Coflow(coflow_id=coflow_id, job_id=self.job_id, flows=flows))
        known = {c.coflow_id for c in self._coflows}
        for dep in depends_on:
            if dep not in known:
                raise InvalidJobError(
                    f"dependency {dep} of coflow {coflow_id} not added yet"
                )
            self._edges.append((dep, coflow_id))
        return coflow_id

    def build(self) -> Job:
        """Validate and return the Job (stages computed from the DAG)."""
        dag = CoflowDag([c.coflow_id for c in self._coflows], self._edges)
        return Job(
            job_id=self.job_id,
            coflows=self._coflows,
            dag=dag,
            arrival_time=self.arrival_time,
        )


def single_stage_job(
    flow_specs: Sequence[FlowSpec],
    arrival_time: float = 0.0,
    ids: Optional[IdAllocator] = None,
    job_id: Optional[int] = None,
) -> Job:
    """Convenience: a job with exactly one coflow (the classic coflow case)."""
    builder = JobBuilder(job_id=job_id, arrival_time=arrival_time, ids=ids)
    builder.add_coflow(flow_specs)
    return builder.build()


def chain_job(
    stage_specs: Sequence[Sequence[FlowSpec]],
    arrival_time: float = 0.0,
    ids: Optional[IdAllocator] = None,
    job_id: Optional[int] = None,
) -> Job:
    """Convenience: a linear chain of coflows, one per stage."""
    builder = JobBuilder(job_id=job_id, arrival_time=arrival_time, ids=ids)
    previous: Optional[int] = None
    for specs in stage_specs:
        depends = [previous] if previous is not None else []
        previous = builder.add_coflow(specs, depends_on=depends)
    return builder.build()
