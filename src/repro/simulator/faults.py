"""Deterministic fault injection for the flow-level simulator.

Gurita's robustness story (paper §IV) rests on *decentralized* control:
every receiver keeps scheduling locally even when the δ-interval
coordination with its head receiver degrades.  A perfect-fabric simulator
cannot exercise that claim, so this module supplies a first-class failure
model: link flaps, switch failures (taking every attached link down), host
crashes (aborting resident flows), and a degraded HR coordination channel
(dropped or delayed δ-round sync messages).

Determinism contract (the chaos test suite asserts all of it):

* Fault timelines are **pure functions** of ``(profile, topology,
  horizon)``.  All randomness flows through a *blake2b-derived fault
  stream* — a stateless, counter-indexed hash construction in the same
  discipline as :func:`repro.experiments.parallel.derive_unit_seed` — so
  identical seeds produce bit-identical timelines regardless of process,
  platform, worker count, or call order.
* The injector consumes no wall-clock time and no global RNG state; the
  per-round HR channel dispositions are hash-indexed by round number, not
  drawn from a stateful generator, so they cannot drift when the event
  interleaving changes.
* With no profile configured the simulator takes its historical code
  paths verbatim; zero-fault runs are byte-identical to pre-fault builds.

The runtime (:mod:`repro.simulator.runtime`) owns a :class:`FaultInjector`
per run, applies :class:`FaultAction` events through the event queue, and
surfaces the outcome as :class:`FaultStats` on the simulation result.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import FaultError
from repro.simulator.topology.base import Topology

#: Version tag mixed into every fault stream; bump on derivation changes.
FAULT_STREAM_NAMESPACE = "repro.faults.v1"

#: Host-crash recovery policies.
POLICY_RESTART = "restart"  #: restart-from-zero: in-flight progress is lost
POLICY_RESUME = "resume"  #: resume-from-checkpoint: progress survives

_POLICIES = (POLICY_RESTART, POLICY_RESUME)

#: HR-round dispositions returned by :meth:`FaultInjector.hr_disposition`.
HR_DELIVER = "deliver"
HR_DROP = "drop"
HR_DELAY = "delay"


# ----------------------------------------------------------------------
# Blake2b fault streams (stateless, purely functional)
# ----------------------------------------------------------------------
def fault_stream_u64(seed: int, label: str, *components: Union[int, str]) -> int:
    """A 64-bit value from the seed-derived fault stream.

    Purely functional: the value depends only on ``(seed, label,
    components)``.  Distinct labels give independent substreams; indexing
    by an explicit counter (rather than drawing from a stateful RNG)
    means consumers can evaluate stream positions in any order without
    changing any value.
    """
    payload = "|".join(
        [FAULT_STREAM_NAMESPACE, str(seed), label]
        + [str(component) for component in components]
    )
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def fault_stream_uniform(
    seed: int, label: str, *components: Union[int, str]
) -> float:
    """A uniform float in ``[0, 1)`` from the fault stream."""
    return fault_stream_u64(seed, label, *components) / 2.0**64


def derive_fault_seed(base_seed: int, profile_name: str) -> int:
    """The 63-bit fault seed for ``(workload seed, profile name)``.

    Mirrors the unit-seed discipline of the parallel engine: a blake2b
    hash of the canonical identity, never dependent on process or worker
    state, so serial and ``run_grid`` executions derive the same fault
    timeline from the same scenario.
    """
    digest = hashlib.blake2b(
        f"{FAULT_STREAM_NAMESPACE}|fault-seed|{base_seed}|{profile_name}".encode(
            "utf-8"
        ),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


# ----------------------------------------------------------------------
# Fault specifications (symbolic; materialized against a topology)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkFault:
    """Scheduled flap of one cable (both directions) between two nodes."""

    src_node: str
    dst_node: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise FaultError(
                f"link fault {self.src_node}<->{self.dst_node} needs "
                f"at >= 0 and duration > 0"
            )


@dataclass(frozen=True)
class SwitchFault:
    """Scheduled failure of a switch: every attached link goes down."""

    node: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise FaultError(
                f"switch fault {self.node!r} needs at >= 0 and duration > 0"
            )


@dataclass(frozen=True)
class HostFault:
    """Scheduled crash of a host; resident flows abort until recovery."""

    host: int
    at: float
    duration: float
    policy: str = POLICY_RESTART

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise FaultError(
                f"host fault {self.host} needs at >= 0 and duration > 0"
            )
        if self.policy not in _POLICIES:
            raise FaultError(
                f"unknown host recovery policy {self.policy!r}; "
                f"expected one of {_POLICIES}"
            )


@dataclass(frozen=True)
class RandomLinkFlaps:
    """Stochastic link flaps drawn from the fault stream.

    ``count`` flap incidents are placed uniformly over the materialization
    horizon; each takes one cable down for ``downtime_fraction`` of the
    horizon (scaled by a per-incident jitter in ``[0.5, 1.5)``), so the
    spec adapts to any scenario timescale without retuning.
    """

    count: int = 4
    downtime_fraction: float = 0.05
    label: str = "link-flaps"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise FaultError("random link flaps need count >= 1")
        if not 0.0 < self.downtime_fraction <= 1.0:
            raise FaultError("downtime_fraction must be in (0, 1]")


@dataclass(frozen=True)
class RandomSwitchFailures:
    """Stochastic switch failures drawn from the fault stream."""

    count: int = 1
    downtime_fraction: float = 0.1
    label: str = "switch-failures"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise FaultError("random switch failures need count >= 1")
        if not 0.0 < self.downtime_fraction <= 1.0:
            raise FaultError("downtime_fraction must be in (0, 1]")


@dataclass(frozen=True)
class RandomHostCrashes:
    """Stochastic host crashes drawn from the fault stream."""

    count: int = 1
    downtime_fraction: float = 0.1
    policy: str = POLICY_RESTART
    label: str = "host-crashes"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise FaultError("random host crashes need count >= 1")
        if not 0.0 < self.downtime_fraction <= 1.0:
            raise FaultError("downtime_fraction must be in (0, 1]")
        if self.policy not in _POLICIES:
            raise FaultError(
                f"unknown host recovery policy {self.policy!r}; "
                f"expected one of {_POLICIES}"
            )


@dataclass(frozen=True)
class HRDegradation:
    """A degraded δ-interval head-receiver coordination channel.

    Within ``[start, start + duration)`` (``duration=None`` = forever),
    each coordination round is independently dropped with probability
    ``drop_fraction`` or delayed by up to ``max_delay`` seconds with
    probability ``delay_fraction`` (delayed syncs can arrive after later
    rounds, i.e. reordered).  Decisions are hash-indexed by round number,
    so they are identical across runs and schedulers.
    """

    drop_fraction: float = 0.0
    delay_fraction: float = 0.0
    max_delay: float = 0.1
    start: float = 0.0
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_fraction <= 1.0:
            raise FaultError("drop_fraction must be in [0, 1]")
        if not 0.0 <= self.delay_fraction <= 1.0:
            raise FaultError("delay_fraction must be in [0, 1]")
        if self.drop_fraction + self.delay_fraction > 1.0:
            raise FaultError("drop_fraction + delay_fraction must be <= 1")
        if self.max_delay <= 0:
            raise FaultError("max_delay must be positive")
        if self.start < 0:
            raise FaultError("start must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise FaultError("duration must be positive (or None)")


FaultSpec = Union[
    LinkFault,
    SwitchFault,
    HostFault,
    RandomLinkFlaps,
    RandomSwitchFailures,
    RandomHostCrashes,
]


@dataclass(frozen=True)
class FaultProfile:
    """One named bundle of fault specifications.

    ``seed`` feeds every stochastic draw; ``None`` falls back to a seed
    derived from the profile name alone.  ``horizon`` pins the window
    stochastic specs are materialized over; ``None`` lets the runtime
    derive it from the workload's arrival span (a pure function of the
    jobs, hence identical across schedulers and executions).
    """

    name: str
    specs: Tuple[FaultSpec, ...] = ()
    hr: Optional[HRDegradation] = None
    seed: Optional[int] = None
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultError("fault profile needs a non-empty name")
        if self.horizon is not None and self.horizon <= 0:
            raise FaultError("horizon must be positive (or None)")

    @property
    def effective_seed(self) -> int:
        return (
            self.seed
            if self.seed is not None
            else derive_fault_seed(0, self.name)
        )


# ----------------------------------------------------------------------
# Canned profiles (the chaos scenario family)
# ----------------------------------------------------------------------
def _scaled_count(base: int, intensity: float) -> int:
    return max(1, round(base * intensity))


def profile_from_name(
    name: str, intensity: float = 1.0, seed: Optional[int] = None
) -> FaultProfile:
    """A canned chaos profile by name.

    ``intensity`` scales incident counts and channel degradation;
    ``seed`` pins the fault stream (see :func:`derive_fault_seed`).
    """
    if intensity <= 0:
        raise FaultError(f"fault intensity must be positive, got {intensity}")
    if name == "link-flap":
        specs: Tuple[FaultSpec, ...] = (
            RandomLinkFlaps(count=_scaled_count(4, intensity)),
        )
        return FaultProfile(name=name, specs=specs, seed=seed)
    if name == "switch-failure":
        specs = (RandomSwitchFailures(count=_scaled_count(1, intensity)),)
        return FaultProfile(name=name, specs=specs, seed=seed)
    if name == "host-crash":
        specs = (RandomHostCrashes(count=_scaled_count(2, intensity)),)
        return FaultProfile(name=name, specs=specs, seed=seed)
    if name == "hr-loss":
        hr = HRDegradation(
            drop_fraction=min(0.9, 0.5 * intensity),
            delay_fraction=min(1.0 - min(0.9, 0.5 * intensity), 0.25),
        )
        return FaultProfile(name=name, hr=hr, seed=seed)
    if name == "chaos":
        specs = (
            RandomLinkFlaps(count=_scaled_count(3, intensity)),
            RandomHostCrashes(count=_scaled_count(1, intensity)),
        )
        hr = HRDegradation(
            drop_fraction=min(0.8, 0.3 * intensity), delay_fraction=0.1
        )
        return FaultProfile(name=name, specs=specs, hr=hr, seed=seed)
    raise FaultError(
        f"unknown fault profile {name!r}; expected one of "
        "'link-flap', 'switch-failure', 'host-crash', 'hr-loss', 'chaos'"
    )


#: Names :func:`profile_from_name` accepts (the CLI choices list).
CANNED_PROFILES: Tuple[str, ...] = (
    "link-flap",
    "switch-failure",
    "host-crash",
    "hr-loss",
    "chaos",
)


# ----------------------------------------------------------------------
# Timeline materialization
# ----------------------------------------------------------------------
class FaultKind:
    """Timeline action kinds (string constants; stable sort keys)."""

    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    SWITCH_DOWN = "switch_down"
    SWITCH_UP = "switch_up"
    HOST_DOWN = "host_down"
    HOST_UP = "host_up"


_DOWN_KINDS = frozenset(
    {FaultKind.LINK_DOWN, FaultKind.SWITCH_DOWN, FaultKind.HOST_DOWN}
)


@dataclass(frozen=True)
class FaultAction:
    """One materialized timeline entry (a fault or its repair)."""

    time: float
    kind: str
    links: Tuple[int, ...] = ()
    hosts: Tuple[int, ...] = ()
    node: str = ""
    policy: str = POLICY_RESTART
    cause: str = ""

    @property
    def is_repair(self) -> bool:
        return self.kind not in _DOWN_KINDS


def _duplex_links(topology: Topology, node_a: str, node_b: str) -> Tuple[int, ...]:
    ids: List[int] = []
    for src, dst in ((node_a, node_b), (node_b, node_a)):
        try:
            ids.append(topology.links.id_of(src, dst))
        except Exception as exc:
            raise FaultError(
                f"fault targets unknown link {src}->{dst}"
            ) from exc
    return tuple(sorted(ids))


def _attached_links(topology: Topology, node: str) -> Tuple[int, ...]:
    ids = sorted(
        link.link_id
        for link in topology.links
        if link.src_node == node or link.dst_node == node
    )
    if not ids:
        raise FaultError(f"fault targets unknown node {node!r} (no links)")
    return tuple(ids)


def _cables(topology: Topology) -> List[Tuple[str, str]]:
    """Every physical cable as a canonical (min, max) node-name pair."""
    seen: Set[Tuple[str, str]] = set()
    for link in topology.links:
        pair = (
            (link.src_node, link.dst_node)
            if link.src_node <= link.dst_node
            else (link.dst_node, link.src_node)
        )
        seen.add(pair)
    return sorted(seen)


def _switch_nodes(topology: Topology) -> List[str]:
    """Every non-host node name, sorted (hosts are ``h<i>``)."""
    nodes: Set[str] = set()
    for link in topology.links:
        for name in (link.src_node, link.dst_node):
            if not _is_host_node(name):
                nodes.add(name)
    return sorted(nodes)


def _is_host_node(name: str) -> bool:
    return name.startswith("h") and name[1:].isdigit()


def default_fault_horizon(arrival_times: Sequence[float]) -> float:
    """The stochastic-fault window for a workload's arrival span.

    Twice the arrival span plus a second of tail: long enough to overlap
    the busy period of overloaded scenarios, and a pure function of the
    jobs, so every scheduler and every execution mode derives the same
    window.
    """
    latest = max(arrival_times, default=0.0)
    return 2.0 * latest + 1.0


def _materialize_spec(
    spec: FaultSpec,
    topology: Topology,
    seed: int,
    horizon: float,
    actions: List[FaultAction],
) -> None:
    if isinstance(spec, LinkFault):
        links = _duplex_links(topology, spec.src_node, spec.dst_node)
        cause = f"link:{spec.src_node}<->{spec.dst_node}"
        actions.append(
            FaultAction(spec.at, FaultKind.LINK_DOWN, links=links, cause=cause)
        )
        actions.append(
            FaultAction(
                spec.at + spec.duration, FaultKind.LINK_UP, links=links, cause=cause
            )
        )
        return
    if isinstance(spec, SwitchFault):
        links = _attached_links(topology, spec.node)
        cause = f"switch:{spec.node}"
        actions.append(
            FaultAction(
                spec.at, FaultKind.SWITCH_DOWN, links=links, node=spec.node,
                cause=cause,
            )
        )
        actions.append(
            FaultAction(
                spec.at + spec.duration, FaultKind.SWITCH_UP, links=links,
                node=spec.node, cause=cause,
            )
        )
        return
    if isinstance(spec, HostFault):
        if not 0 <= spec.host < topology.num_hosts:
            raise FaultError(
                f"host fault targets unknown host {spec.host} "
                f"(num_hosts={topology.num_hosts})"
            )
        cause = f"host:{spec.host}"
        actions.append(
            FaultAction(
                spec.at, FaultKind.HOST_DOWN, hosts=(spec.host,),
                policy=spec.policy, cause=cause,
            )
        )
        actions.append(
            FaultAction(
                spec.at + spec.duration, FaultKind.HOST_UP, hosts=(spec.host,),
                cause=cause,
            )
        )
        return
    if isinstance(spec, RandomLinkFlaps):
        cables = _cables(topology)
        for index in range(spec.count):
            at = fault_stream_uniform(seed, spec.label, index, "at") * horizon
            jitter = 0.5 + fault_stream_uniform(seed, spec.label, index, "jit")
            duration = spec.downtime_fraction * horizon * jitter
            pick = fault_stream_u64(seed, spec.label, index, "cable") % len(cables)
            node_a, node_b = cables[pick]
            _materialize_spec(
                LinkFault(node_a, node_b, at=at, duration=duration),
                topology, seed, horizon, actions,
            )
        return
    if isinstance(spec, RandomSwitchFailures):
        switches = _switch_nodes(topology)
        if not switches:
            raise FaultError("topology has no switch nodes to fail")
        for index in range(spec.count):
            at = fault_stream_uniform(seed, spec.label, index, "at") * horizon
            jitter = 0.5 + fault_stream_uniform(seed, spec.label, index, "jit")
            duration = spec.downtime_fraction * horizon * jitter
            pick = fault_stream_u64(seed, spec.label, index, "node") % len(switches)
            _materialize_spec(
                SwitchFault(switches[pick], at=at, duration=duration),
                topology, seed, horizon, actions,
            )
        return
    if isinstance(spec, RandomHostCrashes):
        for index in range(spec.count):
            at = fault_stream_uniform(seed, spec.label, index, "at") * horizon
            jitter = 0.5 + fault_stream_uniform(seed, spec.label, index, "jit")
            duration = spec.downtime_fraction * horizon * jitter
            host = int(
                fault_stream_u64(seed, spec.label, index, "host")
                % topology.num_hosts
            )
            _materialize_spec(
                HostFault(host, at=at, duration=duration, policy=spec.policy),
                topology, seed, horizon, actions,
            )
        return
    raise FaultError(f"unknown fault spec {spec!r}")


def build_timeline(
    profile: FaultProfile, topology: Topology, horizon: float
) -> Tuple[FaultAction, ...]:
    """Materialize a profile into a sorted, deterministic action timeline.

    A pure function of its arguments: stochastic draws come from the
    blake2b fault stream seeded by ``profile.effective_seed``, so the
    same ``(profile, topology, horizon)`` always yields a bit-identical
    timeline.
    """
    if horizon <= 0:
        raise FaultError(f"timeline horizon must be positive, got {horizon}")
    actions: List[FaultAction] = []
    for spec in profile.specs:
        _materialize_spec(
            spec, topology, profile.effective_seed, horizon, actions
        )
    actions.sort(key=lambda a: (a.time, a.kind, a.links, a.hosts, a.cause))
    return tuple(actions)


# ----------------------------------------------------------------------
# Run-level statistics
# ----------------------------------------------------------------------
@dataclass
class FaultStats:
    """What one simulation run's fault injection did (and cost).

    Surfaced on :attr:`repro.simulator.runtime.SimulationResult.fault_stats`
    and condensed by :func:`repro.simulator.observability.fault_counters`.
    """

    faults_injected: int = 0
    repairs_applied: int = 0
    link_down_events: int = 0
    switch_failures: int = 0
    host_crashes: int = 0
    #: flows moved onto an alternate path when their route lost a link
    flows_rerouted: int = 0
    #: remaining volume of rerouted flows at reroute time
    rerouted_bytes: float = 0.0
    #: flows stalled with no usable path (partition or crashed endpoint)
    flows_parked: int = 0
    #: restart-from-zero aborts (progress discarded by a host crash)
    flow_restarts: int = 0
    #: parked flows that resumed after a repair
    flows_recovered: int = 0
    #: per-recovery stall durations (park -> unpark), seconds
    recovery_seconds: List[float] = field(default_factory=list)
    #: HR coordination rounds observed / dropped / delayed
    hr_rounds_total: int = 0
    hr_rounds_dropped: int = 0
    hr_rounds_delayed: int = 0
    #: staleness of the receivers' Ψ̈ view at each coordination round
    hr_staleness: List[float] = field(default_factory=list)

    @property
    def max_recovery_seconds(self) -> float:
        return max(self.recovery_seconds, default=0.0)

    @property
    def mean_recovery_seconds(self) -> float:
        if not self.recovery_seconds:
            return 0.0
        return sum(self.recovery_seconds) / len(self.recovery_seconds)

    @property
    def max_hr_staleness(self) -> float:
        return max(self.hr_staleness, default=0.0)

    def staleness_histogram(
        self, bin_edges: Sequence[float]
    ) -> List[int]:
        """Counts of HR-staleness samples per ``bin_edges`` bucket.

        Returns ``len(bin_edges) + 1`` counts: one per half-open bucket
        ``[edge[i-1], edge[i])`` plus a final overflow bucket.
        """
        edges = sorted(bin_edges)
        counts = [0] * (len(edges) + 1)
        for sample in self.hr_staleness:
            slot = len(edges)
            for index, edge in enumerate(edges):
                if sample < edge:
                    slot = index
                    break
            counts[slot] += 1
        return counts


# ----------------------------------------------------------------------
# The injector (live fault state of one run)
# ----------------------------------------------------------------------
class FaultInjector:
    """Owns one run's fault timeline and live degradation state.

    Link and host outages are reference-counted so overlapping faults
    (e.g. a link flap during a switch failure touching the same cable)
    compose correctly: a resource is up again only when its last
    outstanding fault has been repaired.
    """

    def __init__(
        self,
        profile: FaultProfile,
        topology: Topology,
        horizon: float,
    ) -> None:
        self.profile = profile
        self.timeline: Tuple[FaultAction, ...] = build_timeline(
            profile, topology, horizon
        )
        self.stats = FaultStats()
        #: live downed-link view; shared with the router (same set object)
        self.downed_links: Set[int] = set()
        #: live crashed-host view; shared with schedulers that care
        self.crashed_hosts: Set[int] = set()
        #: recovery policy per crashed host (last crash wins)
        self.host_policy: Dict[int, str] = {}
        self._link_down_count: Dict[int, int] = {}
        self._host_down_count: Dict[int, int] = {}
        self._hr_seed = profile.effective_seed
        self._hr_last_delivered: Optional[float] = None

    # ------------------------------------------------------------------
    # Topology state transitions (called by the runtime per action)
    # ------------------------------------------------------------------
    def links_down(self, links: Sequence[int]) -> List[int]:
        """Record an outage; returns links that newly transitioned down."""
        newly: List[int] = []
        for link_id in links:
            count = self._link_down_count.get(link_id, 0)
            self._link_down_count[link_id] = count + 1
            if count == 0:
                self.downed_links.add(link_id)
                newly.append(link_id)
        return newly

    def links_up(self, links: Sequence[int]) -> List[int]:
        """Record a repair; returns links that newly transitioned up."""
        restored: List[int] = []
        for link_id in links:
            count = self._link_down_count.get(link_id, 0) - 1
            if count <= 0:
                self._link_down_count.pop(link_id, None)
                if link_id in self.downed_links:
                    self.downed_links.discard(link_id)
                    restored.append(link_id)
            else:
                self._link_down_count[link_id] = count
        return restored

    def hosts_down(self, hosts: Sequence[int], policy: str) -> List[int]:
        newly: List[int] = []
        for host in hosts:
            count = self._host_down_count.get(host, 0)
            self._host_down_count[host] = count + 1
            self.host_policy[host] = policy
            if count == 0:
                self.crashed_hosts.add(host)
                newly.append(host)
        return newly

    def hosts_up(self, hosts: Sequence[int]) -> List[int]:
        recovered: List[int] = []
        for host in hosts:
            count = self._host_down_count.get(host, 0) - 1
            if count <= 0:
                self._host_down_count.pop(host, None)
                self.host_policy.pop(host, None)
                if host in self.crashed_hosts:
                    self.crashed_hosts.discard(host)
                    recovered.append(host)
            else:
                self._host_down_count[host] = count
        return recovered

    # ------------------------------------------------------------------
    # HR coordination channel
    # ------------------------------------------------------------------
    def hr_disposition(
        self, round_index: int, now: float
    ) -> Tuple[str, float]:
        """Fate of the ``round_index``-th δ-round sync: deliver/drop/delay.

        Returns ``(disposition, delay_seconds)``.  Hash-indexed by round
        number — evaluating rounds in any order yields the same fates.
        Also records the staleness sample for this round (time since the
        receivers last saw a delivered sync).
        """
        self.stats.hr_rounds_total += 1
        if self._hr_last_delivered is not None:
            self.stats.hr_staleness.append(now - self._hr_last_delivered)
        spec = self.profile.hr
        if spec is None or now < spec.start or (
            spec.duration is not None and now >= spec.start + spec.duration
        ):
            self._hr_last_delivered = now
            return HR_DELIVER, 0.0
        roll = fault_stream_uniform(self._hr_seed, "hr-round", round_index)
        if roll < spec.drop_fraction:
            self.stats.hr_rounds_dropped += 1
            return HR_DROP, 0.0
        if roll < spec.drop_fraction + spec.delay_fraction:
            self.stats.hr_rounds_delayed += 1
            delay = spec.max_delay * fault_stream_uniform(
                self._hr_seed, "hr-delay", round_index
            )
            return HR_DELAY, max(delay, 1e-9)
        self._hr_last_delivered = now
        return HR_DELIVER, 0.0

    def hr_delivered(self, now: float) -> None:
        """A delayed sync finally arrived: the receivers' view is fresh."""
        self._hr_last_delivered = now


__all__ = [
    "CANNED_PROFILES",
    "FAULT_STREAM_NAMESPACE",
    "FaultAction",
    "FaultInjector",
    "FaultKind",
    "FaultProfile",
    "FaultStats",
    "HRDegradation",
    "HR_DELAY",
    "HR_DELIVER",
    "HR_DROP",
    "HostFault",
    "LinkFault",
    "POLICY_RESTART",
    "POLICY_RESUME",
    "RandomHostCrashes",
    "RandomLinkFlaps",
    "RandomSwitchFailures",
    "SwitchFault",
    "build_timeline",
    "default_fault_horizon",
    "derive_fault_seed",
    "fault_stream_u64",
    "fault_stream_uniform",
    "profile_from_name",
]
