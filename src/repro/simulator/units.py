"""Dimensional unit aliases for simulator quantities.

Every scalar the simulator moves around is one of four physical kinds:

* :data:`Seconds` — simulation timestamps, durations, horizons;
* :data:`Bytes` — transfer volumes (flow sizes, port loads, residuals);
* :data:`BytesPerSec` — rates (link capacities, allocated bandwidth);
* :data:`Fraction` — dimensionless ratios (utilization, optimality gaps).

The aliases are plain ``float`` at runtime — annotating a signature with
them changes nothing about execution, pickling, or numeric results.  They
exist so that (a) readers see the unit contract in the signature and
(b) ``simlint --units`` (SIM301-SIM308) can seed its interprocedural
dimensional-analysis dataflow from the annotations and prove that no
bytes-vs-seconds or rate-vs-volume mixup flows between the lower-bound
theory, the max-min allocator, and the runtime.

A module that adopts these annotations must also be listed in the units
registry (``UNITS_MODULES`` in ``tools/simlint/units.py``); SIM308
reports drift in either direction.  Import under ``TYPE_CHECKING`` where
a runtime import could cycle (the jobs layer); the aliases are only ever
consumed by annotations.
"""

from __future__ import annotations

#: A simulation timestamp or duration, in seconds.
Seconds = float

#: A data volume, in bytes.
Bytes = float

#: A transfer or link rate, in bytes per second.
BytesPerSec = float

#: A dimensionless ratio (utilization, share, optimality gap).
Fraction = float

__all__ = ["Bytes", "BytesPerSec", "Fraction", "Seconds"]
