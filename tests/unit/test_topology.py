"""Unit tests for the big-switch fabric and FatTree topologies."""

import pytest

from repro.errors import TopologyError
from repro.experiments.common import (
    ScenarioConfig,
    build_topology,
    scenario_link_rate,
)
from repro.simulator.topology.bigswitch import BigSwitchTopology
from repro.simulator.topology.fattree import FatTreeTopology
from repro.simulator.topology.links import TEN_GBPS, LinkTable


class TestLinkTable:
    def test_ids_are_sequential(self):
        table = LinkTable()
        assert table.add("a", "b", 1.0) == 0
        assert table.add("b", "a", 1.0) == 1
        assert len(table) == 2

    def test_duplicate_rejected(self):
        table = LinkTable()
        table.add("a", "b", 1.0)
        with pytest.raises(TopologyError):
            table.add("a", "b", 2.0)

    def test_duplex_adds_both_directions(self):
        table = LinkTable()
        forward, backward = table.add_duplex("a", "b", 3.0)
        assert table.id_of("a", "b") == forward
        assert table.id_of("b", "a") == backward

    def test_missing_lookup_raises(self):
        with pytest.raises(TopologyError):
            LinkTable().id_of("x", "y")

    def test_capacity_must_be_positive(self):
        with pytest.raises(TopologyError):
            LinkTable().add("a", "b", 0.0)


class TestBigSwitch:
    def test_route_is_uplink_downlink(self):
        topo = BigSwitchTopology(4)
        route = topo.route(1, 3, selector=0)
        assert route == (topo.uplink_of(1), topo.downlink_of(3))

    def test_single_route_choice(self):
        assert BigSwitchTopology(4).num_route_choices(0, 1) == 1

    def test_self_route_rejected(self):
        with pytest.raises(TopologyError):
            BigSwitchTopology(4).route(2, 2, 0)

    def test_host_validation(self):
        with pytest.raises(TopologyError):
            BigSwitchTopology(4).route(0, 9, 0)

    def test_needs_two_hosts(self):
        with pytest.raises(TopologyError):
            BigSwitchTopology(1)


class TestFatTree:
    def test_paper_8_pod_dimensions(self):
        """The paper's topology: 128 servers and 80 switches at k=8."""
        topo = FatTreeTopology(k=8)
        assert topo.num_hosts == 128
        assert topo.num_switches == 80

    def test_48_pod_dimensions(self):
        """The bursty scenario's scale: 27648 servers, 2880 switches."""
        topo = FatTreeTopology(k=48)
        assert topo.num_hosts == 27_648
        assert topo.num_switches == 2_880

    def test_k_must_be_even(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(k=5)

    def test_route_choice_counts(self):
        topo = FatTreeTopology(k=4)
        # same edge switch: hosts 0 and 1
        assert topo.num_route_choices(0, 1) == 1
        # same pod, different edge: hosts 0 and 2
        assert topo.num_route_choices(0, 2) == 2
        # different pods: k/2 squared
        assert topo.num_route_choices(0, topo.num_hosts - 1) == 4

    def test_route_lengths(self):
        topo = FatTreeTopology(k=4)
        assert len(topo.route(0, 1, 0)) == 2  # host-edge-host
        assert len(topo.route(0, 2, 0)) == 4  # via aggregation
        assert len(topo.route(0, topo.num_hosts - 1, 0)) == 6  # via core

    def test_routes_connect_endpoints(self):
        topo = FatTreeTopology(k=4)
        for selector in range(4):
            route = topo.route(0, 15, selector)
            links = [topo.links.link(link_id) for link_id in route]
            assert links[0].src_node == "h0"
            assert links[-1].dst_node == "h15"
            for earlier, later in zip(links, links[1:]):
                assert earlier.dst_node == later.src_node

    def test_all_selectors_give_distinct_core_paths(self):
        topo = FatTreeTopology(k=4)
        routes = {topo.route(0, 15, s) for s in range(4)}
        assert len(routes) == 4

    def test_selector_wraps_modulo(self):
        topo = FatTreeTopology(k=4)
        assert topo.route(0, 15, 1) == topo.route(0, 15, 5)

    def test_host_position_roundtrip(self):
        topo = FatTreeTopology(k=4)
        seen = set()
        for host in range(topo.num_hosts):
            pod, edge, port = topo.host_position(host)
            assert 0 <= pod < 4 and 0 <= edge < 2 and 0 <= port < 2
            seen.add((pod, edge, port))
        assert len(seen) == topo.num_hosts

    def test_default_capacity_is_ten_gigabit(self):
        topo = FatTreeTopology(k=4)
        assert topo.links.link(0).capacity == TEN_GBPS


class TestScenarioLinkRate:
    """`scenario_link_rate` must track `host_link_capacity` exactly.

    The helper is the pure-of-the-config shortcut bound computations use
    instead of building the fabric; if either topology ever grows
    non-uniform capacities, these pins force the shortcut to be revisited.
    """

    @pytest.mark.parametrize(
        "config",
        [
            ScenarioConfig(topology="fattree", fattree_k=4),
            ScenarioConfig(
                topology="fattree", fattree_k=4, link_capacity=2.5 * TEN_GBPS
            ),
            ScenarioConfig(topology="bigswitch", num_hosts=8),
            ScenarioConfig(
                topology="bigswitch", num_hosts=8, link_capacity=0.5 * TEN_GBPS
            ),
        ],
        ids=["fattree-default", "fattree-scaled", "bigswitch-default", "bigswitch-scaled"],
    )
    def test_matches_built_topology(self, config):
        assert scenario_link_rate(config) == build_topology(config).host_link_capacity

    def test_default_is_ten_gigabit(self):
        assert scenario_link_rate(ScenarioConfig()) == TEN_GBPS
