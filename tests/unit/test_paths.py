"""Unit tests for path enumeration and critical paths."""

import pytest

from repro.jobs import (
    JobBuilder,
    critical_path,
    critical_path_coflows,
    enumerate_paths,
    path_cost,
)
from repro.jobs.dag import CoflowDag


class TestEnumeration:
    def test_chain_has_single_path(self):
        dag = CoflowDag([0, 1, 2], [(0, 1), (1, 2)])
        assert enumerate_paths(dag) == [(0, 1, 2)]

    def test_diamond_has_two_paths(self):
        dag = CoflowDag([0, 1, 2, 3], [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert sorted(enumerate_paths(dag)) == [(0, 1, 3), (0, 2, 3)]

    def test_limit_enforced(self):
        dag = CoflowDag([0, 1, 2], [(0, 1), (0, 2)])
        with pytest.raises(ValueError):
            enumerate_paths(dag, limit=1)


class TestCriticalPath:
    def test_picks_heaviest_path(self):
        dag = CoflowDag([0, 1, 2, 3], [(0, 1), (0, 2), (1, 3), (2, 3)])
        costs = {0: 1.0, 1: 10.0, 2: 2.0, 3: 1.0}
        path, total = critical_path(dag, costs.__getitem__)
        assert path == (0, 1, 3)
        assert total == pytest.approx(12.0)

    def test_matches_brute_force_enumeration(self):
        dag = CoflowDag(
            list(range(6)),
            [(0, 2), (1, 2), (2, 4), (3, 4), (2, 5)],
        )
        costs = {0: 3.0, 1: 1.0, 2: 2.0, 3: 9.0, 4: 1.0, 5: 4.0}
        _, dp_total = critical_path(dag, costs.__getitem__)
        brute = max(
            sum(costs[c] for c in path) for path in enumerate_paths(dag)
        )
        assert dp_total == pytest.approx(brute)

    def test_empty_dag(self):
        path, total = critical_path(CoflowDag([]), lambda c: 1.0)
        assert path == ()
        assert total == 0.0

    def test_job_level_uses_max_flow_over_rate(self, ids):
        builder = JobBuilder(ids=ids)
        a = builder.add_coflow([(0, 1, 100.0), (0, 2, 10.0)])
        b = builder.add_coflow([(1, 2, 30.0)], depends_on=[a])
        job = builder.build()
        path, total = critical_path_coflows(job, processing_rate=10.0)
        assert path == (a, b)
        assert total == pytest.approx((100.0 + 30.0) / 10.0)

    def test_rate_must_be_positive(self, diamond_job):
        with pytest.raises(ValueError):
            critical_path_coflows(diamond_job, processing_rate=0.0)


class TestPathCost:
    def test_valid_chain_summed(self):
        dag = CoflowDag([0, 1, 2], [(0, 1), (1, 2)])
        assert path_cost(dag, (0, 1, 2), lambda c: float(c + 1)) == 6.0

    def test_invalid_chain_rejected(self):
        dag = CoflowDag([0, 1, 2], [(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            path_cost(dag, (0, 2), lambda c: 1.0)
