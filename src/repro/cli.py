"""Command-line interface: run scenarios, figures, trials, trace tooling.

Examples::

    python -m repro info
    python -m repro scenario --structure tpcds --jobs 40 --arrival bursty
    python -m repro figure fig5 --jobs 40 --out fig5.json
    python -m repro figure fig5 --parallel 4 --cache-dir .repro-cache
    python -m repro trials --jobs 30 --seeds 1,2,3,4 --parallel 4
    python -m repro scenario --jobs 40 --fault-profile link-flap
    python -m repro chaos --jobs 30 --profiles link-flap,hr-loss --parallel 4
    python -m repro gap --parallel 4 --out GAP_GOLDEN.json
    python -m repro gap --check GAP_GOLDEN.json
    python -m repro trace --synthesize 200 --out /tmp/trace.txt
    python -m repro trace --stats /tmp/trace.txt
    python -m repro trials --run-dir runs/nightly --checkpoint-every 5
    python -m repro gap --run-dir runs/gap --run-budget 3600 --allow-partial
    python -m repro resume runs/gap

``--parallel N`` fans independent scenario runs across N worker
processes through :mod:`repro.experiments.parallel`; results are
bit-identical to serial runs.  ``--cache-dir`` reuses completed units
across invocations.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import List, Optional, Sequence

from repro import __version__
from repro.experiments.chaos import run_chaos
from repro.experiments.common import ScenarioConfig, run_scenario
from repro.experiments.figures import (
    figure5_configs,
    figure6_config,
    figure7_config,
    figure8_config,
    run_figure_configs,
)
from repro.experiments.parallel import GridReport, ProgressEvent, WorkUnit
from repro.experiments.supervisor import (
    SupervisorReport,
    resume_run,
    run_supervised,
)
from repro.experiments.trials import TrialResult, run_trials
from repro.metrics.report import (
    format_category_table,
    format_degradation_table,
    format_fault_table,
    format_improvement_row,
    format_jct_table,
)
from repro.metrics.serialize import comparison_to_dict, load_json, save_json
from repro.schedulers.registry import available_schedulers
from repro.simulator.faults import CANNED_PROFILES
from repro.simulator.observability import fault_counters
from repro.theory.gap import (
    GAP_FAMILIES,
    check_gap_golden,
    gap_report_from_grid,
    gap_scenarios,
    golden_harness_report,
    run_gap,
)
from repro.workloads.fbtrace import parse_trace, synthesize_trace, write_trace
from repro.workloads.stats import format_trace_stats, trace_stats


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gurita (ICDCS 2019) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library, schedulers, and topology info")

    scenario = sub.add_parser("scenario", help="run one scenario")
    scenario.add_argument("--structure", default="fb-tao")
    scenario.add_argument("--jobs", type=int, default=40)
    scenario.add_argument(
        "--arrival", default="uniform",
        choices=["uniform", "poisson", "bursty", "simultaneous"],
    )
    scenario.add_argument("--seed", type=int, default=42)
    scenario.add_argument("--load", type=float, default=1.5)
    scenario.add_argument(
        "--topology", default="fattree", choices=["fattree", "bigswitch"],
    )
    scenario.add_argument("--fattree-k", type=int, default=8)
    scenario.add_argument(
        "--hosts", type=int, default=0,
        help="host count for --topology bigswitch (0 = default 16)",
    )
    scenario.add_argument(
        "--schedulers",
        default="pfs,baraat,stream,aalo,gurita",
        help="comma-separated policy names",
    )
    _add_fault_flags(scenario)
    _add_supervisor_flags(scenario)
    scenario.add_argument("--out", help="write results JSON here")

    figure = sub.add_parser("figure", help="reproduce one paper figure")
    figure.add_argument(
        "name", choices=["fig5", "fig6", "fig7", "fig8"],
    )
    figure.add_argument("--structure", default="fb-tao")
    figure.add_argument("--jobs", type=int, default=None)
    figure.add_argument("--out", help="write results JSON here")
    _add_engine_flags(figure)

    trials = sub.add_parser(
        "trials", help="replay one scenario across seeds (mean ± std)"
    )
    trials.add_argument("--structure", default="fb-tao")
    trials.add_argument("--jobs", type=int, default=30)
    trials.add_argument(
        "--arrival", default="uniform",
        choices=["uniform", "poisson", "bursty", "simultaneous"],
    )
    trials.add_argument("--load", type=float, default=1.5)
    trials.add_argument("--fattree-k", type=int, default=8)
    trials.add_argument(
        "--seeds", default="1,2,3", help="comma-separated replicate seeds"
    )
    trials.add_argument(
        "--schedulers",
        default="pfs,baraat,stream,aalo,gurita",
        help="comma-separated policy names",
    )
    trials.add_argument(
        "--gaps", action="store_true",
        help="also report each policy's mean optimality gap (JCT over the "
        "combinatorial lower bound) across seeds",
    )
    _add_engine_flags(trials)
    _add_supervisor_flags(trials)

    chaos = sub.add_parser(
        "chaos", help="compare schedulers on a faulted vs perfect fabric"
    )
    chaos.add_argument("--structure", default="fb-tao")
    chaos.add_argument("--jobs", type=int, default=40)
    chaos.add_argument(
        "--arrival", default="uniform",
        choices=["uniform", "poisson", "bursty", "simultaneous"],
    )
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument("--load", type=float, default=1.5)
    chaos.add_argument(
        "--topology", default="fattree", choices=["fattree", "bigswitch"],
    )
    chaos.add_argument("--fattree-k", type=int, default=8)
    chaos.add_argument(
        "--profiles",
        default=",".join(CANNED_PROFILES),
        help="comma-separated fault profiles to inject (each runs the "
        "scenario once, compared against a shared no-fault baseline)",
    )
    chaos.add_argument(
        "--intensity", type=float, default=1.0,
        help="scales the profiles' incident counts / HR degradation",
    )
    chaos.add_argument(
        "--fault-seed", type=int, default=0,
        help="pin the fault streams (0 = derive from the workload seed)",
    )
    chaos.add_argument(
        "--schedulers",
        default="pfs,baraat,stream,aalo,gurita",
        help="comma-separated policy names",
    )
    _add_engine_flags(chaos)

    gap = sub.add_parser(
        "gap", help="optimality-gap harness: JCT vs combinatorial lower bound"
    )
    gap.add_argument("--jobs", type=int, default=12)
    gap.add_argument("--fattree-k", type=int, default=4)
    gap.add_argument("--seed", type=int, default=42)
    gap.add_argument(
        "--schedulers", default="all",
        help="comma-separated policy names ('all' = the full registry)",
    )
    gap.add_argument(
        "--families",
        default=",".join(name for name, *_ in GAP_FAMILIES),
        help="comma-separated scenario families "
        f"({', '.join(name for name, *_ in GAP_FAMILIES)})",
    )
    gap.add_argument(
        "--out", help="write the golden-format gap artifact JSON here"
    )
    gap.add_argument(
        "--check", metavar="GOLDEN",
        help="re-run a committed golden artifact's harness parameters and "
        "fail unless the gap fingerprint matches it",
    )
    _add_engine_flags(gap)
    _add_supervisor_flags(gap)

    resume = sub.add_parser(
        "resume",
        help="resume an interrupted supervised run from its manifest",
    )
    resume.add_argument(
        "manifest",
        help="path to a supervised run's manifest.json (or its run directory)",
    )
    resume.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="fan the remaining units across N worker processes",
    )
    resume.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="SECONDS",
        help="override the manifest's checkpoint cadence (simulated "
        "seconds; default: the cadence recorded in the manifest)",
    )
    resume.add_argument(
        "--run-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for this resume pass; at expiry pending "
        "units are checkpointed and marked abandoned for the next resume",
    )
    resume.add_argument(
        "--allow-partial", action="store_true",
        help="exit 0 reporting per-unit statuses even if some units "
        "remain failed/abandoned",
    )

    trace = sub.add_parser("trace", help="trace tooling")
    trace.add_argument("--synthesize", type=int, metavar="N")
    trace.add_argument("--machines", type=int, default=3000)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", help="trace output path")
    trace.add_argument("--stats", metavar="PATH", help="summarise a trace file")

    return parser


def _add_fault_flags(sub: argparse.ArgumentParser) -> None:
    """The fault-injection knobs of fabric-level subcommands."""
    sub.add_argument(
        "--fault-profile", default="", metavar="NAME",
        help="inject a canned fault profile "
        f"({', '.join(CANNED_PROFILES)}; default: perfect fabric)",
    )
    sub.add_argument(
        "--fault-intensity", type=float, default=1.0,
        help="scales the profile's incident counts / HR degradation",
    )
    sub.add_argument(
        "--fault-seed", type=int, default=0,
        help="pin the fault streams (0 = derive from the workload seed)",
    )


def _add_engine_flags(sub: argparse.ArgumentParser) -> None:
    """The parallel-engine knobs shared by grid-shaped subcommands."""
    sub.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="fan independent scenario runs across N worker processes "
        "(results stay bit-identical to --parallel 1)",
    )
    sub.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="reuse completed units from (and persist them to) this "
        "on-disk result cache",
    )


def _add_supervisor_flags(sub: argparse.ArgumentParser) -> None:
    """The crash-safe run-manager knobs (see ``repro.experiments.supervisor``)."""
    sub.add_argument(
        "--run-dir", default=None, metavar="PATH",
        help="supervise the run: persist a resumable manifest, result "
        "cache, and per-unit checkpoints under this directory",
    )
    sub.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="SECONDS",
        help="checkpoint each in-flight simulation every SECONDS of "
        "simulated time (requires --run-dir; default: no checkpoints)",
    )
    sub.add_argument(
        "--run-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole run (requires --run-dir); "
        "at expiry pending units are checkpointed and marked abandoned, "
        "resumable via `repro resume`",
    )
    sub.add_argument(
        "--resume", action="store_true",
        help="resume the manifest already in --run-dir instead of "
        "building a fresh unit list from these flags",
    )
    sub.add_argument(
        "--allow-partial", action="store_true",
        help="report per-unit statuses instead of failing the whole "
        "command when some units fail or run out of budget",
    )


def _print_progress(event: ProgressEvent) -> None:
    print(
        f"[{event.completed}/{event.total}] {event.kind}: "
        f"{event.unit.describe()}",
        file=sys.stderr,
    )


def _engine_summary(report: GridReport) -> str:
    stats = report.stats
    line = (
        f"engine: {stats.completed}/{stats.total_units} units, "
        f"{stats.workers} worker(s), {stats.cache_hits} cache hit(s), "
        f"{stats.retries} retried, {stats.failures} failed"
    )
    for label, count in (
        ("worker crash(es)", stats.worker_crashes),
        ("corrupt cache entr(ies)", stats.cache_corrupt),
        ("abandoned on budget", stats.abandoned),
    ):
        if count:
            line += f", {count} {label}"
    if stats.elapsed_seconds > 0:
        line += (
            f", {stats.elapsed_seconds:.1f}s elapsed, "
            f"utilization {stats.worker_utilization:.0%}"
        )
    return line


def _failure_lines(report: GridReport) -> List[str]:
    """One diagnostic line per failed unit, with per-attempt wall times."""
    lines = []
    for failure in report.failures:
        times = (
            ", ".join(f"{s:.1f}s" for s in failure.attempt_seconds)
            if failure.attempt_seconds
            else "no attempt launched"
        )
        lines.append(
            f"  {failure.unit.describe()}: [{failure.kind}] "
            f"{failure.attempts} attempt(s) ({times}): {failure.error}"
        )
    return lines


def _jct_fingerprint(report: GridReport) -> str:
    """blake2b-16 over every completed unit's sorted per-job JCTs.

    The same scheme as ``benchmarks/fingerprint_figures.py``: any float
    divergence in any completed simulation changes it, which is what the
    resume-smoke check diffs against an uninterrupted run.
    """
    record = {}
    for unit, outcome in zip(report.units, report.results):
        if outcome is None:
            continue
        record[unit.describe()] = {
            name: sorted(result.job_completion_times().items())
            for name, result in sorted(outcome.results.items())
        }
    encoded = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).hexdigest()


def _run_supervised_cli(
    args: argparse.Namespace, units: Sequence[WorkUnit]
) -> SupervisorReport:
    """Run (or resume) the supervised grid described by ``args``."""
    parallel = getattr(args, "parallel", 1)
    progress = _print_progress if parallel > 1 else None
    if args.resume:
        return resume_run(
            args.run_dir,
            parallel=parallel,
            checkpoint_every=args.checkpoint_every,
            run_budget=args.run_budget,
            allow_partial=args.allow_partial,
            progress=progress,
        )
    return run_supervised(
        units,
        args.run_dir,
        checkpoint_every=args.checkpoint_every,
        parallel=parallel,
        run_budget=args.run_budget,
        allow_partial=args.allow_partial,
        progress=progress,
    )


def _print_supervised_summary(outcome: SupervisorReport) -> None:
    counts = outcome.counts()
    summary = ", ".join(
        f"{counts[key]} {key}"
        for key in ("completed", "resumed", "failed", "abandoned")
        if counts.get(key)
    )
    print(f"supervised: {summary or 'nothing to do'}")
    print(_engine_summary(outcome.report))
    for line in _failure_lines(outcome.report):
        print(line)
    print(f"jct fingerprint: {_jct_fingerprint(outcome.report)}")
    if outcome.manifest_path is not None and outcome.resumable:
        print(f"resume with: repro resume {outcome.manifest_path}")


def _reject_unsupervised_flags(args: argparse.Namespace) -> Optional[str]:
    """Supervisor knobs only mean something under a --run-dir."""
    if getattr(args, "run_dir", None):
        return None
    for flag, name in (
        (args.checkpoint_every, "--checkpoint-every"),
        (args.run_budget, "--run-budget"),
        (args.resume or None, "--resume"),
        (args.allow_partial or None, "--allow-partial"),
    ):
        if flag is not None:
            return f"{name} requires --run-dir (the supervised run directory)"
    return None


def cmd_info() -> int:
    from repro.simulator.topology.fattree import FatTreeTopology

    print(f"repro {__version__} — Gurita (ICDCS 2019) reproduction")
    print(f"schedulers: {', '.join(available_schedulers())}")
    for k in (4, 8, 48):
        topo = FatTreeTopology(k=k)
        print(
            f"fattree k={k}: {topo.num_hosts} hosts, "
            f"{topo.num_switches} switches, {topo.num_links} directed links"
        )
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        name="cli",
        structure=args.structure,
        num_jobs=args.jobs,
        arrival_mode=args.arrival,
        seed=args.seed,
        offered_load=args.load,
        topology=args.topology,
        fattree_k=args.fattree_k,
        num_hosts=args.hosts,
        fault_profile=args.fault_profile,
        fault_intensity=args.fault_intensity,
        fault_seed=args.fault_seed,
    )
    schedulers = tuple(name.strip() for name in args.schedulers.split(","))
    guard = _reject_unsupervised_flags(args)
    if guard:
        print(guard, file=sys.stderr)
        return 2
    if args.run_dir:
        sup = _run_supervised_cli(
            args, [WorkUnit(config=config, schedulers=schedulers)]
        )
        _print_supervised_summary(sup)
        if not sup.ok:
            return 1
        first = sup.report.results[0]
        assert first is not None
        outcome = first
    else:
        outcome = run_scenario(config, schedulers=schedulers)
    print(format_jct_table(outcome.average_jcts()))
    if args.fault_profile:
        print()
        print(f"fault profile {args.fault_profile!r}:")
        print(
            format_fault_table(
                {
                    name: fault_counters(result)
                    for name, result in outcome.results.items()
                }
            )
        )
    # Surfaced when the run was invariant-checked (REPRO_INVARIANTS=1|strict).
    for name, result in outcome.results.items():
        if result.invariant_report is not None:
            print(f"{name}: {result.invariant_report.summary()}")
    if "gurita" in outcome.results and len(outcome.results) > 1:
        print()
        print(format_improvement_row("vs gurita", outcome.improvements_over()))
        print()
        print(
            format_category_table(
                outcome.category_improvements_over(),
                title="per-category improvement of gurita:",
            )
        )
    if args.out:
        path = save_json(comparison_to_dict(outcome.results), args.out)
        print(f"\nwrote {path}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    if args.name == "fig5":
        configs = figure5_configs(num_jobs=args.jobs or 40)
    elif args.name == "fig6":
        configs = [figure6_config(args.structure, num_jobs=args.jobs or 70)]
    elif args.name == "fig7":
        configs = [figure7_config(args.structure, num_jobs=args.jobs or 60)]
    else:
        configs = [figure8_config(args.structure, num_jobs=args.jobs or 70)]
    progress = _print_progress if args.parallel > 1 else None
    outcomes, report = run_figure_configs(
        configs,
        parallel=args.parallel,
        cache_dir=args.cache_dir,
        progress=progress,
    )
    records = {}
    for config in configs:
        outcome = outcomes[config.name]
        records[config.name] = comparison_to_dict(outcome.results)
        reference = "gurita" if "gurita" in outcome.results else None
        print(f"== {config.name}")
        print(format_jct_table(outcome.average_jcts()))
        if reference and len(outcome.results) > 1:
            print(
                format_category_table(
                    outcome.category_improvements_over(reference),
                    title=f"per-category improvement of {reference}:",
                )
            )
        print()
    print(_engine_summary(report))
    if args.out:
        path = save_json(records, args.out)
        print(f"wrote {path}")
    return 0


def cmd_trials(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        name="cli-trials",
        structure=args.structure,
        num_jobs=args.jobs,
        arrival_mode=args.arrival,
        offered_load=args.load,
        fattree_k=args.fattree_k,
    )
    seeds = tuple(int(seed.strip()) for seed in args.seeds.split(","))
    schedulers = tuple(name.strip() for name in args.schedulers.split(","))
    guard = _reject_unsupervised_flags(args)
    if guard:
        print(guard, file=sys.stderr)
        return 2
    if args.run_dir:
        units = [
            WorkUnit(config=config, seed=seed, schedulers=schedulers)
            for seed in seeds
        ]
        sup = _run_supervised_cli(args, units)
        _print_supervised_summary(sup)
        if not sup.ok:
            return 1
        # A resume replays the manifest's units, so read seeds and
        # schedulers back from the report rather than trusting the flags
        # (kept out of the `seeds` variable: the report carries the
        # cache salt's environment taint, and `seeds` feeds run_trials).
        shown_seeds = tuple(unit.effective_seed for unit in sup.report.units)
        shown_schedulers = sup.report.units[0].scheduler_names()
        trial = TrialResult(
            config=sup.report.units[0].config,
            outcomes=sup.report.scenario_results(),
            report=sup.report,
        )
    else:
        trial = run_trials(
            config,
            seeds=seeds,
            schedulers=schedulers,
            parallel=args.parallel,
            cache_dir=args.cache_dir,
        )
        shown_seeds = seeds
        shown_schedulers = schedulers
    print(f"trials over seeds {', '.join(str(s) for s in shown_seeds)}:")
    print("avg JCT per policy (mean ± std):")
    for name, stats in sorted(trial.average_jct_stats().items()):
        print(f"  {name:>10}  {stats}")
    if "gurita" in shown_schedulers and len(shown_schedulers) > 1:
        print("improvement of gurita (mean ± std):")
        for name, stats in sorted(trial.improvement_stats().items()):
            print(f"  {name:>10}  {stats}")
    if args.gaps:
        print("mean optimality gap per policy (mean ± std, 1.00 = optimal):")
        for name, stats in sorted(trial.gap_stats().items()):
            print(f"  {name:>10}  {stats}")
    if trial.report is not None and not args.run_dir:
        print(_engine_summary(trial.report))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        name="cli-chaos",
        structure=args.structure,
        num_jobs=args.jobs,
        arrival_mode=args.arrival,
        seed=args.seed,
        offered_load=args.load,
        topology=args.topology,
        fattree_k=args.fattree_k,
        schedulers=tuple(
            name.strip() for name in args.schedulers.split(",")
        ),
    )
    profiles = tuple(
        name.strip() for name in args.profiles.split(",") if name.strip()
    )
    progress = _print_progress if args.parallel > 1 else None
    report = run_chaos(
        config,
        profiles=profiles,
        intensity=args.intensity,
        fault_seed=args.fault_seed,
        parallel=args.parallel,
        cache_dir=args.cache_dir,
        progress=progress,
    )
    print("baseline (perfect fabric):")
    print(format_jct_table(report.baseline.average_jcts()))
    print()
    print(
        format_degradation_table(
            {profile: report.degradation(profile) for profile in profiles}
        )
    )
    for profile in profiles:
        print()
        print(f"fault handling under {profile!r}:")
        print(format_fault_table(report.fault_counters(profile)))
    if report.grid is not None:
        print()
        print(_engine_summary(report.grid))
    return 0


def cmd_gap(args: argparse.Namespace) -> int:
    progress = _print_progress if args.parallel > 1 else None
    guard = _reject_unsupervised_flags(args)
    if guard:
        print(guard, file=sys.stderr)
        return 2
    if args.check and args.run_dir:
        print(
            "--check replays a pinned harness and cannot be supervised; "
            "drop --run-dir",
            file=sys.stderr,
        )
        return 2
    if args.check:
        golden = load_json(args.check)
        report = golden_harness_report(
            golden,
            parallel=args.parallel,
            cache_dir=args.cache_dir,
            progress=progress,
        )
        report.validate()
        print(report.format_table())
        problems = check_gap_golden(report, golden)
        if problems:
            print(f"\ngap fingerprint diverged from {args.check}:", file=sys.stderr)
            for line in problems:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"\ngap fingerprint matches {args.check}: {report.fingerprint()}")
        if report.grid is not None:
            print(_engine_summary(report.grid))
        return 0
    schedulers = (
        None
        if args.schedulers.strip() == "all"
        else tuple(name.strip() for name in args.schedulers.split(","))
    )
    families = tuple(
        name.strip() for name in args.families.split(",") if name.strip()
    )
    if args.run_dir:
        names = (
            tuple(available_schedulers()) if schedulers is None else schedulers
        )
        scenarios = gap_scenarios(
            num_jobs=args.jobs,
            fattree_k=args.fattree_k,
            seed=args.seed,
            families=families,
        )
        units = [WorkUnit(config=c, schedulers=names) for c in scenarios]
        sup = _run_supervised_cli(args, units)
        _print_supervised_summary(sup)
        if not sup.ok:
            return 1
        report = gap_report_from_grid(sup.report)
    else:
        report = run_gap(
            schedulers=schedulers,
            num_jobs=args.jobs,
            fattree_k=args.fattree_k,
            seed=args.seed,
            families=families,
            parallel=args.parallel,
            cache_dir=args.cache_dir,
            progress=progress,
        )
    report.validate()
    print(report.format_table())
    worst = report.worst_cell()
    print(
        f"\nworst cell: {worst.scheduler} on {worst.scenario} "
        f"(mean {worst.mean_gap:.3f}x, max {worst.max_gap:.3f}x)"
    )
    print(f"fingerprint: {report.fingerprint()}")
    if report.grid is not None and not args.run_dir:
        print(_engine_summary(report.grid))
    if args.out:
        path = save_json(report.to_golden(), args.out)
        print(f"wrote {path}")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    outcome = resume_run(
        args.manifest,
        parallel=args.parallel,
        checkpoint_every=args.checkpoint_every,
        run_budget=args.run_budget,
        allow_partial=args.allow_partial,
        progress=_print_progress if args.parallel > 1 else None,
    )
    _print_supervised_summary(outcome)
    return 0 if outcome.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    if args.stats:
        _machines, trace = parse_trace(args.stats)
        print(format_trace_stats(trace_stats(trace)))
        return 0
    if args.synthesize:
        trace = synthesize_trace(
            args.synthesize, num_machines=args.machines, seed=args.seed
        )
        print(format_trace_stats(trace_stats(trace)))
        if args.out:
            write_trace(args.out, trace, num_machines=args.machines)
            print(f"wrote {args.out}")
        return 0
    print("trace: pass --synthesize N or --stats PATH", file=sys.stderr)
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return cmd_info()
    if args.command == "scenario":
        return cmd_scenario(args)
    if args.command == "figure":
        return cmd_figure(args)
    if args.command == "trials":
        return cmd_trials(args)
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "gap":
        return cmd_gap(args)
    if args.command == "resume":
        return cmd_resume(args)
    if args.command == "trace":
        return cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
