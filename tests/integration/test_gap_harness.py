"""Integration locks for the optimality-gap harness.

Four guarantees, end to end on the real simulator:

* **soundness** — the combinatorial lower bound never exceeds any
  scheduler's measured JCT, in every scenario family including the
  fault-injected one;
* **engine parity** — a ``parallel=2`` harness run fingerprints
  bit-identically to the serial run;
* **scale invariance** — for byte-threshold policies the gap curve is
  unchanged (to float noise) when every link's capacity doubles, because
  both the measured JCT and the bound scale as ``1/rate``;
* **pinned curves** — golden gap fingerprints for the figure-5/6-style
  workloads, plus the committed ``GAP_GOLDEN.json`` artifact that the
  ``gap-smoke`` CI job replays.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.common import PAPER_SCHEDULERS, ScenarioConfig
from repro.simulator.topology.links import TEN_GBPS
from repro.theory.gap import (
    GAP_FAMILIES,
    check_gap_golden,
    gap_scenarios,
    golden_harness_report,
    run_gap,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A reduced harness (half the golden job count) reused across tests.
HARNESS_KW = dict(num_jobs=6, fattree_k=4, seed=7)

#: Policies whose decisions depend only on byte counts / ranks, never on
#: wall-clock intervals — the family for which capacity-scale invariance
#: of the gap is exact.  stream/gurita/gurita+ schedule on time-based
#: coordination rounds, so their gaps legitimately move with the rate.
SCALE_FREE_SCHEDULERS = ("lp-order", "pfs", "sebf", "sg-dag", "tbs-sjf")

#: Captured with the harness in this tree; any change to a scheduler
#: decision, a bound term, or the workload generator shows up here.
GOLDEN_FIGURE_FINGERPRINTS = {
    "gapq-fbtao": "0b933d99a3ecb5333cce23e1f96c7d73",
    "gapq-tpcds": "8b8f448955f2b8090f0375809d452508",
}

FIGURE_SCENARIOS = {
    "gapq-fbtao": ScenarioConfig(
        name="gapq-fbtao", structure="fb-tao", num_jobs=15, fattree_k=4, seed=7
    ),
    "gapq-tpcds": ScenarioConfig(
        name="gapq-tpcds", structure="tpcds", num_jobs=15, fattree_k=4, seed=7,
        arrival_mode="bursty",
    ),
}


@pytest.fixture(scope="module")
def serial_report():
    return run_gap(**HARNESS_KW)


class TestSoundness:
    def test_bound_never_exceeds_jct_in_any_cell(self, serial_report):
        serial_report.validate()
        for scenario, row in serial_report.job_pairs.items():
            for scheduler, pairs in row.items():
                for job_id, (jct, bound) in pairs.items():
                    assert bound <= jct * (1.0 + 1e-9), (
                        f"{scenario}/{scheduler}: job {job_id} finished in "
                        f"{jct} but is bounded below by {bound}"
                    )

    def test_coverage_meets_the_acceptance_floor(self, serial_report):
        assert len(serial_report.schedulers) >= 7
        assert len(serial_report.cells) >= 3
        faulted = [
            config
            for config in serial_report.scenarios
            if config.fault_profile
        ]
        assert faulted, "the harness must cover a fault-injected family"
        for row in serial_report.cells.values():
            assert set(row) == set(serial_report.schedulers)

    def test_every_family_ships_by_default(self, serial_report):
        names = {config.name for config in serial_report.scenarios}
        assert names == {f"gap-{family[0]}" for family in GAP_FAMILIES}


class TestEngineParity:
    def test_parallel_run_is_bit_identical(self, serial_report):
        parallel_report = run_gap(parallel=2, **HARNESS_KW)
        assert parallel_report.fingerprint() == serial_report.fingerprint()
        assert parallel_report.mean_gaps() == serial_report.mean_gaps()

    def test_fingerprint_is_a_pure_function_of_the_pairs(self, serial_report):
        assert serial_report.fingerprint() == serial_report.fingerprint()


class TestScaleInvariance:
    def test_gaps_survive_a_capacity_doubling(self):
        # Simultaneous arrivals, so the whole schedule lives on one time
        # axis that a capacity doubling rescales by exactly 1/2: every
        # byte-threshold decision replays, JCTs and bounds both halve,
        # gaps stay put.  (Staggered arrivals would not rescale — the
        # arrival spacing is wall-clock — so overlap patterns, and hence
        # gaps, may legitimately shift there.)
        base = gap_scenarios(families=["trace-fbtao"], **HARNESS_KW)[
            0
        ].with_overrides(name="gap-scale-base", arrival_mode="simultaneous")
        scaled = base.with_overrides(
            name="gap-scale-2x", link_capacity=2.0 * TEN_GBPS
        )
        report = run_gap(
            scenarios=[base, scaled], schedulers=SCALE_FREE_SCHEDULERS
        )
        report.validate()
        gaps = report.mean_gaps()
        for name in SCALE_FREE_SCHEDULERS:
            assert gaps["gap-scale-2x"][name] == pytest.approx(
                gaps["gap-scale-base"][name], rel=1e-6
            )


class TestPinnedCurves:
    @pytest.mark.parametrize("scenario", sorted(FIGURE_SCENARIOS))
    def test_figure_scenario_gap_fingerprints(self, scenario):
        report = run_gap(
            scenarios=[FIGURE_SCENARIOS[scenario]],
            schedulers=PAPER_SCHEDULERS,
        )
        report.validate()
        assert report.fingerprint() == GOLDEN_FIGURE_FINGERPRINTS[scenario]

    def test_committed_golden_artifact_replays(self):
        golden = json.loads((REPO_ROOT / "GAP_GOLDEN.json").read_text())
        report = golden_harness_report(golden, parallel=2)
        report.validate()
        assert check_gap_golden(report, golden) == []


class TestCli:
    def test_gap_subcommand_smoke(self, capsys):
        from repro.cli import main

        code = main(
            [
                "gap",
                "--jobs", "3",
                "--schedulers", "pfs,sebf,sg-dag,lp-order",
                "--families", "trace-fbtao,faulted-fbtao",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fingerprint:" in out
        assert "sg-dag" in out and "lp-order" in out
