"""Shipped-tree acceptance: ``simlint --units src`` stays clean.

The dimensional-analysis layer must pass over the real source tree
modulo the committed baseline (``tools/simlint/units_baseline.json``),
and the registry in ``tools/simlint/units.py`` must agree with the unit
annotations actually present in the tree — drift in either direction
fails this test the same way it fails the CI units step.  A planted
regression (assigning a ``Bytes`` epsilon to a ``Seconds``-annotated
global inside a registered module) must surface as SIM301 at exactly
the planted line.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from tools.simlint.__main__ import EXIT_CLEAN, main
from tools.simlint.baseline import (
    apply_baseline,
    load_baseline,
)
from tools.simlint.units import (
    DEFAULT_UNITS_BASELINE_PATH,
    UNITS_MODULES,
    units_lint_paths,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / DEFAULT_UNITS_BASELINE_PATH


def test_shipped_tree_units_clean_modulo_baseline():
    report = units_lint_paths([str(REPO_ROOT / "src")])
    outcome = apply_baseline(report.findings, load_baseline(BASELINE))
    assert outcome.clean, (
        "units lint drifted from the committed baseline:\n"
        + "\n".join(
            [f.render() for f in outcome.new_findings]
            + [entry.render() for entry in outcome.stale]
        )
    )


def test_cli_units_baseline_run_is_clean(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["--units", "src", "--baseline"])
    assert code == EXIT_CLEAN, capsys.readouterr().out


def test_cli_all_layers_merged_baseline_run_is_clean(capsys, monkeypatch):
    """``--all src --baseline`` (what ``make lint`` runs) merges the
    per-layer default baselines and must come back clean."""
    monkeypatch.chdir(REPO_ROOT)
    code = main(["--all", "src", "--baseline"])
    assert code == EXIT_CLEAN, capsys.readouterr().out


def test_committed_baseline_is_canonical():
    """The on-disk units baseline must already be in canonical
    serialized form (sorted keys, trailing newline) so --write-baseline
    round-trips produce no diff noise."""
    raw = BASELINE.read_text(encoding="utf-8")
    document = json.loads(raw)
    assert raw == json.dumps(document, indent=2, sort_keys=True) + "\n"
    assert document["version"] == 1


def test_intentional_suppressions_carry_pragmas_not_baseline():
    """The committed baseline stays empty by policy: deliberate
    exceptions (the NaN validity probe in experiments/parallel.py) are
    acknowledged in place with a reasoned ``ignore[SIM3xx]`` pragma."""
    document = load_baseline(BASELINE)
    assert document["entries"] == []
    report = units_lint_paths([str(REPO_ROOT / "src")])
    assert report.suppressed >= 1


def test_registered_modules_all_exist_on_disk():
    """Every UNITS_MODULES entry maps to a real file, so the SIM308
    drift check is exercising live modules rather than ghosts."""
    for name in UNITS_MODULES:
        relative = Path(*name.split(".")).with_suffix(".py")
        assert (REPO_ROOT / "src" / relative).is_file(), name


def test_planted_unit_conflict_fires_sim301(tmp_path):
    """Regression canary: declaring a Seconds global and seeding it from
    the Bytes volume epsilon — the exact cross-unit slip the layer was
    built to catch — must fire SIM301 at its line."""
    planted_src = tmp_path / "src"
    shutil.copytree(REPO_ROOT / "src", planted_src)
    target = planted_src / "repro" / "jobs" / "flow.py"
    lines = target.read_text(encoding="utf-8").splitlines()
    anchor = next(
        index
        for index, line in enumerate(lines)
        if line.startswith("VOLUME_EPSILON: Bytes")
    )
    planted_lineno = anchor + 2  # inserted directly below, 1-based
    lines.insert(anchor + 1, "STALL_TIMEOUT: Seconds = VOLUME_EPSILON")
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")

    report = units_lint_paths([str(planted_src)])
    outcome = apply_baseline(report.findings, load_baseline(BASELINE))
    assert [f.code for f in outcome.new_findings] == ["SIM301"]
    finding = outcome.new_findings[0]
    assert finding.path.endswith("jobs/flow.py")
    assert finding.line == planted_lineno
    assert "Seconds" in finding.message
    assert "Bytes" in finding.message
