"""Fixture tests for the hot-closure perf layer (``simlint --perf``).

Each perf rule (SIM201-SIM207) gets a firing/non-firing fixture pair,
the registry-drift contract is pinned in both directions (decorated but
unregistered, registered but undecorated, stale entries), the
``hot-ok[reason]`` acknowledgment and ``ignore[SIM2xx]`` pragmas are
exercised, and the unified runner's merged-stream ordering is locked in.
The shipped-tree acceptance run lives in
``tests/integration/test_perf_lint_acceptance.py``.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List, Sequence

from tools.simlint.__main__ import EXIT_CLEAN, EXIT_USAGE, main
from tools.simlint.baseline import (
    apply_baseline,
    baseline_from_findings,
    load_baseline,
    save_baseline,
)
from tools.simlint.callgraph import build_project
from tools.simlint.findings import Finding
from tools.simlint.hotpaths import REGISTRY, HotPathRegistry
from tools.simlint.perfrules import (
    PERF_RULES,
    PerfReport,
    perf_lint_project,
)
from tools.simlint.runner import FINDING_ORDER, lint_paths_layers

#: The in-source marker, reproduced so fixture packages are self-
#: contained under the registry's ``repro.simulator`` decorated prefix.
MARKER_MODULE = """
    def hot_path(func):
        return func
"""


def make_sim_package(tmp_path: Path, modules: Dict[str, str]) -> Path:
    """A fixture package whose modules are named ``repro.simulator.*``.

    Module keys may contain ``/`` to land outside the simulator package
    (``jobs/flow`` -> ``repro.jobs.flow``), mirroring the shipped
    registry's jobs-layer entries.
    """
    root = tmp_path / "repro"
    (root / "simulator").mkdir(parents=True)
    (root / "__init__.py").write_text("")
    (root / "simulator" / "__init__.py").write_text("")
    (root / "simulator" / "hotpath.py").write_text(
        textwrap.dedent(MARKER_MODULE)
    )
    for name, source in modules.items():
        if "/" in name:
            target = root / f"{name}.py"
            target.parent.mkdir(parents=True, exist_ok=True)
            init = target.parent / "__init__.py"
            if not init.exists():
                init.write_text("")
        else:
            target = root / "simulator" / f"{name}.py"
        target.write_text(textwrap.dedent(source))
    return root


def perf_report(
    tmp_path: Path,
    modules: Dict[str, str],
    roots: Sequence[str] = (),
    closure: Sequence[str] = (),
) -> PerfReport:
    root = make_sim_package(tmp_path, modules)
    project = build_project([str(root)])
    registry = HotPathRegistry(roots=tuple(roots), closure=tuple(closure))
    return perf_lint_project(project, registry=registry)


def perf_findings(
    tmp_path: Path,
    modules: Dict[str, str],
    roots: Sequence[str] = (),
    closure: Sequence[str] = (),
) -> List[Finding]:
    return perf_report(tmp_path, modules, roots=roots, closure=closure).findings


def codes(findings: List[Finding]) -> List[str]:
    return [f.code for f in findings]


# ----------------------------------------------------------------------
# SIM201 — logging in the hot closure
# ----------------------------------------------------------------------
class TestHotLogging:
    def test_unguarded_debug_fires(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    import logging

                    from repro.simulator.hotpath import hot_path

                    logger = logging.getLogger(__name__)


                    @hot_path
                    def step(flows):
                        for flow in flows:
                            logger.debug("advancing %s", flow)
                        return flows
                """
            },
            roots=["repro.simulator.engine.step"],
        )
        assert codes(found) == ["SIM201"]
        assert "unguarded" in found[0].message
        assert "logger.debug" in found[0].message

    def test_eager_fstring_fires_even_guarded(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    import logging

                    from repro.simulator.hotpath import hot_path

                    logger = logging.getLogger(__name__)
                    _DEBUG = logger.isEnabledFor(logging.DEBUG)


                    @hot_path
                    def step(flows):
                        for flow in flows:
                            if _DEBUG:
                                logger.debug(f"advancing {flow}")
                        return flows
                """
            },
            roots=["repro.simulator.engine.step"],
        )
        assert codes(found) == ["SIM201"]
        assert "eagerly" in found[0].message

    def test_guarded_lazy_logging_clean(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    import logging

                    from repro.simulator.hotpath import hot_path

                    logger = logging.getLogger(__name__)
                    _DEBUG = logger.isEnabledFor(logging.DEBUG)


                    @hot_path
                    def step(flows):
                        for flow in flows:
                            if _DEBUG:
                                logger.debug("advancing %s", flow)
                        return flows
                """
            },
            roots=["repro.simulator.engine.step"],
        )
        assert found == []


# ----------------------------------------------------------------------
# SIM202 — per-iteration allocation in hot loops
# ----------------------------------------------------------------------
class TestHotLoopAllocation:
    def test_container_literal_in_loop_fires(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    @hot_path
                    def gather(flows):
                        out = []
                        for flow in flows:
                            pair = [flow, flow]
                            out.append(pair)
                        return out
                """
            },
            roots=["repro.simulator.engine.gather"],
        )
        assert codes(found) == ["SIM202"]
        assert "container literal" in found[0].message

    def test_comprehension_in_loop_fires(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    @hot_path
                    def gather(groups):
                        out = []
                        for group in groups:
                            out.extend(x for x in group)
                        return out
                """
            },
            roots=["repro.simulator.engine.gather"],
        )
        assert codes(found) == ["SIM202"]
        assert "generator expression" in found[0].message

    def test_tuple_literal_and_hoisted_allocation_clean(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    @hot_path
                    def gather(flows):
                        out = []
                        for flow in flows:
                            out.append((flow, 1.0))
                        return out
                """
            },
            roots=["repro.simulator.engine.gather"],
        )
        assert found == []

    def test_ignore_pragma_suppresses(self, tmp_path):
        report = perf_report(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    @hot_path
                    def gather(flows):
                        out = []
                        for flow in flows:
                            pair = [flow, flow]  # simlint: ignore[SIM202] (scratch)
                            out.append(pair)
                        return out
                """
            },
            roots=["repro.simulator.engine.gather"],
        )
        assert report.findings == []
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# SIM203 — numpy scalar item access in hot loops
# ----------------------------------------------------------------------
class TestNumpyScalarAccess:
    def test_scalar_index_of_numpy_local_fires(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    import numpy as np

                    from repro.simulator.hotpath import hot_path


                    @hot_path
                    def total_of(indices):
                        arr = np.zeros(8)
                        total = 0.0
                        for i in indices:
                            total = total + arr[i]
                        return total
                """
            },
            roots=["repro.simulator.engine.total_of"],
        )
        assert codes(found) == ["SIM203"]
        assert "'arr'" in found[0].message

    def test_slices_and_tolist_copies_clean(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    import numpy as np

                    from repro.simulator.hotpath import hot_path


                    @hot_path
                    def total_of(indices):
                        arr = np.zeros(8)
                        values = arr.tolist()
                        total = 0.0
                        for i in indices:
                            total = total + values[i]
                            window = arr[0:2]
                            total = total + float(window.sum())
                        return total
                """
            },
            roots=["repro.simulator.engine.total_of"],
        )
        assert found == []


# ----------------------------------------------------------------------
# SIM204 — __slots__-less instantiation in the hot closure
# ----------------------------------------------------------------------
class TestSlotsRule:
    def test_slotless_project_class_fires(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    class Snapshot:
                        def __init__(self, value):
                            self.value = value


                    @hot_path
                    def record(values):
                        return [Snapshot(v) for v in values]
                """
            },
            roots=["repro.simulator.engine.record"],
        )
        assert codes(found) == ["SIM204"]
        assert "Snapshot" in found[0].message
        assert "__slots__" in found[0].message

    def test_slotted_class_clean(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    class Snapshot:
                        __slots__ = ("value",)

                        def __init__(self, value):
                            self.value = value


                    @hot_path
                    def record(values):
                        return [Snapshot(v) for v in values]
                """
            },
            roots=["repro.simulator.engine.record"],
        )
        assert found == []

    def test_exception_classes_exempt(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    class DropFault(Exception):
                        pass


                    @hot_path
                    def record(values):
                        if not values:
                            raise DropFault("empty batch")
                        return values
                """
            },
            roots=["repro.simulator.engine.record"],
        )
        assert found == []


# ----------------------------------------------------------------------
# SIM205 — repeated self.x.y chains in hot loops
# ----------------------------------------------------------------------
class TestAttrChains:
    def test_repeated_chain_fires_at_first_read(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    class State:
                        __slots__ = ("counts",)

                        def __init__(self):
                            self.counts = {}


                    class Engine:
                        __slots__ = ("state",)

                        def __init__(self):
                            self.state = State()

                        @hot_path
                        def step(self, flows):
                            total = 0
                            for flow in flows:
                                total = total + self.state.counts[flow]
                                total = total + len(self.state.counts)
                            return total
                """
            },
            roots=["repro.simulator.engine.Engine.step"],
        )
        assert codes(found) == ["SIM205"]
        assert "self.state.counts" in found[0].message
        assert "2x" in found[0].message

    def test_single_read_clean(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    class Engine:
                        __slots__ = ("state",)

                        def __init__(self, state):
                            self.state = state

                        @hot_path
                        def step(self, flows):
                            counts = self.state.counts
                            total = 0
                            for flow in flows:
                                total = total + counts[flow]
                            return total
                """
            },
            roots=["repro.simulator.engine.Engine.step"],
        )
        assert found == []


# ----------------------------------------------------------------------
# SIM206 — try/except or generator indirection in hot loops
# ----------------------------------------------------------------------
class TestControlIndirection:
    def test_try_in_loop_fires(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    @hot_path
                    def drain(flows):
                        out = []
                        for flow in flows:
                            try:
                                out.append(flow)
                            except ValueError:
                                pass
                        return out
                """
            },
            roots=["repro.simulator.engine.drain"],
        )
        assert codes(found) == ["SIM206"]
        assert "try/except" in found[0].message

    def test_generator_iteration_fires(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    def pending(flows):
                        for flow in flows:
                            yield flow


                    @hot_path
                    def drain(flows):
                        total = 0
                        for flow in pending(flows):
                            total = total + 1
                        return total
                """
            },
            roots=["repro.simulator.engine.drain"],
            closure=["repro.simulator.engine.pending"],
        )
        assert codes(found) == ["SIM206"]
        assert "generator" in found[0].message
        assert "pending" in found[0].message

    def test_plain_iteration_clean(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    @hot_path
                    def drain(flows):
                        total = 0
                        for flow in list(flows):
                            total = total + 1
                        return total
                """
            },
            roots=["repro.simulator.engine.drain"],
        )
        assert found == []


# ----------------------------------------------------------------------
# SIM207 — closure escapes, hot-ok pragma, registry drift
# ----------------------------------------------------------------------
class TestClosureEscape:
    ESCAPE_MODULE = """
        from repro.simulator.hotpath import hot_path


        def expensive_audit(flows):
            return len(flows)


        @hot_path
        def step(flows):
            for flow in flows:
                expensive_audit(flows)
            return flows
    """

    def test_unregistered_callee_fires(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {"engine": self.ESCAPE_MODULE},
            roots=["repro.simulator.engine.step"],
        )
        assert codes(found) == ["SIM207"]
        assert "unregistered 'repro.simulator.engine.expensive_audit'" in (
            found[0].message
        )
        assert "hot-ok[reason]" in found[0].message

    def test_registered_callee_clean(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {"engine": self.ESCAPE_MODULE},
            roots=["repro.simulator.engine.step"],
            closure=["repro.simulator.engine.expensive_audit"],
        )
        assert found == []

    def test_hot_ok_pragma_acknowledges(self, tmp_path):
        report = perf_report(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    def expensive_audit(flows):
                        return len(flows)


                    @hot_path
                    def step(flows):
                        for flow in flows:
                            expensive_audit(flows)  # simlint: hot-ok[runs only on faults]
                        return flows
                """
            },
            roots=["repro.simulator.engine.step"],
        )
        assert report.findings == []
        assert report.acknowledged == 1

    def test_hot_ok_without_reason_does_not_acknowledge(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    def expensive_audit(flows):
                        return len(flows)


                    @hot_path
                    def step(flows):
                        for flow in flows:
                            expensive_audit(flows)  # simlint: hot-ok[]
                        return flows
                """
            },
            roots=["repro.simulator.engine.step"],
        )
        assert codes(found) == ["SIM207"]


class TestRegistryDrift:
    def test_decorated_but_unregistered_fires(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    @hot_path
                    def stray(flows):
                        return flows
                """
            },
        )
        assert codes(found) == ["SIM207"]
        assert "missing from the registry" in found[0].message
        assert "repro.simulator.engine.stray" in found[0].message

    def test_registered_root_without_marker_fires(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    def step(flows):
                        return flows
                """
            },
            roots=["repro.simulator.engine.step"],
        )
        assert codes(found) == ["SIM207"]
        assert "lacks the @hot_path marker" in found[0].message

    def test_closure_entries_need_no_marker(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    def helper(flows):
                        return flows
                """
            },
            closure=["repro.simulator.engine.helper"],
        )
        assert found == []

    def test_roots_outside_decorated_prefix_need_no_marker(self, tmp_path):
        """Jobs-layer entries are registry-only (import-cycle avoidance)."""
        found = perf_findings(
            tmp_path,
            {
                "jobs/flow": """
                    class Flow:
                        __slots__ = ("sent",)

                        def __init__(self):
                            self.sent = 0.0

                        def advance(self, amount):
                            self.sent = self.sent + amount
                """
            },
            roots=["repro.jobs.flow.Flow.advance"],
        )
        assert found == []

    def test_stale_registry_entry_fires_when_module_present(self, tmp_path):
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    def step(flows):
                        return flows
                """
            },
            roots=["repro.simulator.engine.missing"],
        )
        assert codes(found) == ["SIM207"]
        assert "stale registry entry" in found[0].message
        assert found[0].line == 1

    def test_entries_for_absent_packages_skipped(self, tmp_path):
        """Partial lints must not report every unloaded registry module."""
        found = perf_findings(
            tmp_path,
            {
                "engine": """
                    def step(flows):
                        return flows
                """
            },
            closure=["elsewhere.package.helper"],
        )
        assert found == []

    def test_shipped_registry_is_well_formed(self):
        registered = REGISTRY.registered()
        assert registered == frozenset(REGISTRY.roots) | frozenset(
            REGISTRY.closure
        )
        assert not set(REGISTRY.roots) & set(REGISTRY.closure)
        assert REGISTRY.decorated_prefix == "repro.simulator"
        assert all(name.count(".") >= 2 for name in registered)


# ----------------------------------------------------------------------
# Unified runner: merged, sorted finding stream
# ----------------------------------------------------------------------
class TestMergedStream:
    def test_per_file_and_perf_findings_merge_sorted(self, tmp_path):
        root = make_sim_package(
            tmp_path,
            {
                "engine": """
                    from repro.simulator.hotpath import hot_path


                    def helper(out=[]):
                        return out


                    @hot_path
                    def step(flows):
                        acc = []
                        for flow in flows:
                            acc.append([flow])
                        return acc
                """
            },
        )
        registry = HotPathRegistry(roots=("repro.simulator.engine.step",))
        report = lint_paths_layers(
            [str(root)], perf=True, registry=registry
        )
        assert sorted(codes(report.findings)) == ["SIM005", "SIM202"]
        assert report.findings == sorted(report.findings, key=FINDING_ORDER)
        # Both layers ran over one parse of each file.
        assert report.files_checked == 4


# ----------------------------------------------------------------------
# Baseline round-trip with perf findings
# ----------------------------------------------------------------------
class TestPerfBaseline:
    def _findings(self, tmp_path) -> List[Finding]:
        return perf_findings(
            tmp_path,
            {"engine": TestClosureEscape.ESCAPE_MODULE},
            roots=["repro.simulator.engine.step"],
        )

    def test_round_trip_matches(self, tmp_path):
        found = self._findings(tmp_path)
        assert found
        path = tmp_path / "perf_baseline.json"
        save_baseline(baseline_from_findings(found), str(path))
        outcome = apply_baseline(found, load_baseline(str(path)))
        assert outcome.clean
        assert outcome.matched == len(found)

    def test_fixed_finding_becomes_stale_entry(self, tmp_path):
        found = self._findings(tmp_path)
        path = tmp_path / "perf_baseline.json"
        save_baseline(baseline_from_findings(found), str(path))
        outcome = apply_baseline([], load_baseline(str(path)))
        assert not outcome.clean
        assert outcome.stale


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestPerfCli:
    def test_perf_flag_runs_clean_outside_registry_modules(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("def f(x):\n    return x\n")
        assert main(["--perf", str(pkg)]) == EXIT_CLEAN

    def test_perf_codes_unknown_without_flag(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("def f(x):\n    return x\n")
        assert main(["--select", "SIM202", str(pkg)]) == EXIT_USAGE
        assert main(["--perf", "--select", "SIM202", str(pkg)]) == EXIT_CLEAN

    def test_list_rules_includes_perf_catalog(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in PERF_RULES:
            assert rule.code in out
        assert "--perf" in out
