"""The ``@hot_path`` marker: the in-source half of the hot-path registry.

PR 6 bought its events/sec trajectory by hand-applying hot-path idioms
(guarded logging, ``__slots__``, allocation-free loops, cached lookups)
to a specific set of functions.  ``simlint --perf`` keeps those functions
fast by checking the SIM2xx performance rules against the *hot closure* —
everything reachable from the registered hot roots — and the roots are
declared twice, deliberately:

* in source, with this decorator (greppable, reviewable next to the
  code it protects);
* in ``tools/simlint/hotpaths.py``, the registry the analyzer loads.

The analyzer cross-checks the two: a decorated function missing from the
registry, or a registered simulator root missing the decorator, is a
SIM207 registry-drift finding.  Hot roots outside ``repro.simulator``
(e.g. ``repro.jobs.flow.Flow.advance``) are registry-only — importing
this module from lower layers would create an import cycle.

The decorator is **zero runtime cost**: it runs once at import time,
sets one attribute for introspection, and returns the function object
unchanged — no wrapper, no indirection, nothing on the call path.
"""

from __future__ import annotations

from typing import Callable, TypeVar

_F = TypeVar("_F", bound=Callable[..., object])

#: Attribute set on decorated functions (introspection/tests only).
HOT_PATH_ATTR = "__simlint_hot_path__"


def hot_path(func: _F) -> _F:
    """Mark ``func`` as a hot-path root for ``simlint --perf``.

    Returns ``func`` itself (no wrapper): the call path is untouched.
    """
    setattr(func, HOT_PATH_ATTR, True)
    return func


def is_hot_path(func: object) -> bool:
    """Whether ``func`` carries the hot-path marker."""
    return getattr(func, HOT_PATH_ATTR, False) is True
