"""Property tests for the optimality-gap sandwich and the bound algebra.

The load-bearing invariant of the gap harness is the sandwich

    lower_bound  <=  exact optimum  <=  any scheduler's measured JCT

which is provable (not just plausible) on a restricted instance family:
every flow lands on one receiver host, all jobs arrive at time zero, and
the exact side reduces with ``layer_model="single"`` on one machine.
There the receiver NIC is the single shared resource, so (a) each job's
combinatorial bound is at most its total processing demand, (b) any
simulated schedule induces a feasible preemptive single-machine schedule,
and (c) with equal release dates preemption cannot reduce total
completion time below the best job order — which the brute force finds.

Hypothesis generates the instances; a violation in either inequality
means a bound, the reduction, or the simulator drifted out of agreement.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.jobs import IdAllocator, JobBuilder
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.simulator.topology.bigswitch import BigSwitchTopology
from repro.theory.lowerbound import (
    job_lower_bound,
    job_single_stage_lower_bound,
)
from repro.theory.reduction import optimal_total_jct

#: Receiver host 0's NIC is the shared resource; rate 1.0 keeps byte
#: counts equal to seconds, so generated integers stay exact in floats.
RECEIVER = 0
RATE = 1.0
NUM_HOSTS = 6
TOLERANCE = 1e-9

#: One byte-threshold comparator per family: the rank baseline, the
#: dependency-aware comparator, and the LP-relaxation comparator.
SANDWICH_SCHEDULERS = ("sebf", "sg-dag", "lp-order")


@st.composite
def single_receiver_workloads(draw):
    """1-3 jobs of 1-3 dependent coflows, every flow into host 0."""
    ids = IdAllocator()
    jobs = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        builder = JobBuilder(arrival_time=0.0, ids=ids)
        coflow_ids = []
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            num_flows = draw(st.integers(min_value=1, max_value=2))
            flows = [
                (
                    draw(st.integers(min_value=1, max_value=NUM_HOSTS - 1)),
                    RECEIVER,
                    float(draw(st.integers(min_value=1, max_value=20))),
                )
                for _ in range(num_flows)
            ]
            deps = (
                draw(
                    st.lists(
                        st.sampled_from(coflow_ids),
                        unique=True,
                        max_size=len(coflow_ids),
                    )
                )
                if coflow_ids
                else []
            )
            coflow_ids.append(builder.add_coflow(flows, depends_on=deps))
        jobs.append(builder.build())
    return jobs


@given(single_receiver_workloads(), st.sampled_from(SANDWICH_SCHEDULERS))
@settings(max_examples=40, deadline=None)
def test_bound_opt_and_measured_jct_sandwich(jobs, scheduler_name):
    bounds = {job.job_id: job_lower_bound(job, RATE) for job in jobs}
    optimum, _instance = optimal_total_jct(jobs, RATE, layer_model="single")

    # Lower bound <= exact optimum, job by job and in total.
    for job_id, bound in bounds.items():
        assert bound <= optimum.job_completion[job_id] + TOLERANCE
    assert sum(bounds.values()) <= optimum.total_jct + TOLERANCE

    # Exact optimum <= what the simulator measured for this policy.
    result = simulate(
        BigSwitchTopology(num_hosts=NUM_HOSTS, link_capacity=RATE),
        make_scheduler(scheduler_name),
        jobs,
    )
    measured = {job.job_id: job.completion_time() for job in result.jobs}
    assert all(jct is not None for jct in measured.values())
    assert optimum.total_jct <= sum(measured.values()) + TOLERANCE
    for job_id, bound in bounds.items():
        assert bound <= measured[job_id] + TOLERANCE


@given(single_receiver_workloads())
@settings(max_examples=100, deadline=None)
def test_tightened_bound_dominates_legacy(jobs):
    for job in jobs:
        assert (
            job_lower_bound(job, RATE)
            >= job_single_stage_lower_bound(job, RATE) - TOLERANCE
        )


@given(
    single_receiver_workloads(),
    st.floats(min_value=0.25, max_value=8.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_bound_scales_inversely_with_rate(jobs, factor):
    """Doubling every link halves the bound: gaps are scale-invariant."""
    for job in jobs:
        base = job_lower_bound(job, RATE)
        scaled = job_lower_bound(job, RATE * factor)
        assert scaled * factor == pytest.approx(base, rel=1e-9)
