"""Arrival processes: trace replay pacing, Poisson, and bursty arrivals.

The paper's bursty scenario (§V) has jobs arriving "within 2 microseconds
intervals" — tight bursts followed by quiet gaps, the on/off pattern
measured in production datacenters.  These generators produce arrival
timestamps consumed by the workload generator.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import WorkloadError

#: The paper's intra-burst inter-arrival time: 2 microseconds.
BURST_INTERVAL = 2e-6


def poisson_arrivals(num_jobs: int, rate: float, seed: int = 0) -> List[float]:
    """``num_jobs`` arrival times of a Poisson process of ``rate`` jobs/sec."""
    if num_jobs < 1:
        raise WorkloadError("need at least one arrival")
    if rate <= 0:
        raise WorkloadError("rate must be positive")
    rng = random.Random(seed)
    now = 0.0
    arrivals = []
    for _ in range(num_jobs):
        now += rng.expovariate(rate)
        arrivals.append(now)
    return arrivals


def uniform_arrivals(num_jobs: int, duration: float, seed: int = 0) -> List[float]:
    """``num_jobs`` arrivals uniform over [0, duration), sorted."""
    if num_jobs < 1:
        raise WorkloadError("need at least one arrival")
    if duration <= 0:
        raise WorkloadError("duration must be positive")
    rng = random.Random(seed)
    return sorted(rng.uniform(0.0, duration) for _ in range(num_jobs))


def bursty_arrivals(
    num_jobs: int,
    burst_size: int = 10,
    burst_interval: float = BURST_INTERVAL,
    gap: float = 1.0,
    seed: int = 0,
) -> List[float]:
    """Bursts of ``burst_size`` jobs spaced ``burst_interval`` apart,
    separated by idle gaps of mean ``gap`` seconds (exponential).

    With the paper's default 2 µs intra-burst spacing, every job of a burst
    effectively arrives at once relative to transfer times, creating the
    contention spike the bursty experiments need.
    """
    if num_jobs < 1:
        raise WorkloadError("need at least one arrival")
    if burst_size < 1:
        raise WorkloadError("burst_size must be >= 1")
    if burst_interval < 0 or gap <= 0:
        raise WorkloadError("burst_interval must be >= 0 and gap > 0")
    rng = random.Random(seed)
    arrivals: List[float] = []
    burst_start = 0.0
    while len(arrivals) < num_jobs:
        in_burst = min(burst_size, num_jobs - len(arrivals))
        for i in range(in_burst):
            arrivals.append(burst_start + i * burst_interval)
        burst_start = arrivals[-1] + rng.expovariate(1.0 / gap)
    return arrivals
