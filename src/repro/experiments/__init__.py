"""Experiment harness reproducing the paper's evaluation (Figures 2-8)."""

from repro.experiments.ablations import (
    critical_path_variants,
    queue_count_variants,
    run_gurita_variant,
    run_variants,
    starvation_variants,
    summarize,
    threshold_variants,
    update_interval_variants,
    wrr_weight_mode_variants,
)
from repro.experiments.common import (
    PAPER_SCHEDULERS,
    ScenarioConfig,
    ScenarioResult,
    build_jobs,
    run_scenario,
)
from repro.experiments.sweep import (
    SweepPoint,
    SweepResult,
    sweep_burst_size,
    sweep_num_jobs,
    sweep_offered_load,
)
from repro.experiments.trials import TrialResult, TrialStats, run_trials
from repro.experiments.figures import (
    FIG5_SCENARIOS,
    figure5_configs,
    figure5_run,
    figure6_config,
    figure7_config,
    figure8_config,
)

__all__ = [
    "FIG5_SCENARIOS",
    "PAPER_SCHEDULERS",
    "ScenarioConfig",
    "ScenarioResult",
    "build_jobs",
    "critical_path_variants",
    "figure5_configs",
    "figure5_run",
    "figure6_config",
    "figure7_config",
    "figure8_config",
    "queue_count_variants",
    "run_gurita_variant",
    "run_scenario",
    "run_variants",
    "run_trials",
    "TrialResult",
    "TrialStats",
    "starvation_variants",
    "summarize",
    "SweepPoint",
    "SweepResult",
    "sweep_burst_size",
    "sweep_num_jobs",
    "sweep_offered_load",
    "threshold_variants",
    "update_interval_variants",
    "wrr_weight_mode_variants",
]
