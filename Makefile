# Developer entry points.  CI runs the same commands (see
# .github/workflows/ci.yml); anything green here should be green there.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint file-lint deep-lint deep-baseline perf-lint perf-baseline units-lint units-baseline typecheck ruff test test-fast coverage chaos-smoke resume-smoke bench bench-check gap gap-golden all

## Everything static in one command: all four simlint layers in one
## pass (per-file SIM001-SIM006, whole-program --deep SIM101-SIM106,
## hot-closure --perf SIM201-SIM207, dimensional/streaming --units
## SIM301-SIM308) against the merged committed baselines, plus ruff
## and mypy (the latter two need the dev extra).
lint:
	$(PYTHON) -m tools.simlint --all src --baseline
	$(PYTHON) -m ruff check src tools tests
	$(PYTHON) -m mypy --strict -p repro.simulator -p repro.schedulers \
		-p repro.experiments -p repro.metrics

## Per-file static analysis only (SIM001-SIM006).
file-lint:
	$(PYTHON) -m tools.simlint src

## Whole-program determinism taint + worker purity (SIM101-SIM106),
## checked against the committed suppression baseline.  Fails on any
## new finding or on baseline drift (stale entries).
deep-lint:
	$(PYTHON) -m tools.simlint --deep src --baseline tools/simlint/deep_baseline.json

## Refresh the deep baseline after an intentional change.  Review the
## diff: every entry is a known, tolerated finding.
deep-baseline:
	$(PYTHON) -m tools.simlint --deep src --write-baseline tools/simlint/deep_baseline.json

## Hot-closure performance rules (SIM201-SIM207) over the registry in
## tools/simlint/hotpaths.py, against the committed perf baseline.
perf-lint:
	$(PYTHON) -m tools.simlint --perf src --baseline tools/simlint/perf_baseline.json

## Refresh the perf baseline after an intentional change.  Prefer an
## in-place pragma (ignore[SIM2xx] / hot-ok[reason]) with a reason;
## the committed baseline stays empty by policy.
perf-baseline:
	$(PYTHON) -m tools.simlint --perf src --write-baseline tools/simlint/perf_baseline.json

## Dimensional-analysis + streaming-discipline rules (SIM301-SIM308)
## seeded from the repro.simulator.units annotations, against the
## committed units baseline.
units-lint:
	$(PYTHON) -m tools.simlint --units src --baseline tools/simlint/units_baseline.json

## Refresh the units baseline after an intentional change.  Prefer an
## in-place pragma (ignore[SIM3xx] / unit[...]) with a reason; the
## committed baseline stays empty by policy.
units-baseline:
	$(PYTHON) -m tools.simlint --units src --write-baseline tools/simlint/units_baseline.json

## mypy --strict over the strict-clean packages (needs the dev extra).
typecheck:
	$(PYTHON) -m mypy --strict -p repro.simulator -p repro.schedulers \
		-p repro.experiments -p repro.metrics

## Enforced ruff baseline: E4/E7/E9/F/B/I (needs the dev extra).
ruff:
	$(PYTHON) -m ruff check src tools tests

## Tier-1 test suite.
test:
	$(PYTHON) -m pytest -x -q

## Unit tests only (fast inner loop).
test-fast:
	$(PYTHON) -m pytest tests/unit -x -q

## Re-capture the committed performance trajectory: writes the next
## BENCH_<n+1>.json after the latest committed artifact.  Run on an
## otherwise-idle machine; takes a few minutes.
bench:
	$(PYTHON) benchmarks/perf_trajectory.py --out

## What the perf-smoke CI job runs: the small pinned workload against
## the latest committed BENCH_<n>.json (auto-discovered;
## REPRO_PERF_TOLERANCE overrides the 20% band).
bench-check:
	$(PYTHON) benchmarks/perf_trajectory.py --check --workloads scal-k4

## Strict-invariant chaos run (what the chaos-smoke CI job executes),
## including the gap-harness comparators.
chaos-smoke:
	REPRO_INVARIANTS=strict timeout 60 $(PYTHON) -m repro chaos \
		--jobs 10 --fattree-k 4 --profiles link-flap,hr-loss \
		--schedulers pfs,gurita,sg-dag,lp-order

## What the resume-smoke CI job runs: SIGKILL a supervised run as soon
## as durable state hits disk, resume it from the manifest, and fail
## unless the resumed grid's JCT fingerprint is bit-identical to an
## uninterrupted run of the same units.
resume-smoke:
	$(PYTHON) benchmarks/resume_smoke.py

## What the gap-smoke CI job runs: replay the committed golden gap
## artifact's harness parameters and fail on fingerprint divergence.
gap:
	$(PYTHON) -m repro gap --check GAP_GOLDEN.json --parallel 2

## Re-capture the committed gap artifact after an intentional change
## (a new scheduler, a tightened bound, a workload-generator change).
## Review the mean-gap diff: every movement should be explainable.
gap-golden:
	$(PYTHON) -m repro gap --out GAP_GOLDEN.json

## Line coverage over the scheduler and theory layers (needs the dev
## extra; the coverage-gate CI job enforces the same threshold).
coverage:
	$(PYTHON) -m pytest tests/unit tests/property tests/integration -q \
		--cov=repro.schedulers --cov=repro.theory \
		--cov-report=term-missing --cov-fail-under=85

all: file-lint deep-lint perf-lint units-lint test
