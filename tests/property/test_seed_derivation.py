"""Property tests for the engine's seed-derivation and fingerprint contract.

The parallel engine promises that a unit's derived seed and cache
fingerprint are pure functions of the unit — stable across submission
orderings and pool sizes, insensitive to how the config's fields were
supplied, unique across distinct units, and colliding only for equal
configurations.  Hypothesis hunts for counterexamples.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import ScenarioConfig
from repro.experiments.parallel import (
    WorkUnit,
    canonical_config,
    derive_unit_seed,
)

#: Field strategies kept small enough to explore combinations densely.
CONFIG_KWARGS = {
    "name": st.sampled_from(["a", "b", "grid"]),
    "structure": st.sampled_from(["fb-tao", "tpcds"]),
    "num_jobs": st.integers(min_value=1, max_value=200),
    "topology": st.sampled_from(["fattree", "bigswitch"]),
    "fattree_k": st.sampled_from([4, 8, 16]),
    "num_hosts": st.sampled_from([0, 8, 16]),
    "arrival_mode": st.sampled_from(["uniform", "bursty"]),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "offered_load": st.floats(
        min_value=0.1, max_value=5.0, allow_nan=False, allow_infinity=False
    ),
    "burst_size": st.integers(min_value=1, max_value=50),
}

configs = st.fixed_dictionaries(CONFIG_KWARGS).map(
    lambda kwargs: ScenarioConfig(**kwargs)
)
replicate_seeds = st.integers(min_value=0, max_value=2**31 - 1)
scheduler_sets = st.sampled_from(
    [("pfs", "gurita"), ("pfs", "baraat", "gurita"), ("gurita",)]
)


class TestDerivedSeeds:
    @given(config=configs, seed=replicate_seeds)
    def test_deterministic_across_calls(self, config, seed):
        assert derive_unit_seed(config, seed) == derive_unit_seed(config, seed)

    @given(
        kwargs=st.fixed_dictionaries(CONFIG_KWARGS),
        seed=replicate_seeds,
        shuffle_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_insensitive_to_config_field_order(
        self, kwargs, seed, shuffle_seed
    ):
        """Supplying the same fields in any dict order derives one seed."""
        items = list(kwargs.items())
        random.Random(shuffle_seed).shuffle(items)
        reordered = ScenarioConfig(**dict(items))
        assert derive_unit_seed(reordered, seed) == derive_unit_seed(
            ScenarioConfig(**kwargs), seed
        )
        assert canonical_config(reordered) == canonical_config(
            ScenarioConfig(**kwargs)
        )

    @given(
        config=configs,
        seeds=st.lists(
            replicate_seeds, min_size=2, max_size=8, unique=True
        ),
    )
    def test_unique_across_replicate_seeds(self, config, seeds):
        derived = [derive_unit_seed(config, seed) for seed in seeds]
        assert len(set(derived)) == len(seeds)

    @given(config=configs, other=configs, seed=replicate_seeds)
    def test_unique_across_distinct_configs(self, config, other, seed):
        same = config.with_overrides(seed=seed) == other.with_overrides(
            seed=seed
        )
        derived_equal = derive_unit_seed(config, seed) == derive_unit_seed(
            other, seed
        )
        assert derived_equal == same

    @given(
        config=configs,
        seeds=st.lists(replicate_seeds, min_size=1, max_size=8, unique=True),
        shuffle_seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50)
    def test_stable_across_orderings_and_pool_sizes(
        self, config, seeds, shuffle_seed
    ):
        """Position in the grid and worker count never leak into seeds."""
        units = [WorkUnit(config=config, seed=seed) for seed in seeds]
        by_seed = {unit.seed: unit.derived_seed for unit in units}
        shuffled = list(units)
        random.Random(shuffle_seed).shuffle(shuffled)
        for unit in shuffled:  # any iteration order, any "pool size"
            assert unit.derived_seed == by_seed[unit.seed]

    def test_derivation_algorithm_is_pinned(self):
        """A golden value guards against silent algorithm changes.

        Changing the canonical encoding or hash would silently split the
        result cache and reshuffle any derived-seed consumers; this pin
        makes that an explicit, reviewed decision.
        """
        assert (
            derive_unit_seed(ScenarioConfig(), 1) == GOLDEN_DEFAULT_SEED_1
        )


class TestFingerprints:
    @given(config=configs, seed=replicate_seeds, schedulers=scheduler_sets)
    def test_fingerprint_collides_only_for_equal_units(
        self, config, seed, schedulers
    ):
        unit = WorkUnit(config=config, seed=seed, schedulers=schedulers)
        twin = WorkUnit(config=config, seed=seed, schedulers=schedulers)
        assert unit.fingerprint() == twin.fingerprint()

    @given(config=configs, other=configs, seed=replicate_seeds)
    def test_distinct_configs_never_share_a_fingerprint(
        self, config, other, seed
    ):
        unit = WorkUnit(config=config, seed=seed)
        twin = WorkUnit(config=other, seed=seed)
        same = unit.effective_config() == twin.effective_config() and (
            unit.scheduler_names() == twin.scheduler_names()
        )
        assert (unit.fingerprint() == twin.fingerprint()) == same

    @given(config=configs, seed=replicate_seeds)
    def test_salt_changes_fingerprint_but_not_seed(self, config, seed):
        unit = WorkUnit(config=config, seed=seed)
        assert unit.fingerprint("salt-a") != unit.fingerprint("salt-b")
        # Derived seeds are deliberately salt-free: a version bump must
        # invalidate caches without reshuffling seeds.
        assert derive_unit_seed(config, seed) == unit.derived_seed

    @given(config=configs, seed=replicate_seeds)
    def test_scheduler_set_is_part_of_the_identity(self, config, seed):
        narrow = WorkUnit(config=config, seed=seed, schedulers=("gurita",))
        wide = WorkUnit(
            config=config, seed=seed, schedulers=("pfs", "gurita")
        )
        assert narrow.fingerprint() != wide.fingerprint()
        assert narrow.derived_seed != wide.derived_seed


#: blake2b over the canonical default-config identity with seed 1 —
#: recompute only on a deliberate, documented derivation change.
GOLDEN_DEFAULT_SEED_1 = 2630020748374412737
