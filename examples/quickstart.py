#!/usr/bin/env python3
"""Quickstart: schedule a datacenter workload with Gurita.

Builds the paper's 8-pod FatTree (128 servers, 80 switches, 10G links),
synthesizes a Facebook-like multi-stage workload, and compares Gurita
against per-flow fair sharing (ideal TCP).

Run:  python examples/quickstart.py
"""

from repro import (
    FatTreeTopology,
    GuritaScheduler,
    PerFlowFairSharing,
    simulate,
    synthesize_workload,
)
from repro.metrics import jct_summary, overall_improvement


def main() -> None:
    print("Building the paper's 8-pod FatTree (128 hosts, 80 switches)...")

    def workload(num_hosts: int):
        # Same seed => byte-identical workloads for a fair comparison.
        return synthesize_workload(
            num_jobs=30,
            num_hosts=num_hosts,
            structure="fb-tao",  # the paper's Facebook-TAO job DAG
            seed=7,
        )

    results = {}
    for scheduler in (PerFlowFairSharing(), GuritaScheduler()):
        topology = FatTreeTopology(k=8)
        jobs = workload(topology.num_hosts)
        print(f"Simulating {len(jobs)} multi-stage jobs under {scheduler.name}...")
        results[scheduler.name] = simulate(topology, scheduler, jobs)

    for name, result in results.items():
        summary = jct_summary(result)
        print(
            f"  {name:8s}  mean JCT {summary.mean:7.3f}s   "
            f"median {summary.median:7.3f}s   p95 {summary.p95:7.3f}s"
        )
    factor = overall_improvement(results["pfs"], results["gurita"])
    print(f"\nGurita improves average JCT over fair sharing by {factor:.2f}x")


if __name__ == "__main__":
    main()
