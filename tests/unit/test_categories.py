"""Unit tests for the Table-1 job-size categories."""

import pytest

from repro.workloads.categories import (
    GB,
    MB,
    NUM_CATEGORIES,
    TB,
    category_bounds,
    category_label,
    category_of,
    group_by_category,
)


class TestCategoryOf:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (6 * MB, 1),
            (80 * MB, 1),
            (81 * MB, 2),
            (800 * MB, 2),
            (801 * MB, 3),
            (8 * GB, 3),
            (9 * GB, 4),
            (10 * GB, 4),
            (50 * GB, 5),
            (100 * GB, 5),
            (500 * GB, 6),
            (1 * TB, 6),
            (2 * TB, 7),
        ],
    )
    def test_table_one_boundaries(self, size, expected):
        assert category_of(size) == expected

    def test_tiny_jobs_fall_into_category_one(self):
        assert category_of(1.0) == 1
        assert category_of(0.0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            category_of(-1.0)


class TestLabelsAndBounds:
    def test_labels_are_roman(self):
        assert [category_label(i) for i in range(1, 8)] == [
            "I", "II", "III", "IV", "V", "VI", "VII",
        ]

    def test_label_range_checked(self):
        with pytest.raises(ValueError):
            category_label(0)
        with pytest.raises(ValueError):
            category_label(8)

    def test_bounds_tile_the_line(self):
        previous_upper = 0.0
        for category in range(1, NUM_CATEGORIES + 1):
            lower, upper = category_bounds(category)
            assert lower == previous_upper
            assert upper > lower
            previous_upper = upper
        assert previous_upper == float("inf")

    def test_bounds_match_category_of(self):
        # Upper bounds are inclusive (80 MB is still category I); the next
        # category starts just above.
        for category in range(1, NUM_CATEGORIES):
            _lower, upper = category_bounds(category)
            assert category_of(upper) == category
            assert category_of(upper * 1.000001) == category + 1


class TestGrouping:
    def test_group_by_category(self):
        groups = group_by_category(
            [(1, 10 * MB), (2, 500 * MB), (3, 20 * MB), (4, 2 * TB)]
        )
        assert groups == {1: [1, 3], 2: [2], 7: [4]}
