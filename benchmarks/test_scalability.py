"""Simulator scalability: events/second across fabric and workload sizes.

Not a paper figure, but the substrate's own performance envelope — how
fast the flow-level simulator chews through events as the FatTree and the
workload grow.  Useful when sizing a full-scale (k=48, 10k jobs) run.
"""

from _util import bench_jobs

from repro.experiments.common import ScenarioConfig, build_jobs
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.simulator.topology.fattree import FatTreeTopology


def test_event_throughput_scales(run_once):
    def experiment():
        rows = []
        import time

        for k, jobs_count in ((4, 20), (8, bench_jobs(40))):
            topology = FatTreeTopology(k=k)
            config = ScenarioConfig(num_jobs=jobs_count, fattree_k=k, seed=3)
            jobs = build_jobs(config, topology.num_hosts)
            flows = sum(len(c.flows) for j in jobs for c in j.coflows)
            start = time.perf_counter()
            result = simulate(topology, make_scheduler("gurita"), jobs)
            elapsed = time.perf_counter() - start
            rows.append(
                (k, jobs_count, flows, result.events_processed, elapsed)
            )
        return rows

    rows = run_once(experiment)
    print("\nSCALABILITY  flow-level simulator throughput (gurita policy):")
    for k, jobs_count, flows, events, elapsed in rows:
        rate = events / elapsed if elapsed > 0 else float("inf")
        print(
            f"  k={k:2d} ({FatTreeTopology(k=k).num_hosts:4d} hosts) "
            f"{jobs_count:4d} jobs {flows:6d} flows  "
            f"{events:7d} events in {elapsed:6.2f}s  ({rate:8.0f} ev/s)"
        )
    for _k, _jobs, flows, events, _elapsed in rows:
        # Sanity: event count stays within a small multiple of flow count
        # (arrivals + completions + periodic updates), not quadratic.
        assert events < 60 * flows + 10_000
