"""Integration tests for the network probe, trials, Varys, and the CLI."""

import pytest

from repro.core.config import GuritaConfig
from repro.core.gurita import GuritaScheduler
from repro.experiments.common import ScenarioConfig
from repro.experiments.trials import TrialStats, run_trials
from repro.jobs import IdAllocator, single_stage_job
from repro.schedulers.varys import SebfScheduler
from repro.simulator.observability import NetworkProbe
from repro.simulator.runtime import CoflowSimulation, simulate
from repro.simulator.topology.bigswitch import BigSwitchTopology

GB = 1e9


def topo():
    return BigSwitchTopology(num_hosts=8, link_capacity=1.0 * GB)


def contended_jobs(ids):
    jobs = [
        single_stage_job([(0, 2, 0.2 * GB)], arrival_time=0.05 * i, ids=ids)
        for i in range(6)
    ]
    jobs.append(single_stage_job([(1, 2, 1.0 * GB)], ids=ids))
    return jobs


class TestNetworkProbe:
    def test_probe_samples_and_utilization(self):
        sim = CoflowSimulation(
            topo(), GuritaScheduler(), contended_jobs(IdAllocator())
        )
        probe = NetworkProbe(sim)
        result = sim.run()
        assert result.all_done
        assert probe.samples
        assert 0.0 < probe.peak_utilization() <= 1.0 + 1e-6
        assert 0.0 <= probe.mean_utilization() <= probe.peak_utilization()

    def test_spq_starves_but_wrr_does_not(self):
        def run_with(config):
            sim = CoflowSimulation(
                topo(),
                GuritaScheduler(config),
                contended_jobs(IdAllocator()),
            )
            probe = NetworkProbe(sim)
            sim.run()
            return probe

        spq = run_with(GuritaConfig(starvation_mitigation=False))
        wrr = run_with(GuritaConfig(starvation_mitigation=True))
        # Raw SPQ freezes the demoted elephant while top-queue mice churn;
        # the WRR emulation always grants every class a positive rate.
        assert spq.ever_starved()
        assert not wrr.ever_starved()
        assert wrr.max_starvation_streak() <= spq.max_starvation_streak()

    def test_class_accounting_sums_to_total_bytes(self):
        jobs = contended_jobs(IdAllocator())
        total = sum(job.total_bytes for job in jobs)
        sim = CoflowSimulation(topo(), GuritaScheduler(), jobs)
        probe = NetworkProbe(sim)
        sim.run()
        served = sum(probe.bytes_by_class().values())
        assert served == pytest.approx(total, rel=0.01)


class TestVarys:
    def test_sebf_drains_small_coflows_first(self):
        ids = IdAllocator()
        big = single_stage_job([(0, 2, 5.0 * GB)], ids=ids)
        small = single_stage_job([(1, 2, 0.1 * GB)], ids=ids)
        result = simulate(topo(), SebfScheduler(), [big, small])
        jcts = result.job_completion_times()
        assert jcts[small.job_id] == pytest.approx(0.1, rel=1e-3)

    def test_sebf_beats_fair_sharing_on_mixed_sizes(self):
        from repro.schedulers.pfs import PerFlowFairSharing

        def workload(alloc):
            return [
                single_stage_job(
                    [(i % 4, 4 + i % 4, (0.1 + 0.4 * (i % 3)) * GB)],
                    arrival_time=0.02 * i,
                    ids=alloc,
                )
                for i in range(12)
            ]

        sebf = simulate(topo(), SebfScheduler(), workload(IdAllocator()))
        pfs = simulate(topo(), PerFlowFairSharing(), workload(IdAllocator()))
        assert sebf.average_jct() <= pfs.average_jct() * 1.01


class TestTrials:
    def test_stats_aggregate(self):
        stats = TrialStats.from_values([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert "n=3" in str(stats)

    def test_single_sample_has_zero_std(self):
        assert TrialStats.from_values([4.2]).std == 0.0

    def test_run_trials_across_seeds(self):
        config = ScenarioConfig(num_jobs=5, fattree_k=4, seed=0)
        trial = run_trials(config, seeds=(1, 2), schedulers=("pfs", "gurita"))
        assert len(trial.outcomes) == 2
        stats = trial.improvement_stats()
        assert set(stats) == {"pfs"}
        assert stats["pfs"].samples == 2
        jcts = trial.average_jct_stats()
        assert set(jcts) == {"pfs", "gurita"}


class TestCli:
    def test_info(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "gurita" in out and "fattree k=8: 128 hosts" in out

    def test_scenario_small(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            [
                "scenario",
                "--jobs", "4",
                "--fattree-k", "4",
                "--schedulers", "pfs,gurita",
                "--out", str(tmp_path / "result.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg JCT" in out
        assert (tmp_path / "result.json").exists()

    def test_trace_synthesize(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "trace.txt"
        assert main(["trace", "--synthesize", "20", "--out", str(path)]) == 0
        assert path.exists()
        assert main(["trace", "--stats", str(path)]) == 0

    def test_trace_requires_an_action(self, capsys):
        from repro.cli import main

        assert main(["trace"]) == 2
