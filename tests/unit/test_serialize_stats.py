"""Unit tests for result serialization and workload statistics."""

import pytest

from repro.jobs import IdAllocator, single_stage_job
from repro.metrics.serialize import (
    comparison_to_dict,
    load_json,
    result_to_dict,
    save_json,
)
from repro.schedulers.pfs import PerFlowFairSharing
from repro.simulator.runtime import simulate
from repro.simulator.topology.bigswitch import BigSwitchTopology
from repro.workloads.fbtrace import synthesize_trace
from repro.workloads.generator import synthesize_workload
from repro.workloads.stats import (
    Distribution,
    format_trace_stats,
    trace_stats,
    workload_stats,
)


def small_result(seed=1, scheduler=None):
    ids = IdAllocator()
    jobs = [
        single_stage_job([(0, 1, 20e6)], ids=ids),
        single_stage_job([(2, 3, 500e6)], arrival_time=0.01, ids=ids),
    ]
    topo = BigSwitchTopology(num_hosts=4, link_capacity=1e9)
    return simulate(topo, scheduler or PerFlowFairSharing(), jobs)


class TestSerialize:
    def test_result_record_fields(self):
        record = result_to_dict(small_result())
        assert record["scheduler"] == "pfs"
        assert record["average_jct"] > 0
        assert len(record["jobs"]) == 2
        job_record = record["jobs"][0]
        assert {"job_id", "jct", "category", "num_stages"} <= set(job_record)

    def test_comparison_record_includes_improvements(self):
        results = {"pfs": small_result(), "gurita": small_result()}
        record = comparison_to_dict(results, reference="gurita")
        assert set(record["results"]) == {"pfs", "gurita"}
        assert record["improvement_over_reference"]["pfs"] == pytest.approx(1.0)

    def test_json_roundtrip(self, tmp_path):
        record = comparison_to_dict({"pfs": small_result()}, reference="pfs")
        path = save_json(record, tmp_path / "sub" / "out.json")
        loaded = load_json(path)
        assert loaded["reference"] == "pfs"
        assert loaded["results"]["pfs"]["scheduler"] == "pfs"


class TestDistribution:
    def test_summary_values(self):
        dist = Distribution.from_values(list(range(1, 101)))
        assert dist.count == 100
        assert dist.minimum == 1
        assert dist.maximum == 100
        assert dist.median == pytest.approx(51)
        assert dist.p90 == pytest.approx(91)
        assert dist.mean == pytest.approx(50.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Distribution.from_values([])


class TestTraceStats:
    def test_census_and_tail(self):
        trace = synthesize_trace(150, num_machines=200, seed=3)
        stats = trace_stats(trace)
        assert stats.sizes.count == 150
        assert sum(stats.category_census.values()) == 150
        # The Facebook trace's signature: the top decile carries most bytes.
        assert stats.bytes_share_top_decile > 0.5

    def test_format_is_readable(self):
        trace = synthesize_trace(30, num_machines=100, seed=4)
        text = format_trace_stats(trace_stats(trace))
        assert "category census" in text
        assert "top-decile byte share" in text

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_stats([])


class TestWorkloadStats:
    def test_multi_stage_profile(self):
        jobs = synthesize_workload(12, 32, structure="fb-tao", seed=5)
        stats = workload_stats(jobs)
        assert stats.num_jobs == 12
        assert stats.stage_depths.minimum >= 1
        # FB-Tao front-loads bytes: stage 1 carries the largest share.
        assert stats.stage_byte_profile[0] == max(stats.stage_byte_profile)
        assert sum(stats.category_census.values()) == 12

    def test_no_jobs_rejected(self):
        with pytest.raises(ValueError):
            workload_stats([])
