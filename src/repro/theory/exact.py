"""Exact (brute-force) solving of small FFS-MJ instances.

FFS-MJ is NP-hard (paper Theorem 1), so no efficient exact solver exists —
but tiny instances can be solved by enumerating priority orders and
list-scheduling each.  Tests use this to (a) check the paper's worked
examples (Figures 2 and 4) and (b) certify that LBEF-style orders are at
or near the optimum on small random instances ("near optimal" in the
paper's title).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.theory.ffs import FfsInstance

#: Brute force is factorial; refuse anything beyond this many jobs.
MAX_BRUTE_FORCE_JOBS = 8


@dataclass(frozen=True)
class Schedule:
    """A priority order's outcome: per-job completion times."""

    order: Tuple[int, ...]
    job_completion: Dict[int, float]

    @property
    def total_jct(self) -> float:
        return sum(self.job_completion.values())

    @property
    def average_jct(self) -> float:
        return self.total_jct / len(self.job_completion)

    @property
    def makespan(self) -> float:
        return max(self.job_completion.values())


def schedule_by_order(instance: FfsInstance, order: Sequence[int]) -> Schedule:
    """List-schedule the instance under a fixed job priority order.

    Coflows are scheduled atomically, highest-priority ready coflow first;
    each operation goes to the earliest-free machine of its layer, starting
    no earlier than the moment its coflow's dependencies complete.
    Machines are serial and non-preemptive.
    """
    jobs_by_id = {job.job_id: job for job in instance.jobs}
    if sorted(order) != sorted(jobs_by_id):
        raise ReproError(f"order {order} does not cover the instance's jobs")
    rank = {job_id: i for i, job_id in enumerate(order)}

    machine_free: Dict[int, List[float]] = {
        layer: [0.0] * count for layer, count in instance.machines_per_layer.items()
    }
    #: (job_id, coflow_id) -> completion time
    coflow_done: Dict[Tuple[int, int], float] = {}
    pending = {
        (job.job_id, coflow.coflow_id): coflow
        for job in instance.jobs
        for coflow in job.coflows
    }

    while pending:
        ready = [
            key
            for key, coflow in pending.items()
            if all((key[0], dep) in coflow_done for dep in coflow.depends_on)
        ]
        if not ready:
            raise ReproError("dependency cycle in FFS-MJ instance")
        # Highest-priority job first; coflow id breaks ties deterministically.
        key = min(ready, key=lambda k: (rank[k[0]], k[1]))
        job_id, coflow_id = key
        coflow = pending.pop(key)
        ready_time = max(
            (coflow_done[(job_id, dep)] for dep in coflow.depends_on),
            default=0.0,
        )
        ready_time = max(ready_time, jobs_by_id[job_id].release_time)
        finish = 0.0
        for op in coflow.operations:
            free = machine_free[op.layer]
            machine = min(range(len(free)), key=lambda m: free[m])
            start = max(free[machine], ready_time)
            free[machine] = start + op.duration
            finish = max(finish, free[machine])
        coflow_done[key] = finish

    job_completion = {
        job.job_id: max(
            coflow_done[(job.job_id, c.coflow_id)] for c in job.coflows
        )
        - job.release_time
        for job in instance.jobs
    }
    return Schedule(order=tuple(order), job_completion=job_completion)


def brute_force_best(instance: FfsInstance) -> Schedule:
    """The priority order minimising total JCT, by full enumeration."""
    if instance.num_jobs > MAX_BRUTE_FORCE_JOBS:
        raise ReproError(
            f"brute force limited to {MAX_BRUTE_FORCE_JOBS} jobs, "
            f"got {instance.num_jobs}"
        )
    job_ids = [job.job_id for job in instance.jobs]
    best: Schedule = None
    for order in itertools.permutations(job_ids):
        candidate = schedule_by_order(instance, order)
        if best is None or candidate.total_jct < best.total_jct - 1e-12:
            best = candidate
    return best


def brute_force_worst(instance: FfsInstance) -> Schedule:
    """The priority order *maximising* total JCT (for gap measurements)."""
    if instance.num_jobs > MAX_BRUTE_FORCE_JOBS:
        raise ReproError(
            f"brute force limited to {MAX_BRUTE_FORCE_JOBS} jobs, "
            f"got {instance.num_jobs}"
        )
    job_ids = [job.job_id for job in instance.jobs]
    worst: Schedule = None
    for order in itertools.permutations(job_ids):
        candidate = schedule_by_order(instance, order)
        if worst is None or candidate.total_jct > worst.total_jct + 1e-12:
            worst = candidate
    return worst
