"""Topology interface shared by the big-switch fabric and FatTree.

A topology exposes hosts (integer ids), directed links, and routing
candidates: for an (src, dst) host pair it can say how many equal-cost
routes exist and materialize the ``selector``-th one as a tuple of link
ids.  The ECMP router hashes flows onto selectors.
"""

from __future__ import annotations

import abc
from typing import Tuple

from repro.simulator.topology.links import LinkTable


class Topology(abc.ABC):
    """Abstract datacenter topology."""

    def __init__(self) -> None:
        self.links = LinkTable()

    @property
    @abc.abstractmethod
    def num_hosts(self) -> int:
        """Number of end hosts; host ids are ``0 .. num_hosts-1``."""

    @abc.abstractmethod
    def num_route_choices(self, src: int, dst: int) -> int:
        """Number of equal-cost routes between two distinct hosts."""

    @abc.abstractmethod
    def route(self, src: int, dst: int, selector: int) -> Tuple[int, ...]:
        """The ``selector % num_route_choices``-th route, as link ids."""

    @property
    def num_links(self) -> int:
        return len(self.links)

    @property
    def host_link_capacity(self) -> float:
        """The slowest host NIC (bytes/s) — the rate lower bounds assume.

        Both concrete topologies name host nodes ``h<id>``; the slowest
        directed link touching one is the tightest line rate any single
        job's traffic can count on, which is exactly what
        :mod:`repro.theory.lowerbound` divides by.
        """
        capacities = [
            link.capacity
            for link in self.links
            if link.src_node.startswith("h") or link.dst_node.startswith("h")
        ]
        if not capacities:
            from repro.errors import TopologyError

            raise TopologyError("topology has no host-attached links")
        return min(capacities)

    def validate_host(self, host: int) -> None:
        from repro.errors import TopologyError

        if not 0 <= host < self.num_hosts:
            raise TopologyError(
                f"host {host} out of range (num_hosts={self.num_hosts})"
            )
