"""Ablations of Gurita's design choices (DESIGN.md §6).

Each function returns a family of Gurita configurations spanning one
design dimension; the ablation benchmarks run them on a fixed scenario to
show the knob's effect:

* rule-4 critical-path bonus λ on/off,
* starvation mitigation (WRR emulation) vs raw SPQ,
* number of priority queues,
* head-receiver update interval δ,
* demotion-threshold spacing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.core.config import GuritaConfig
from repro.core.gurita import GuritaScheduler
from repro.experiments.common import ScenarioConfig, build_jobs
from repro.simulator.runtime import SimulationResult, simulate
from repro.simulator.topology.fattree import FatTreeTopology


def run_gurita_variant(
    scenario: ScenarioConfig, config: GuritaConfig
) -> SimulationResult:
    """Run one Gurita configuration on the scenario's workload."""
    topology = FatTreeTopology(k=scenario.fattree_k)
    jobs = build_jobs(scenario, topology.num_hosts)
    return simulate(topology, GuritaScheduler(config), jobs)


def run_variants(
    scenario: ScenarioConfig, variants: Dict[str, GuritaConfig]
) -> Dict[str, SimulationResult]:
    """Run a named family of Gurita configurations on one scenario."""
    return {
        name: run_gurita_variant(scenario, config)
        for name, config in variants.items()
    }


def critical_path_variants(
    bonuses: Iterable[float] = (0.0, 0.1, 0.3),
) -> Dict[str, GuritaConfig]:
    """Rule 4 on/off and at different strengths."""
    return {
        f"lambda={bonus:g}": GuritaConfig(critical_path_bonus=bonus)
        for bonus in bonuses
    }


def starvation_variants() -> Dict[str, GuritaConfig]:
    """WRR-emulated SPQ (the paper's mitigation) vs raw SPQ."""
    return {
        "wrr": GuritaConfig(starvation_mitigation=True),
        "spq": GuritaConfig(starvation_mitigation=False),
    }


def queue_count_variants(
    counts: Iterable[int] = (2, 4, 8),
) -> Dict[str, GuritaConfig]:
    """Number of switch priority queues (the paper evaluates with 4)."""
    return {f"K={count}": GuritaConfig(num_classes=count) for count in counts}


def update_interval_variants(
    deltas: Iterable[float] = (2e-3, 8e-3, 32e-3, 128e-3),
) -> Dict[str, GuritaConfig]:
    """Head-receiver coordination period δ."""
    return {f"delta={delta:g}": GuritaConfig(update_interval=delta) for delta in deltas}


def threshold_variants(
    bases: Iterable[float] = (2.0, 10.0, 100.0),
) -> Dict[str, GuritaConfig]:
    """Exponential spacing factor of the demotion thresholds."""
    return {f"base={base:g}": GuritaConfig(psi_base=base) for base in bases}


def wrr_weight_mode_variants() -> Dict[str, GuritaConfig]:
    """Inverse-wait weights (our reading) vs the paper's literal formula."""
    return {
        "inverse-wait": GuritaConfig(wrr_weight_mode="inverse_wait"),
        "literal": GuritaConfig(wrr_weight_mode="literal"),
    }


def summarize(results: Dict[str, SimulationResult]) -> List[Tuple[str, float]]:
    """(variant, average JCT) pairs, fastest first."""
    return sorted(
        ((name, result.average_jct()) for name, result in results.items()),
        key=lambda pair: pair[1],
    )
