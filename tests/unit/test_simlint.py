"""Fixture tests for the simlint static-analysis suite.

Each rule gets a good/bad fixture pair, pragma suppression is exercised
per rule and file-wide, and the CLI contract (exit codes, JSON schema) is
pinned.  The final test is the acceptance gate: the shipped ``src`` tree
must lint clean.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from tools.simlint.__main__ import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from tools.simlint.runner import (
    SimlintUsageError,
    lint_paths,
    lint_source,
    select_rules,
)

#: A path inside the simulator scope (SIM001/SIM003/SIM004 fire here).
SIM_PATH = "src/repro/simulator/example.py"
#: A path outside every scoped rule's scope.
OUT_PATH = "src/repro/workloads/example.py"


def codes(report):
    return [f.code for f in report.findings]


def lint(source, path=SIM_PATH):
    return lint_source(textwrap.dedent(source), path=path)


# ----------------------------------------------------------------------
# SIM001 — wall-clock time
# ----------------------------------------------------------------------
class TestWallClock:
    BAD = """
        import time
        from datetime import datetime

        def stamp():
            return time.time(), datetime.now()
    """

    def test_bad_fixture_fires(self):
        assert codes(lint(self.BAD)) == ["SIM001", "SIM001"]

    def test_aliased_import_fires(self):
        src = """
            import time as clock

            def stamp():
                return clock.perf_counter()
        """
        assert codes(lint(src)) == ["SIM001"]

    def test_from_import_fires(self):
        src = """
            from time import monotonic

            def stamp():
                return monotonic()
        """
        assert codes(lint(src)) == ["SIM001"]

    def test_good_fixture_clean(self):
        src = """
            def stamp(now):
                return now  # simulation time is threaded explicitly
        """
        assert lint(src).clean

    def test_out_of_scope_path_clean(self):
        assert lint(self.BAD, path=OUT_PATH).clean


# ----------------------------------------------------------------------
# SIM002 — unseeded randomness
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_module_level_random_fires(self):
        src = """
            import random

            def pick(items):
                return random.choice(items)
        """
        assert codes(lint(src, path=OUT_PATH)) == ["SIM002"]

    def test_unseeded_random_instance_fires(self):
        src = """
            import random

            def make_rng():
                return random.Random()
        """
        assert codes(lint(src, path=OUT_PATH)) == ["SIM002"]

    def test_from_import_fires(self):
        src = """
            from random import shuffle
        """
        assert codes(lint(src, path=OUT_PATH)) == ["SIM002"]

    def test_seeded_instance_clean(self):
        src = """
            import random

            def make_rng(seed):
                return random.Random(seed)
        """
        assert lint(src, path=OUT_PATH).clean

    def test_numpy_default_rng_with_seed_clean(self):
        src = """
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(seed)
        """
        assert lint(src, path=OUT_PATH).clean

    def test_numpy_global_rng_fires(self):
        src = """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
        """
        assert codes(lint(src, path=OUT_PATH)) == ["SIM002"]


# ----------------------------------------------------------------------
# SIM003 — unsorted set / dict.keys() iteration
# ----------------------------------------------------------------------
class TestUnsortedSetIteration:
    def test_set_literal_iteration_fires(self):
        src = """
            def walk(flows):
                for f in {flow.dst for flow in flows}:
                    yield f
        """
        assert codes(lint(src)) == ["SIM003"]

    def test_set_call_iteration_fires(self):
        src = """
            def walk(a, b):
                for x in set(a) & set(b):
                    yield x
        """
        assert codes(lint(src)) == ["SIM003"]

    def test_keys_iteration_fires(self):
        src = """
            def walk(table):
                for k in table.keys():
                    yield k
        """
        assert codes(lint(src)) == ["SIM003"]

    def test_tracked_set_variable_fires(self):
        src = """
            def walk(items):
                pending = set(items)
                for x in pending:
                    yield x
        """
        assert codes(lint(src)) == ["SIM003"]

    def test_comprehension_generator_fires(self):
        src = """
            def walk(items):
                return [x for x in {i for i in items}]
        """
        assert codes(lint(src)) == ["SIM003"]

    def test_sorted_wrapping_clean(self):
        src = """
            def walk(flows, table, a, b):
                for f in sorted({flow.dst for flow in flows}):
                    yield f
                for k in sorted(table.keys()):
                    yield k
                for x in sorted(set(a) & set(b)):
                    yield x
        """
        assert lint(src).clean

    def test_plain_dict_iteration_clean(self):
        src = """
            def walk(table):
                for k in table:
                    yield k
        """
        assert lint(src).clean

    def test_out_of_scope_path_clean(self):
        src = """
            def walk(items):
                for x in set(items):
                    yield x
        """
        assert lint(src, path=OUT_PATH).clean


# ----------------------------------------------------------------------
# SIM004 — float equality on timestamps
# ----------------------------------------------------------------------
class TestTimestampEquality:
    def test_eq_on_time_attribute_fires(self):
        src = """
            def same_batch(event, now):
                return event.time == now
        """
        assert codes(lint(src)) == ["SIM004"]

    def test_neq_on_suffixed_name_fires(self):
        src = """
            def moved(finish_time, start_time):
                return finish_time != start_time
        """
        assert codes(lint(src)) == ["SIM004"]

    def test_none_comparison_clean(self):
        src = """
            def unfinished(finish_time):
                return finish_time == None
        """
        assert lint(src).clean

    def test_non_time_name_clean(self):
        src = """
            def same(count, total):
                return count == total
        """
        assert lint(src).clean

    def test_blessed_module_exempt(self):
        src = """
            def times_close(now, eta):
                return now == eta
        """
        assert lint(src, path="src/repro/simulator/timecmp.py").clean


# ----------------------------------------------------------------------
# SIM005 — mutable default arguments
# ----------------------------------------------------------------------
class TestMutableDefault:
    def test_mutable_defaults_fire_everywhere(self):
        src = """
            def collect(items=[], table={}, seen=set()):
                return items, table, seen
        """
        assert codes(lint(src, path=OUT_PATH)) == ["SIM005", "SIM005", "SIM005"]

    def test_immutable_defaults_clean(self):
        src = """
            def collect(items=(), name="x", count=0, table=None):
                return items, name, count, table
        """
        assert lint(src, path=OUT_PATH).clean


# ----------------------------------------------------------------------
# SIM006 — priority-delta contract
# ----------------------------------------------------------------------
class TestPriorityDeltaContract:
    def test_opt_in_without_reporting_fires(self):
        src = """
            class Policy(SchedulerPolicy):
                reports_priority_deltas = True

                def allocation(self, active_flows, now):
                    return build_request(active_flows)
        """
        assert codes(lint(src, path="src/repro/schedulers/example.py")) == [
            "SIM006"
        ]

    def test_opt_in_with_reporting_clean(self):
        src = """
            class Policy(SchedulerPolicy):
                reports_priority_deltas = True

                def promote(self, flow_id):
                    self._note_priority_change(flow_id)
        """
        assert lint(src, path="src/repro/schedulers/example.py").clean

    def test_opt_out_clean(self):
        src = """
            class Policy(SchedulerPolicy):
                reports_priority_deltas = False
        """
        assert lint(src, path="src/repro/schedulers/example.py").clean


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_targeted_pragma_suppresses(self):
        src = """
            def collect(items=[]):  # simlint: ignore[SIM005]
                return items
        """
        report = lint(src, path=OUT_PATH)
        assert report.clean
        assert report.suppressed == 1

    def test_pragma_for_other_code_does_not_suppress(self):
        src = """
            def collect(items=[]):  # simlint: ignore[SIM001]
                return items
        """
        assert codes(lint(src, path=OUT_PATH)) == ["SIM005"]

    def test_bare_pragma_suppresses_all_codes(self):
        src = """
            def collect(items=[]):  # simlint: ignore
                return items
        """
        assert lint(src, path=OUT_PATH).clean

    def test_skip_file_pragma(self):
        src = """
            # simlint: skip-file
            def collect(items=[]):
                return items
        """
        report = lint(src, path=OUT_PATH)
        assert report.clean
        assert report.files_checked == 1


# ----------------------------------------------------------------------
# Rule selection and the CLI contract
# ----------------------------------------------------------------------
class TestRunner:
    def test_select_restricts_rules(self):
        rules = select_rules(select=["SIM005"])
        assert [r.code for r in rules] == ["SIM005"]

    def test_ignore_removes_rules(self):
        rules = select_rules(ignore=["SIM005"])
        assert "SIM005" not in [r.code for r in rules]

    def test_unknown_code_rejected(self):
        with pytest.raises(SimlintUsageError):
            select_rules(select=["SIM999"])

    def test_syntax_error_is_usage_error(self):
        with pytest.raises(SimlintUsageError):
            lint_source("def broken(:\n", path=SIM_PATH)

    def test_cli_clean_exit(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("def ok(now):\n    return now\n")
        assert main([str(target)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_cli_findings_exit_and_json(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("def collect(items=[]):\n    return items\n")
        assert main([str(target), "--json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["files_checked"] == 1
        assert [f["code"] for f in payload["findings"]] == ["SIM005"]
        assert [f["layer"] for f in payload["findings"]] == ["file"]

    def test_cli_usage_exit_on_unknown_rule(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main([str(target), "--select", "SIM999"]) == EXIT_USAGE

    def test_cli_missing_path_is_usage_error(self, tmp_path):
        assert main([str(tmp_path / "missing.py")]) == EXIT_USAGE


# ----------------------------------------------------------------------
# Acceptance: the shipped tree lints clean
# ----------------------------------------------------------------------
def test_shipped_src_tree_is_clean():
    report = lint_paths(["src"])
    assert report.clean, "\n" + report.render_human()
    assert report.files_checked > 50
