"""Unit tests for the blocking effect Ψ (paper eq. 2 / eq. 3)."""

import pytest

from repro.core.blocking import (
    beta,
    blocking_effect,
    coflow_psi_clairvoyant,
    coflow_psi_estimated,
    gamma_clairvoyant,
    gamma_estimated,
    job_stage_psi,
)
from repro.jobs import JobBuilder


class TestBeta:
    def test_uniform_coflow_hits_floor(self):
        assert beta(10.0, 10.0) == pytest.approx(0.1)

    def test_elephant_dominance_approaches_one(self):
        assert beta(1000.0, 1.0) == pytest.approx(0.999)

    def test_midrange(self):
        assert beta(10.0, 4.0) == pytest.approx(0.6)

    def test_floor_respected_even_for_near_uniform(self):
        assert beta(10.0, 9.99, floor=0.1) >= 0.1

    def test_no_observation_yet(self):
        assert beta(0.0, 0.0) == pytest.approx(0.1)

    def test_custom_floor(self):
        assert beta(10.0, 10.0, floor=0.25) == pytest.approx(0.25)


class TestGamma:
    def test_clairvoyant_decreases_toward_final_stage(self):
        values = [gamma_clairvoyant(s, 5) for s in range(5)]
        assert values == sorted(values, reverse=True)
        assert values[0] == pytest.approx(1.0)
        assert values[-1] == pytest.approx(0.2)

    def test_clairvoyant_single_stage_job(self):
        assert gamma_clairvoyant(0, 1) == pytest.approx(1.0)

    def test_clairvoyant_clamps_overflow(self):
        assert gamma_clairvoyant(99, 5) == gamma_clairvoyant(4, 5)

    def test_clairvoyant_rejects_bad_total(self):
        with pytest.raises(ValueError):
            gamma_clairvoyant(0, 0)

    def test_estimated_diminishes_with_stage(self):
        values = [gamma_estimated(s) for s in range(10)]
        assert values == sorted(values, reverse=True)
        assert values[0] == pytest.approx(1.0)
        assert gamma_estimated(9) == pytest.approx(0.1)

    def test_estimated_handles_negative_gracefully(self):
        assert gamma_estimated(-1) == pytest.approx(1.0)


class TestBlockingEffect:
    def test_formula_composition(self):
        # Ψ = γ × w × l_max × β with β = 1 - mean/max
        psi = blocking_effect(0.5, 4, 100.0, 25.0)
        assert psi == pytest.approx(0.5 * 4 * 100.0 * 0.75)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            blocking_effect(1.0, -1, 10.0, 5.0)

    def test_wider_coflow_blocks_more(self):
        narrow = blocking_effect(1.0, 2, 100.0, 50.0)
        wide = blocking_effect(1.0, 20, 100.0, 50.0)
        assert wide > narrow

    def test_longer_flows_block_more(self):
        short = blocking_effect(1.0, 4, 10.0, 5.0)
        long = blocking_effect(1.0, 4, 100.0, 50.0)
        assert long > short

    def test_job_stage_psi_sums(self):
        assert job_stage_psi([1.0, 2.0, 3.0]) == pytest.approx(6.0)
        assert job_stage_psi([]) == 0.0


class TestCoflowPsi:
    def _job(self, ids):
        builder = JobBuilder(ids=ids)
        first = builder.add_coflow([(0, 1, 100.0), (2, 3, 20.0)])
        second = builder.add_coflow([(1, 2, 10.0)], depends_on=[first])
        return builder.build(), first, second

    def test_clairvoyant_uses_true_dimensions(self, ids):
        job, first, _second = self._job(ids)
        coflow = job.coflow(first)
        expected = blocking_effect(
            gamma_clairvoyant(0, 2), 2, 100.0, 60.0
        )
        assert coflow_psi_clairvoyant(coflow, job) == pytest.approx(expected)

    def test_final_stage_coflow_gets_lower_gamma(self, ids):
        job, first, second = self._job(ids)
        psi_first = coflow_psi_clairvoyant(job.coflow(first), job)
        # Same dimensions at the final stage would halve gamma (1 -> 0.5).
        assert gamma_clairvoyant(1, 2) == pytest.approx(0.5)

    def test_estimated_starts_at_zero_before_observations(self, ids):
        job, first, _second = self._job(ids)
        coflow = job.coflow(first)
        coflow.release(0.0)
        # No bytes received yet: Ψ̈ must be zero (no evidence of blocking).
        assert coflow_psi_estimated(coflow, completed_stages=0) == 0.0

    def test_estimated_grows_with_observations(self, ids):
        job, first, _second = self._job(ids)
        coflow = job.coflow(first)
        coflow.release(0.0)
        coflow.flows[0].rate = 10.0
        coflow.flows[0].advance(1.0)
        early = coflow_psi_estimated(coflow, completed_stages=0)
        coflow.flows[0].advance(5.0)
        late = coflow_psi_estimated(coflow, completed_stages=0)
        assert late > early > 0.0
