"""Descriptive statistics over traces and workloads.

Used by the trace tooling example and the workload-validation benches to
characterise what a (real or synthetic) trace looks like: size and width
distributions, Table-1 category census, per-stage byte profile of jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.jobs.job import Job
from repro.workloads.categories import category_of
from repro.workloads.fbtrace import TraceCoflow


@dataclass(frozen=True)
class Distribution:
    """Five-number-ish summary of a sample."""

    count: int
    minimum: float
    median: float
    p90: float
    p99: float
    maximum: float
    mean: float

    @staticmethod
    def from_values(values: Sequence[float]) -> "Distribution":
        if not values:
            raise ValueError("no samples")
        ordered = sorted(values)
        n = len(ordered)

        def pct(q: float) -> float:
            return ordered[min(n - 1, int(q * n))]

        return Distribution(
            count=n,
            minimum=ordered[0],
            median=pct(0.5),
            p90=pct(0.9),
            p99=pct(0.99),
            maximum=ordered[-1],
            mean=sum(ordered) / n,
        )


@dataclass(frozen=True)
class TraceStats:
    """Shape of a coflow trace."""

    sizes: Distribution  #: bytes per coflow
    widths: Distribution  #: flows per coflow (mappers x reducers)
    category_census: Dict[int, int]
    bytes_share_top_decile: float  #: fraction of bytes in the top 10% coflows


def trace_stats(trace: Sequence[TraceCoflow]) -> TraceStats:
    """Summarise a trace's marginals."""
    if not trace:
        raise ValueError("empty trace")
    sizes = [c.total_bytes for c in trace]
    widths = [float(c.num_flows) for c in trace]
    census: Dict[int, int] = {}
    for coflow in trace:
        category = category_of(coflow.total_bytes)
        census[category] = census.get(category, 0) + 1
    ordered = sorted(sizes, reverse=True)
    top = ordered[: max(1, len(ordered) // 10)]
    share = sum(top) / sum(sizes)
    return TraceStats(
        sizes=Distribution.from_values(sizes),
        widths=Distribution.from_values(widths),
        category_census=census,
        bytes_share_top_decile=share,
    )


@dataclass(frozen=True)
class WorkloadStats:
    """Shape of a structured (multi-stage) workload."""

    num_jobs: int
    stage_depths: Distribution
    coflows_per_job: Distribution
    flows_per_job: Distribution
    job_sizes: Distribution
    category_census: Dict[int, int]
    stage_byte_profile: List[float]  #: mean fraction of job bytes per stage


def workload_stats(jobs: Sequence[Job]) -> WorkloadStats:
    """Summarise a structured workload's shape."""
    if not jobs:
        raise ValueError("no jobs")
    depths = [float(job.num_stages) for job in jobs]
    coflows = [float(len(job.coflows)) for job in jobs]
    flows = [float(sum(len(c.flows) for c in job.coflows)) for job in jobs]
    sizes = [job.total_bytes for job in jobs]
    census: Dict[int, int] = {}
    for job in jobs:
        category = category_of(job.total_bytes)
        census[category] = census.get(category, 0) + 1
    max_depth = int(max(depths))
    shares = [0.0] * max_depth
    for job in jobs:
        total = job.total_bytes
        if total <= 0:
            continue
        for stage in range(1, job.num_stages + 1):
            shares[stage - 1] += job.stage_bytes(stage) / total
    profile = [share / len(jobs) for share in shares]
    return WorkloadStats(
        num_jobs=len(jobs),
        stage_depths=Distribution.from_values(depths),
        coflows_per_job=Distribution.from_values(coflows),
        flows_per_job=Distribution.from_values(flows),
        job_sizes=Distribution.from_values(sizes),
        category_census=census,
        stage_byte_profile=profile,
    )


def format_trace_stats(stats: TraceStats) -> str:
    """Human-readable trace summary."""
    lines = [
        f"coflows: {stats.sizes.count}",
        (
            "size bytes: "
            f"median {stats.sizes.median:.3g}, p90 {stats.sizes.p90:.3g}, "
            f"p99 {stats.sizes.p99:.3g}, max {stats.sizes.maximum:.3g}"
        ),
        (
            "width flows: "
            f"median {stats.widths.median:.0f}, p90 {stats.widths.p90:.0f}, "
            f"max {stats.widths.maximum:.0f}"
        ),
        f"top-decile byte share: {stats.bytes_share_top_decile:.1%}",
        "category census: "
        + ", ".join(f"{cat}:{count}" for cat, count in sorted(stats.category_census.items())),
    ]
    return "\n".join(lines)
