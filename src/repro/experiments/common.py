"""Shared experiment harness: run one scenario across many schedulers.

Each paper experiment (Figures 5–8) is a scenario — a (structure, arrival
pattern, topology, load) tuple — replayed once per scheduling policy on an
identical workload.  Jobs are rebuilt from the same seed for every policy,
so all policies see byte-identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.jobs.job import Job
from repro.metrics.improvement import (
    overall_improvement,
    per_category_improvement,
)
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import SimulationResult, simulate
from repro.simulator.topology.base import Topology
from repro.simulator.topology.bigswitch import BigSwitchTopology
from repro.simulator.topology.fattree import FatTreeTopology
from repro.simulator.topology.links import TEN_GBPS
from repro.workloads.generator import synthesize_workload

if TYPE_CHECKING:  # imported lazily inside build_fault_profile at runtime
    from repro.simulator.faults import FaultProfile

#: The comparators of the paper's evaluation, plus Gurita itself.
PAPER_SCHEDULERS: Tuple[str, ...] = ("pfs", "baraat", "stream", "aalo", "gurita")


@dataclass(frozen=True)
class ScenarioConfig:
    """One experiment scenario.

    The defaults pick a laptop-scale rendition of the paper's 8-pod
    FatTree experiments; the bursty large-scale scenario of Figure 7
    raises ``fattree_k`` and ``num_jobs`` (the paper's 48 pods / 10,000
    jobs are a flag away but take hours in pure Python).
    """

    name: str = "scenario"
    structure: str = "fb-tao"
    num_jobs: int = 60
    #: network substrate: "fattree" (the paper's) or "bigswitch" (the
    #: non-blocking analysis abstraction — fastest for wide grids)
    topology: str = "fattree"
    fattree_k: int = 8
    #: host count for the big-switch fabric; 0 = a 16-host default
    num_hosts: int = 0
    #: uniform link capacity in bytes/s; 0.0 = the topology's default
    #: 10 Gb/s (the paper's switch speed) — the gap harness scales this
    #: to check that optimality gaps are capacity-scale-invariant
    link_capacity: float = 0.0
    arrival_mode: str = "uniform"
    seed: int = 42
    size_scale: float = 1.0
    max_fanin: int = 16
    offered_load: float = 1.5
    burst_size: int = 10
    burst_gap: float = 1.0
    duration: Optional[float] = None
    schedulers: Tuple[str, ...] = PAPER_SCHEDULERS
    #: canned fault profile name ("" = perfect fabric, the historical
    #: behaviour); see :func:`repro.simulator.faults.profile_from_name`
    fault_profile: str = ""
    #: scales incident counts / HR degradation of the canned profile
    fault_intensity: float = 1.0
    #: pins the fault stream; 0 = derive from the workload seed
    fault_seed: int = 0

    def with_overrides(self, **kwargs: Any) -> "ScenarioConfig":
        return replace(self, **kwargs)


@dataclass
class ScenarioResult:
    """All policies' results on one scenario's workload."""

    config: ScenarioConfig
    results: Dict[str, SimulationResult] = field(default_factory=dict)

    def average_jcts(self) -> Dict[str, float]:
        return {name: r.average_jct() for name, r in self.results.items()}

    def improvements_over(self, reference: str = "gurita") -> Dict[str, float]:
        """Improvement factor of ``reference`` over every other policy."""
        ref = self.results[reference]
        return {
            name: overall_improvement(result, ref)
            for name, result in self.results.items()
            if name != reference
        }

    def category_improvements_over(
        self, reference: str = "gurita"
    ) -> Dict[str, Dict[int, float]]:
        """Per-category improvement of ``reference`` over each policy."""
        ref = self.results[reference]
        return {
            name: per_category_improvement(result, ref)
            for name, result in self.results.items()
            if name != reference
        }

    def mean_optimality_gaps(self) -> Dict[str, float]:
        """Mean measured-JCT / lower-bound ratio per policy (>= 1.0).

        The bound rate is the scenario topology's host NIC capacity; see
        :mod:`repro.theory.lowerbound` for the bound definitions and
        :mod:`repro.theory.gap` for the full harness built on this.
        """
        # Function-level import: repro.theory.gap imports this module, so
        # a module-level import here would cycle through the package inits.
        from repro.theory.lowerbound import mean_optimality_gap

        link_rate = scenario_link_rate(self.config)
        return {
            name: mean_optimality_gap(result, link_rate)
            for name, result in sorted(self.results.items())
        }


def scenario_link_rate(config: ScenarioConfig) -> float:
    """The scenario topology's host NIC rate without building the fabric.

    Both concrete fabrics are uniform-capacity, so the slowest host NIC
    is exactly the configured ``link_capacity`` (10 Gb/s when unset);
    ``tests/unit/test_topology.py`` pins this against
    ``build_topology(config).host_link_capacity``.  Bound computations
    over *replayed* results (grid payloads, cached cells) must use this
    pure form: feeding a payload-derived config back into
    ``build_topology`` would alias the simulator's own topology
    construction in the determinism-taint analysis.
    """
    if config.link_capacity > 0.0:
        return config.link_capacity
    return TEN_GBPS


def build_topology(config: ScenarioConfig) -> Topology:
    """The scenario's network substrate (deterministic in the config)."""
    if config.topology == "fattree":
        if config.link_capacity > 0.0:
            return FatTreeTopology(
                k=config.fattree_k, link_capacity=config.link_capacity
            )
        return FatTreeTopology(k=config.fattree_k)
    if config.topology == "bigswitch":
        if config.link_capacity > 0.0:
            return BigSwitchTopology(
                num_hosts=config.num_hosts or 16,
                link_capacity=config.link_capacity,
            )
        return BigSwitchTopology(num_hosts=config.num_hosts or 16)
    raise ExperimentError(
        f"unknown topology {config.topology!r}; expected 'fattree' or "
        "'bigswitch'"
    )


def build_jobs(config: ScenarioConfig, num_hosts: int) -> List[Job]:
    """The scenario's workload (deterministic in the config's seed)."""
    return synthesize_workload(
        num_jobs=config.num_jobs,
        num_hosts=num_hosts,
        structure=config.structure,
        seed=config.seed,
        arrival_mode=config.arrival_mode,
        duration=config.duration,
        offered_load=config.offered_load,
        burst_size=config.burst_size,
        burst_gap=config.burst_gap,
        size_scale=config.size_scale,
        max_fanin=config.max_fanin,
    )


def build_fault_profile(config: ScenarioConfig) -> Optional["FaultProfile"]:
    """The scenario's fault profile, or None for the perfect fabric.

    The fault-stream seed is derived from ``fault_seed`` (or, when 0,
    the workload seed) and the profile name — a pure function of the
    config, so every scheduler replay and every execution mode (serial
    or ``run_grid``) injects a bit-identical fault timeline.
    """
    if not config.fault_profile:
        return None
    from repro.simulator.faults import derive_fault_seed, profile_from_name

    base_seed = config.fault_seed if config.fault_seed else config.seed
    return profile_from_name(
        config.fault_profile,
        intensity=config.fault_intensity,
        seed=derive_fault_seed(base_seed, config.fault_profile),
    )


def run_scenario(
    config: ScenarioConfig,
    schedulers: Optional[Sequence[str]] = None,
) -> ScenarioResult:
    """Replay the scenario once per scheduler on identical workloads."""
    names: List[str] = list(schedulers if schedulers is not None else config.schedulers)
    outcome = ScenarioResult(config=config)
    for name in names:
        topology = build_topology(config)
        jobs = build_jobs(config, topology.num_hosts)
        outcome.results[name] = simulate(
            topology,
            make_scheduler(name),
            jobs,
            faults=build_fault_profile(config),
        )
    return outcome
