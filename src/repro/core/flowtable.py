"""Receiver-side flow table keyed by Jenkins-hashed 5-tuples (paper §IV.B).

"Gurita employs a flow hash table (e.g. Jenkins hash) to keep track of
flow information at the receiver's end using 5 tuples (src IP, dest IP,
src port, dest port, and protocol) ... Gurita then updates and stores flow
information (coflow ID, flow ID, byte received counts, number of open
connections, etc.) into a flow table."

The simulator identifies flows by integer id, but the deployment-shaped
data structure is implemented faithfully: a fixed-bucket hash table over
5-tuples using Bob Jenkins' one-at-a-time hash, with per-coflow rollups
(open connections, bytes received, largest/mean per-flow bytes) — exactly
the quantities the head receiver's Ψ̈ estimate consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: (src ip, dst ip, src port, dst port, protocol) — all as integers.
FiveTuple = Tuple[int, int, int, int, int]

#: IANA protocol number for TCP, the datacenter default.
PROTO_TCP = 6


def jenkins_one_at_a_time(data: bytes) -> int:
    """Bob Jenkins' one-at-a-time hash (32-bit)."""
    value = 0
    for byte in data:
        value = (value + byte) & 0xFFFFFFFF
        value = (value + (value << 10)) & 0xFFFFFFFF
        value ^= value >> 6
    value = (value + (value << 3)) & 0xFFFFFFFF
    value ^= value >> 11
    value = (value + (value << 15)) & 0xFFFFFFFF
    return value


def hash_five_tuple(five_tuple: FiveTuple) -> int:
    """Jenkins hash of a packed 5-tuple."""
    src_ip, dst_ip, src_port, dst_port, protocol = five_tuple
    packed = (
        src_ip.to_bytes(4, "big")
        + dst_ip.to_bytes(4, "big")
        + src_port.to_bytes(2, "big")
        + dst_port.to_bytes(2, "big")
        + protocol.to_bytes(1, "big")
    )
    return jenkins_one_at_a_time(packed)


@dataclass
class FlowRecord:
    """Per-flow state a receiver tracks."""

    five_tuple: FiveTuple
    flow_id: int
    coflow_id: int
    bytes_received: float = 0.0
    open: bool = True


@dataclass
class CoflowStats:
    """Rollup over a coflow's flows, as seen by one receiver."""

    coflow_id: int
    open_connections: int = 0
    bytes_received: float = 0.0
    max_flow_bytes: float = 0.0
    num_flows: int = 0

    @property
    def mean_flow_bytes(self) -> float:
        if self.num_flows == 0:
            return 0.0
        return self.bytes_received / self.num_flows


class FlowTable:
    """Fixed-bucket hash table of flow records with coflow rollups.

    Collisions chain within a bucket (separate chaining), as a kernel
    shim's table would; ``num_buckets`` trades memory for chain length.
    """

    def __init__(self, num_buckets: int = 1024) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self.num_buckets = num_buckets
        self._buckets: List[List[FlowRecord]] = [[] for _ in range(num_buckets)]
        self._size = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def _bucket_of(self, five_tuple: FiveTuple) -> List[FlowRecord]:
        return self._buckets[hash_five_tuple(five_tuple) % self.num_buckets]

    def insert(
        self, five_tuple: FiveTuple, flow_id: int, coflow_id: int
    ) -> FlowRecord:
        """Register a new connection; replaces a stale same-tuple entry."""
        bucket = self._bucket_of(five_tuple)
        for index, record in enumerate(bucket):
            if record.five_tuple == five_tuple:
                bucket[index] = FlowRecord(five_tuple, flow_id, coflow_id)
                return bucket[index]
        record = FlowRecord(five_tuple, flow_id, coflow_id)
        bucket.append(record)
        self._size += 1
        return record

    def lookup(self, five_tuple: FiveTuple) -> Optional[FlowRecord]:
        for record in self._bucket_of(five_tuple):
            if record.five_tuple == five_tuple:
                return record
        return None

    def account_bytes(self, five_tuple: FiveTuple, num_bytes: float) -> bool:
        """Credit received bytes to a flow; False if unknown."""
        record = self.lookup(five_tuple)
        if record is None or not record.open:
            return False
        record.bytes_received += num_bytes
        return True

    def close(self, five_tuple: FiveTuple) -> bool:
        """Mark a connection closed (sender finished); False if unknown."""
        record = self.lookup(five_tuple)
        if record is None or not record.open:
            return False
        record.open = False
        return True

    def evict_closed(self, coflow_id: Optional[int] = None) -> int:
        """Drop closed records (optionally only one coflow's); returns count.

        The HR "excludes information of completed flows from being
        considered" — eviction is how a receiver forgets them.
        """
        evicted = 0
        for bucket in self._buckets:
            keep = []
            for record in bucket:
                stale = not record.open and (
                    coflow_id is None or record.coflow_id == coflow_id
                )
                if stale:
                    evicted += 1
                else:
                    keep.append(record)
            bucket[:] = keep
        self._size -= evicted
        return evicted

    # ------------------------------------------------------------------
    # Rollups for the head receiver
    # ------------------------------------------------------------------
    def coflow_stats(self) -> Dict[int, CoflowStats]:
        """Per-coflow rollups over the *open* records."""
        stats: Dict[int, CoflowStats] = {}
        for record in self:
            entry = stats.setdefault(
                record.coflow_id, CoflowStats(coflow_id=record.coflow_id)
            )
            entry.num_flows += 1
            entry.bytes_received += record.bytes_received
            entry.max_flow_bytes = max(entry.max_flow_bytes, record.bytes_received)
            if record.open:
                entry.open_connections += 1
        return stats

    def __iter__(self) -> Iterator[FlowRecord]:
        for bucket in self._buckets:
            yield from bucket

    def __len__(self) -> int:
        return self._size

    def load_factor(self) -> float:
        return self._size / self.num_buckets

    def max_chain_length(self) -> int:
        return max((len(bucket) for bucket in self._buckets), default=0)


def five_tuple_for_flow(flow_id: int, src: int, dst: int) -> FiveTuple:
    """Deterministic synthetic 5-tuple for a simulated flow.

    Hosts become 10.0.0.0/8 addresses; the source (ephemeral) port is
    derived from the flow id, the destination port is a fixed shuffle
    service port.
    """
    base = 10 << 24  # 10.0.0.0
    src_ip = base + src
    dst_ip = base + dst
    src_port = 32768 + (flow_id % 28232)
    dst_port = 7077  # shuffle service
    return (src_ip, dst_ip, src_port, dst_port, PROTO_TCP)
