"""Lower bounds on job completion time — anchoring "near optimal".

No scheduler can deliver a job faster than the network physically allows.
Two bounds are computed per job:

* **critical-path bound** — along every leaf-to-root path of the coflow
  DAG, stages run serially; each stage needs at least
  ``max(l_max / link_rate, port load / link_rate)`` where the port load is
  the most bytes any single NIC must move for that coflow.  The job needs
  at least the heaviest path.
* **port bound** — across the whole job, some NIC must carry all bytes the
  job sends/receives through it; that volume over the line rate bounds the
  JCT from below (even with perfect pipelining this traffic shares one
  port).

The benches report measured JCT against these bounds; a schedule close to
the bound is close to optimal regardless of what any other policy does.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.jobs.coflow import Coflow
from repro.jobs.job import Job
from repro.jobs.paths import critical_path
from repro.simulator.runtime import SimulationResult


def coflow_service_bound(coflow: Coflow, link_rate: float) -> float:
    """Minimum time to drain one coflow at NIC line rate.

    The slowest of: the largest single flow, the most-loaded sender port,
    and the most-loaded receiver port.
    """
    if link_rate <= 0:
        raise ValueError("link_rate must be positive")
    out_bytes: Dict[int, float] = defaultdict(float)
    in_bytes: Dict[int, float] = defaultdict(float)
    largest = 0.0
    for flow in coflow.flows:
        out_bytes[flow.src] += flow.size_bytes
        in_bytes[flow.dst] += flow.size_bytes
        largest = max(largest, flow.size_bytes)
    port_load = max(
        max(out_bytes.values(), default=0.0),
        max(in_bytes.values(), default=0.0),
    )
    return max(largest, port_load) / link_rate


def job_critical_path_bound(job: Job, link_rate: float) -> float:
    """Serial service time of the heaviest dependency path."""
    def cost(coflow_id: int) -> float:
        return coflow_service_bound(job.coflow(coflow_id), link_rate)

    _path, bound = critical_path(job.dag, cost)
    return bound


def job_port_bound(job: Job, link_rate: float) -> float:
    """The most bytes any one NIC moves for this job, at line rate."""
    if link_rate <= 0:
        raise ValueError("link_rate must be positive")
    out_bytes: Dict[int, float] = defaultdict(float)
    in_bytes: Dict[int, float] = defaultdict(float)
    for coflow in job.coflows:
        for flow in coflow.flows:
            out_bytes[flow.src] += flow.size_bytes
            in_bytes[flow.dst] += flow.size_bytes
    port_load = max(
        max(out_bytes.values(), default=0.0),
        max(in_bytes.values(), default=0.0),
    )
    return port_load / link_rate


def job_lower_bound(job: Job, link_rate: float) -> float:
    """The tighter of the critical-path and port bounds."""
    return max(
        job_critical_path_bound(job, link_rate),
        job_port_bound(job, link_rate),
    )


def optimality_gaps(
    result: SimulationResult, link_rate: float
) -> Dict[int, float]:
    """Measured JCT / lower bound per completed job (>= 1; 1 = optimal)."""
    gaps: Dict[int, float] = {}
    for job in result.jobs:
        jct = job.completion_time()
        if jct is None:
            continue
        bound = job_lower_bound(job, link_rate)
        if bound > 0:
            gaps[job.job_id] = jct / bound
    return gaps


def mean_optimality_gap(result: SimulationResult, link_rate: float) -> float:
    """Average measured/bound ratio across completed jobs."""
    gaps = list(optimality_gaps(result, link_rate).values())
    if not gaps:
        raise ValueError("no completed jobs with positive lower bounds")
    return sum(gaps) / len(gaps)
