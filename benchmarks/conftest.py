"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures and prints
the corresponding rows/series, so ``pytest benchmarks/ --benchmark-only -s``
doubles as the reproduction report.  Simulations are deterministic, so one
round is enough; ``REPRO_BENCH_JOBS`` scales the workloads up or down.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Figure tables printed by benches are also appended here, so a plain
#: ``pytest benchmarks/ --benchmark-only`` (without -s) still leaves a
#: readable reproduction report behind.
REPORT_PATH = Path(__file__).parent / "latest_report.txt"


def pytest_sessionstart(session):
    if REPORT_PATH.exists():
        REPORT_PATH.unlink()


@pytest.fixture(autouse=True)
def record_report(request, capsys):
    """Append each bench's printed tables to the report file."""
    yield
    captured = capsys.readouterr()
    if captured.out.strip():
        with REPORT_PATH.open("a") as handle:
            handle.write(f"===== {request.node.nodeid}\n{captured.out}\n")
        # Re-emit so -s-style visibility is preserved where possible.
        print(captured.out, end="")


@pytest.fixture
def run_once(benchmark):
    """Run a deterministic experiment exactly once under pytest-benchmark."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
