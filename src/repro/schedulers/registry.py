"""Name-based scheduler factory used by experiments and benchmarks."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.config import GuritaConfig
from repro.core.gurita import GuritaScheduler
from repro.core.gurita_plus import GuritaPlusScheduler
from repro.errors import SchedulerError
from repro.schedulers.aalo import AaloScheduler
from repro.schedulers.baraat import BaraatScheduler
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.depgraph import DependencyGraphScheduler
from repro.schedulers.las import LasScheduler
from repro.schedulers.lporder import LpOrderScheduler
from repro.schedulers.pfs import PerFlowFairSharing
from repro.schedulers.stream import StreamScheduler
from repro.schedulers.tbs import StageBytesSjf, TotalBytesSjf
from repro.schedulers.varys import SebfScheduler

_FACTORIES: Dict[str, Callable[[], SchedulerPolicy]] = {
    "pfs": PerFlowFairSharing,
    "baraat": BaraatScheduler,
    "stream": StreamScheduler,
    "aalo": AaloScheduler,
    "sebf": SebfScheduler,
    "las": LasScheduler,
    "tbs-sjf": TotalBytesSjf,
    "stage-sjf": StageBytesSjf,
    "sg-dag": DependencyGraphScheduler,
    "lp-order": LpOrderScheduler,
    "gurita": lambda: GuritaScheduler(GuritaConfig()),
    "gurita+": lambda: GuritaPlusScheduler(GuritaConfig()),
}


def available_schedulers() -> List[str]:
    """All registered policy names."""
    return sorted(_FACTORIES)


def make_scheduler(name: str) -> SchedulerPolicy:
    """Instantiate a fresh policy by name (fresh state per simulation)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise SchedulerError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    return factory()
