"""Plain-text report rendering for experiment output.

These helpers print the rows/series the paper's figures report, so the
benchmark harness output can be compared against the paper side by side.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.workloads.categories import category_label


def format_improvement_row(
    scenario: str, improvements: Mapping[str, float]
) -> str:
    """One Figure-5-style row: scenario + improvement per baseline."""
    cells = "  ".join(
        f"{name}={factor:5.2f}x" for name, factor in sorted(improvements.items())
    )
    return f"{scenario:<12s} {cells}"


def format_category_table(
    per_scheduler: Mapping[str, Mapping[int, float]],
    title: str = "",
) -> str:
    """A Figure-6/7/8-style table: improvement per category per baseline.

    ``per_scheduler`` maps scheduler name -> {category -> improvement}.
    """
    categories: List[int] = sorted(
        {cat for factors in per_scheduler.values() for cat in factors}
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "scheduler   " + "".join(
        f"{category_label(cat):>8s}" for cat in categories
    )
    lines.append(header)
    for name in sorted(per_scheduler):
        factors = per_scheduler[name]
        row = f"{name:<12s}" + "".join(
            f"{factors[cat]:8.2f}" if cat in factors else "       -"
            for cat in categories
        )
        lines.append(row)
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float]) -> str:
    """A labelled numeric series, 4 significant digits."""
    return f"{label}: " + ", ".join(f"{v:.4g}" for v in values)


def format_jct_table(averages: Mapping[str, float]) -> str:
    """Average JCT per scheduler, sorted fastest first."""
    lines = ["scheduler      avg JCT (s)"]
    for name, jct in sorted(averages.items(), key=lambda kv: kv[1]):
        lines.append(f"{name:<14s} {jct:10.4f}")
    return "\n".join(lines)


def format_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "x",
) -> str:
    """ASCII horizontal bars — terminal rendition of the paper's figures.

    Bars scale to the largest value; labels sort by value descending.
    """
    if not values:
        return "(no data)"
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(name)) for name in values)
    lines: List[str] = []
    for name, value in sorted(values.items(), key=lambda kv: -kv[1]):
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(f"{name:<{label_width}s} |{bar:<{width}s}| {value:.2f}{unit}")
    return "\n".join(lines)
