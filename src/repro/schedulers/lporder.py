"""LP-relaxation ordered-list coflow scheduling (Qiu–Stein–Zhong family).

Qiu, Stein & Zhong (arXiv:1603.07981) minimise total (weighted) coflow
completion time by solving an LP relaxation over port loads, ordering
coflows by their LP completion times, and then serving that ordered list.
The deterministic constant-factor guarantee lives entirely in the *order*;
later work (Sincronia, and the improved bound of arXiv:1704.08357) showed
the same order can be recovered combinatorially by a primal–dual sweep
over the LP's port-capacity constraints, with no solver in the loop.

That combinatorial equivalent is what this policy runs each round over the
*remaining* bytes of the active coflows:

1. find the bottleneck port — the NIC direction with the largest aggregate
   remaining load (the binding LP capacity constraint);
2. among coflows touching it, place the largest contributor *last* — its
   LP completion time is provably latest, and every other coflow prefers
   finishing ahead of it;
3. charge the placed coflow's bytes off every port and repeat.

The resulting front-to-back list maps to strict priority classes.  Like
SEBF this is clairvoyant over remaining sizes; unlike SEBF it prices a
coflow by the *congestion of the ports it crosses*, not by its own span
alone — on a contended port a small coflow still waits behind nothing,
while on an idle port even an elephant rides in a high class.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.jobs.flow import Flow
from repro.schedulers.base import SchedulerPolicy
from repro.simulator.bandwidth.request import (
    MAX_SWITCH_CLASSES,
    AllocationMode,
    AllocationRequest,
)

#: A NIC direction: (0 = sender/egress, 1 = receiver/ingress, host id).
Port = Tuple[int, int]


class LpOrderScheduler(SchedulerPolicy):
    """Bottleneck-port primal–dual ordering of the active coflows."""

    name = "lp-order"

    def __init__(self, num_classes: int = MAX_SWITCH_CLASSES) -> None:
        super().__init__()
        self.num_classes = num_classes

    @staticmethod
    def _port_loads(
        active_flows: List[Flow],
    ) -> Tuple[Dict[int, Dict[Port, float]], Dict[Port, float]]:
        """Remaining bytes per (coflow, port) and aggregate per port."""
        per_coflow: Dict[int, Dict[Port, float]] = {}
        total: Dict[Port, float] = {}
        for flow in active_flows:
            remaining = flow.remaining_bytes
            loads = per_coflow.setdefault(flow.coflow_id, {})
            for port in ((0, flow.src), (1, flow.dst)):
                loads[port] = loads.get(port, 0.0) + remaining
                total[port] = total.get(port, 0.0) + remaining
        return per_coflow, total

    def _ordered_list(self, active_flows: List[Flow]) -> List[int]:
        """The primal–dual order, front (highest priority) to back."""
        per_coflow, total = self._port_loads(active_flows)
        unplaced = sorted(per_coflow)
        reverse_order: List[int] = []
        while unplaced:
            placed = None
            while total:
                # The binding constraint: most-loaded port, ties by port id.
                bottleneck = max(
                    total, key=lambda port: (total[port], -port[0], -port[1])
                )
                users = [
                    cid for cid in unplaced if bottleneck in per_coflow[cid]
                ]
                if users:
                    # Its largest contributor is served last (ties by id).
                    placed = max(
                        users,
                        key=lambda cid: (per_coflow[cid][bottleneck], -cid),
                    )
                    break
                # Float residue on a port whose users are all placed.
                del total[bottleneck]
            if placed is None:
                # Only fully drained coflows remain: id order, served last.
                reverse_order.extend(reversed(unplaced))
                break
            reverse_order.append(placed)
            unplaced.remove(placed)
            for port, volume in per_coflow[placed].items():
                total[port] -= volume
                if total[port] <= 0.0:
                    del total[port]
        reverse_order.reverse()
        return reverse_order

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        order = self._ordered_list(active_flows)
        coflow_class = {
            coflow_id: min(rank, self.num_classes - 1)
            for rank, coflow_id in enumerate(order)
        }
        return AllocationRequest(
            mode=AllocationMode.SPQ,
            priorities={
                flow.flow_id: coflow_class[flow.coflow_id]
                for flow in active_flows
            },
            num_classes=self.num_classes,
        )
