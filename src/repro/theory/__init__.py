"""Scheduling theory toolkit: Johnson's rule, FFS-MJ, COSP, exact solvers."""

from repro.theory.cosp import (
    CospJob,
    brute_force_best_order,
    permutation_completion_times,
    smallest_max_work_first,
    total_completion_time,
)
from repro.theory.exact import (
    MAX_BRUTE_FORCE_JOBS,
    Schedule,
    brute_force_best,
    brute_force_worst,
    schedule_by_order,
)
from repro.theory.examples import (
    FIG2_PAPER_STAGE_AWARE_AVERAGE,
    FIG2_PAPER_TBS_AVERAGE,
    FIG4_PAPER_BLOCKING_AVERAGE,
    FIG4_PAPER_LEAST_BLOCKING_AVERAGE,
    figure2_averages,
    figure2_schedules,
    figure2_stage_aware_instance,
    figure2_tbs_instance,
    figure4_averages,
    figure4_instance,
    figure4_schedules,
)
from repro.theory.ffs import (
    FfsCoflow,
    FfsInstance,
    FfsJob,
    FfsOperation,
    chain_instance,
    single_stage_instance,
)
from repro.theory.johnson import (
    TwoMachineJob,
    flow_shop_completion_times,
    flow_shop_makespan,
    johnson_order,
)
from repro.theory.lowerbound import (
    coflow_service_bound,
    job_critical_path_bound,
    job_lower_bound,
    job_port_bound,
    mean_optimality_gap,
    optimality_gaps,
)
from repro.theory.reduction import (
    job_to_ffs,
    jobs_to_ffs_instance,
    optimal_total_jct,
)

__all__ = [
    "CospJob",
    "FIG2_PAPER_STAGE_AWARE_AVERAGE",
    "FIG2_PAPER_TBS_AVERAGE",
    "FIG4_PAPER_BLOCKING_AVERAGE",
    "FIG4_PAPER_LEAST_BLOCKING_AVERAGE",
    "FfsCoflow",
    "FfsInstance",
    "FfsJob",
    "FfsOperation",
    "MAX_BRUTE_FORCE_JOBS",
    "Schedule",
    "TwoMachineJob",
    "brute_force_best",
    "brute_force_best_order",
    "brute_force_worst",
    "chain_instance",
    "coflow_service_bound",
    "figure2_averages",
    "figure2_schedules",
    "figure2_stage_aware_instance",
    "figure2_tbs_instance",
    "figure4_averages",
    "figure4_instance",
    "figure4_schedules",
    "flow_shop_completion_times",
    "flow_shop_makespan",
    "job_critical_path_bound",
    "job_to_ffs",
    "jobs_to_ffs_instance",
    "job_lower_bound",
    "job_port_bound",
    "johnson_order",
    "mean_optimality_gap",
    "optimality_gaps",
    "optimal_total_jct",
    "permutation_completion_times",
    "schedule_by_order",
    "single_stage_instance",
    "smallest_max_work_first",
    "total_completion_time",
]
