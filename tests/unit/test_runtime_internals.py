"""Unit tests for runtime internals: epochs, ticks, counters, results."""

import math

import pytest

from repro.errors import SimulationError
from repro.jobs import IdAllocator, single_stage_job
from repro.schedulers.pfs import PerFlowFairSharing
from repro.simulator.events import EventKind
from repro.simulator.runtime import CoflowSimulation, SimulationResult
from repro.simulator.topology.bigswitch import BigSwitchTopology

GB = 1e9


def make_sim(jobs):
    return CoflowSimulation(
        BigSwitchTopology(num_hosts=6, link_capacity=1.0 * GB),
        PerFlowFairSharing(),
        jobs,
    )


class TestJobBytesCounter:
    def test_counter_matches_ground_truth(self, ids):
        jobs = [
            single_stage_job([(0, 1, 0.5 * GB)], ids=ids),
            single_stage_job([(0, 2, 1.5 * GB)], arrival_time=0.2, ids=ids),
        ]
        sim = make_sim(jobs)
        sim.run()
        for job in jobs:
            assert sim._job_bytes[job.job_id] == pytest.approx(
                job.total_bytes, rel=1e-6
            )

    def test_counter_consistent_mid_run(self, ids):
        job = single_stage_job([(0, 1, 10.0 * GB)], ids=ids)
        sim = make_sim([job])
        sim.run(until=2.0)
        assert sim._job_bytes[job.job_id] == pytest.approx(
            job.bytes_sent, rel=1e-6
        )


class TestTimeTick:
    def test_tick_positive_and_scales_with_clock(self, ids):
        sim = make_sim([single_stage_job([(0, 1, 1.0)], ids=ids)])
        tick_at_zero = sim._time_tick()
        assert tick_at_zero > 0
        sim._now = 1e6
        assert sim._time_tick() > tick_at_zero
        assert sim._time_tick() >= math.ulp(1e6)

    def test_sub_resolution_flows_complete(self, ids):
        """A flow whose service time is below the clock's float resolution
        must still finish (regression test for the completion livelock)."""
        big = single_stage_job([(0, 1, 100.0 * GB)], ids=ids)
        # Tiny flow arriving late: remaining/rate << ulp(now).
        tiny = single_stage_job(
            [(2, 3, 2e-5 * GB)], arrival_time=50.0, ids=ids
        )
        sim = make_sim([big, tiny])
        result = sim.run()
        assert result.all_done
        assert result.events_processed < 10_000  # no livelock spin

    def test_time_never_goes_backwards(self, ids):
        sim = make_sim([single_stage_job([(0, 1, 1.0)], ids=ids)])
        sim._now = 5.0
        with pytest.raises(SimulationError):
            sim._advance_to(4.0)


class TestEpochInvalidation:
    def test_stale_completion_events_are_noops(self, ids):
        job = single_stage_job([(0, 1, 1.0 * GB)], ids=ids)
        sim = make_sim([job])
        # Schedule a bogus stale completion before running.
        sim._queue.push(0.5, EventKind.FLOW_COMPLETION, epoch=-1)
        result = sim.run()
        assert result.all_done
        assert job.completion_time() == pytest.approx(1.0, rel=1e-6)


class TestSimulationResult:
    def _completed_result(self, ids):
        job = single_stage_job([(0, 1, 1.0 * GB)], ids=ids)
        return make_sim([job]).run(), job

    def test_result_fields(self, ids):
        result, job = self._completed_result(ids)
        assert result.scheduler_name == "pfs"
        assert result.makespan == pytest.approx(1.0, rel=1e-6)
        assert result.all_done
        assert result.average_cct() == pytest.approx(1.0, rel=1e-6)

    def test_coflow_completion_times(self, ids):
        result, job = self._completed_result(ids)
        ccts = result.coflow_completion_times()
        assert set(ccts) == {c.coflow_id for c in job.coflows}

    def test_average_jct_requires_completions(self):
        result = SimulationResult(
            jobs=[], makespan=0.0, events_processed=0, reallocations=0,
            scheduler_name="x",
        )
        with pytest.raises(SimulationError):
            result.average_jct()


class TestMaxEventsGuard:
    def test_runaway_simulation_raises(self, ids):
        job = single_stage_job([(0, 1, 1000.0 * GB)], ids=ids)
        sim = CoflowSimulation(
            BigSwitchTopology(num_hosts=4, link_capacity=1.0 * GB),
            PerFlowFairSharing(),
            [job],
            max_events=1,
        )
        with pytest.raises(SimulationError):
            sim.run()
