"""Serialization of experiment results to plain dictionaries / JSON files.

Lets the benchmark harness (or a user's own sweep) persist what a run
measured — per-job JCTs, category breakdowns, improvement factors — so
figures can be re-rendered without re-simulating.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Union

from repro.errors import ReproError
from repro.metrics.improvement import per_category_improvement
from repro.metrics.jct import average_jct_by_category, jct_summary
from repro.simulator.runtime import SimulationResult
from repro.workloads.categories import category_of

if TYPE_CHECKING:  # import-only: keeps metrics below the experiments layer
    from repro.experiments.parallel import GridReport


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """A JSON-safe record of one simulation run."""
    jobs: List[Dict[str, Any]] = []
    for job in result.jobs:
        jobs.append(
            {
                "job_id": job.job_id,
                "arrival_time": job.arrival_time,
                "total_bytes": job.total_bytes,
                "category": category_of(job.total_bytes),
                "num_stages": job.num_stages,
                "num_coflows": len(job.coflows),
                "num_flows": sum(len(c.flows) for c in job.coflows),
                "jct": job.completion_time(),
            }
        )
    summary = jct_summary(result)
    return {
        "scheduler": result.scheduler_name,
        "makespan": result.makespan,
        "events_processed": result.events_processed,
        "reallocations": result.reallocations,
        "average_jct": summary.mean,
        "median_jct": summary.median,
        "p95_jct": summary.p95,
        "jct_by_category": {
            str(cat): value
            for cat, value in average_jct_by_category(result).items()
        },
        "jobs": jobs,
    }


def comparison_to_dict(
    results: Mapping[str, SimulationResult],
    reference: str = "gurita",
) -> Dict[str, Any]:
    """A JSON-safe record of a multi-policy comparison on one workload."""
    record: Dict[str, Any] = {
        "reference": reference,
        "results": {name: result_to_dict(r) for name, r in results.items()},
    }
    if reference in results:
        ref = results[reference]
        record["improvement_over_reference"] = {
            name: r.average_jct() / ref.average_jct()
            for name, r in results.items()
            if name != reference
        }
        record["category_improvement"] = {
            name: {
                str(cat): value
                for cat, value in per_category_improvement(r, ref).items()
            }
            for name, r in results.items()
            if name != reference
        }
    return record


def grid_report_to_dict(report: "GridReport") -> Dict[str, Any]:
    """A JSON-safe record of one parallel-engine grid run.

    Per-unit comparison records in submission order (``None`` for failed
    units), the structured failures report, and the engine's counters —
    everything a resumed or audited grid needs.
    """
    stats = report.stats
    return {
        "units": [unit.describe() for unit in report.units],
        "results": [
            comparison_to_dict(outcome.results) if outcome is not None else None
            for outcome in report.results
        ],
        "failures": [failure.to_dict() for failure in report.failures],
        "stats": {
            "total_units": stats.total_units,
            "completed": stats.completed,
            "cache_hits": stats.cache_hits,
            "retries": stats.retries,
            "failures": stats.failures,
            "workers": stats.workers,
            "cache_corrupt": stats.cache_corrupt,
            "worker_crashes": stats.worker_crashes,
            "abandoned": stats.abandoned,
            "unit_seconds": stats.unit_seconds,
            "elapsed_seconds": stats.elapsed_seconds,
            "worker_utilization": stats.worker_utilization,
        },
    }


def save_json(record: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Write a record as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True))
    return path


def load_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a record previously written by :func:`save_json`."""
    record = json.loads(Path(path).read_text())
    if not isinstance(record, dict):
        raise ReproError(
            f"{path}: expected a JSON object at the top level, "
            f"got {type(record).__name__}"
        )
    return record
