"""The hot-path registry: which functions ``simlint --perf`` protects.

PR 6's events/sec trajectory was bought by hand-applying hot-path idioms
(guarded logging, ``__slots__``, allocation-free loops, cached lookups)
to a specific set of functions.  This module names that set so the
SIM2xx rules can keep it fast:

* ``roots`` are the entry points of the hot loop.  Roots defined under
  ``repro.simulator`` must also carry the ``@hot_path`` marker from
  :mod:`repro.simulator.hotpath` next to their definition — the analyzer
  cross-checks decorator and registry and reports drift as SIM207.
  Roots outside the simulator package (the jobs layer cannot import it
  without a cycle) are registry-only.
* ``closure`` entries are the helpers those roots call.  They are
  *acknowledged hot*: the SIM2xx rules check them exactly like roots,
  but they carry no decorator.  A hot function calling a project
  function in *neither* set is a SIM207 finding — the closure can only
  grow deliberately, either by registering the callee here or by
  acknowledging a genuinely-cold call site with
  ``# simlint: hot-ok[reason]``.

Names are full dotted paths (``module.Class.method`` or
``module.function``) exactly as the PR-4 callgraph spells them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple


@dataclass(frozen=True)
class HotPathRegistry:
    """The analyzer half of the hot-path contract."""

    #: Hot-loop entry points.  Under ``decorated_prefix`` these must
    #: carry the ``@hot_path`` marker at the definition site.
    roots: Tuple[str, ...] = ()
    #: Helpers acknowledged as part of the hot closure (no decorator).
    closure: Tuple[str, ...] = ()
    #: Package prefix whose roots must be decorated in-source.
    decorated_prefix: str = "repro.simulator"

    def registered(self) -> FrozenSet[str]:
        """Every name the SIM2xx rules treat as hot."""
        return frozenset(self.roots) | frozenset(self.closure)


#: The shipped registry: the PR-6 hot set, traced from the profiling
#: recipe in docs/performance.md (allocation epoch: drain events, decide,
#: water-fill, advance flows).
REGISTRY = HotPathRegistry(
    roots=(
        # Water-filling — the top profile entry.
        "repro.simulator.bandwidth.maxmin.water_fill",
        "repro.simulator.bandwidth.maxmin.water_fill_membership",
        "repro.simulator.bandwidth.maxmin._water_fill_scalar",
        "repro.simulator.bandwidth.maxmin._water_fill_vectorized",
        # Incremental allocation engine epoch methods.
        "repro.simulator.bandwidth.engine.AllocationState.allocate",
        "repro.simulator.bandwidth.engine.AllocationState.add_flow",
        "repro.simulator.bandwidth.engine.AllocationState.remove_flow",
        "repro.simulator.bandwidth.engine.AllocationState.update_route",
        "repro.simulator.bandwidth.engine.AllocationState.set_capacity",
        # Event queue (both variants): every event passes through here.
        "repro.simulator.events.EventQueueBase.push",
        "repro.simulator.events.EventQueueBase.pop",
        "repro.simulator.events.EventQueueBase.has_event_within",
        "repro.simulator.events.EventQueue._store",
        "repro.simulator.events.EventQueue._take",
        "repro.simulator.events.EventQueue.peek_time",
        "repro.simulator.events.BucketEventQueue._store",
        "repro.simulator.events.BucketEventQueue._take",
        "repro.simulator.events.BucketEventQueue.peek_time",
        # Memoized ECMP route decisions.
        "repro.simulator.routing.ecmp.EcmpRouter.route_flow",
        # The runtime event loop proper (run() is setup/teardown).
        "repro.simulator.runtime.CoflowSimulation._step",
        "repro.simulator.runtime.CoflowSimulation._advance_to",
        "repro.simulator.runtime.CoflowSimulation._handle",
        "repro.simulator.runtime.CoflowSimulation._finish_ripe_flows",
        "repro.simulator.runtime.CoflowSimulation._reallocate",
        # Flow advancement lives in the jobs layer, which cannot import
        # repro.simulator.hotpath without a cycle: registry-only root.
        "repro.jobs.flow.Flow.advance",
    ),
    closure=(
        # maxmin helpers reached from the fill loops.
        "repro.simulator.bandwidth.maxmin.share_at_most",
        "repro.simulator.bandwidth.maxmin.allocate_maxmin",
        "repro.simulator.bandwidth.maxmin.LinkMembership.from_routes",
        "repro.simulator.bandwidth.maxmin.LinkMembership.add",
        "repro.simulator.bandwidth.maxmin.LinkMembership.remove",
        "repro.simulator.bandwidth.maxmin.LinkMembership.csr",
        # Priority-class allocators dispatched per epoch.
        "repro.simulator.bandwidth.spq.group_by_class",
        "repro.simulator.bandwidth.spq.allocate_spq",
        "repro.simulator.bandwidth.spq.allocate_spq_memberships",
        "repro.simulator.bandwidth.wrr.class_loads_from_counts",
        "repro.simulator.bandwidth.wrr.spq_waiting_times",
        "repro.simulator.bandwidth.wrr.wrr_weights",
        "repro.simulator.bandwidth.wrr.allocate_wrr",
        "repro.simulator.bandwidth.wrr.allocate_wrr_memberships",
        "repro.simulator.bandwidth.request.AllocationRequest.params_key",
        "repro.simulator.bandwidth.request.dispatch_allocation",
        # Engine internals behind the epoch methods.
        "repro.simulator.bandwidth.engine.AllocationState._unchanged_priorities",
        "repro.simulator.bandwidth.engine.AllocationState._effective_class",
        "repro.simulator.bandwidth.engine.AllocationState._rebuild_class_members",
        "repro.simulator.bandwidth.engine.AllocationState._apply_priority_deltas",
        "repro.simulator.bandwidth.engine.AllocationState._compute",
        # Queue hooks on the base class (virtual dispatch targets).
        "repro.simulator.events.EventQueueBase._store",
        "repro.simulator.events.EventQueueBase._take",
        "repro.simulator.events.EventQueueBase.peek_time",
        # Blessed time comparison helpers (called per event batch).
        "repro.simulator.timecmp.time_resolution",
        "repro.simulator.timecmp.times_close",
        "repro.simulator.timecmp.time_before",
        # ECMP helpers behind route_flow (and the outage-path liveness
        # probe, hot while faults are in flight).
        "repro.simulator.routing.ecmp.flow_hash",
        "repro.simulator.routing.ecmp.EcmpRouter._num_choices",
        "repro.simulator.routing.ecmp.EcmpRouter.alive_routes",
        "repro.simulator.routing.ecmp.EcmpRouter.route_is_alive",
        # Runtime helpers dispatched from _handle.
        "repro.simulator.runtime.CoflowSimulation._release_coflow",
        "repro.simulator.runtime.CoflowSimulation._handle_scheduler_update",
        "repro.simulator.runtime.CoflowSimulation._time_tick",
        # Jobs-layer helpers on the event path (registry-only, see above).
        "repro.jobs.coflow.Coflow.release",
    ),
)
