"""JSON suppression baseline for incremental adoption of deep findings.

A baseline is a committed snapshot of the findings a tree is *known* to
carry: ``--baseline FILE`` subtracts them from the current run so CI only
fails on regressions, and ``--write-baseline FILE`` refreshes the
snapshot after an intentional change.

Entries match on ``(path, code, message)`` with a count — deliberately
*not* on line numbers, so unrelated edits above a finding do not churn
the baseline.  Matching is two-sided:

* a finding with no remaining baseline budget is **new** (fails CI);
* a baseline entry with no matching finding is **stale** — the baseline
  has *drifted* from the tree and must be re-written (also fails CI, so
  fixed findings cannot silently keep their suppression slots).

The file format is stable JSON (sorted keys, sorted entries) so diffs
are reviewable and identical across filesystems and Python versions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from tools.simlint.findings import Finding

BASELINE_VERSION = 1

#: The committed deep baseline consumed by CI and `make deep-lint`.
DEFAULT_BASELINE_PATH = "tools/simlint/deep_baseline.json"

Key = Tuple[str, str, str]  #: (path, code, message)


class BaselineError(Exception):
    """Unreadable, unparsable, or wrong-version baseline file."""


@dataclass(frozen=True)
class StaleEntry:
    """A baseline entry (or part of its count) no longer observed."""

    path: str
    code: str
    message: str
    count: int

    def render(self) -> str:
        extra = f" (x{self.count})" if self.count > 1 else ""
        return f"{self.path}: {self.code} {self.message}{extra} [stale baseline entry]"


@dataclass
class BaselineResult:
    """Outcome of subtracting a baseline from a finding list."""

    new_findings: List[Finding]
    matched: int
    stale: List[StaleEntry]

    @property
    def clean(self) -> bool:
        return not self.new_findings and not self.stale


def _key(finding: Finding) -> Key:
    return (finding.path, finding.code, finding.message)


def baseline_from_findings(findings: List[Finding]) -> Dict[str, object]:
    """A baseline document covering exactly ``findings``."""
    counts: Dict[Key, int] = {}
    lines: Dict[Key, int] = {}
    for finding in findings:
        key = _key(finding)
        counts[key] = counts.get(key, 0) + 1
        lines.setdefault(key, finding.line)
    entries = [
        {
            "path": path,
            "code": code,
            "message": message,
            "count": counts[(path, code, message)],
            # informational only; never matched against
            "first_seen_line": lines[(path, code, message)],
        }
        for (path, code, message) in sorted(counts)
    ]
    return {"version": BASELINE_VERSION, "entries": entries}


def save_baseline(document: Dict[str, object], path: Union[str, Path]) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def load_baseline(path: Union[str, Path]) -> Dict[str, object]:
    target = Path(path)
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {target} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise BaselineError(f"baseline {target} must be a JSON object")
    if document.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {target} has version {document.get('version')!r}; "
            f"this simlint expects {BASELINE_VERSION} — re-create it with "
            "--write-baseline"
        )
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {target} has no 'entries' list")
    for entry in entries:
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(field), str) for field in ("path", "code", "message")
        ):
            raise BaselineError(
                f"baseline {target} has a malformed entry: {entry!r}"
            )
    return document


def apply_baseline(
    findings: List[Finding], document: Dict[str, object]
) -> BaselineResult:
    """Subtract the baseline: what is new, what matched, what is stale."""
    budget: Dict[Key, int] = {}
    for entry in document["entries"]:  # type: ignore[index]
        key = (entry["path"], entry["code"], entry["message"])
        count = entry.get("count", 1)
        budget[key] = budget.get(key, 0) + max(1, int(count))

    new_findings: List[Finding] = []
    matched = 0
    for finding in findings:
        key = _key(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            new_findings.append(finding)

    stale = [
        StaleEntry(path=path, code=code, message=message, count=remaining)
        for (path, code, message), remaining in sorted(budget.items())
        if remaining > 0
    ]
    return BaselineResult(new_findings=new_findings, matched=matched, stale=stale)
