"""simlint: simulator-aware static analysis for the Gurita reproduction.

Usage (CLI)::

    python -m tools.simlint src              # human output, exit 1 on findings
    python -m tools.simlint src --json       # machine-readable
    python -m tools.simlint --list-rules     # rule catalog

Usage (API)::

    from tools.simlint import lint_source, lint_paths
    report = lint_paths(["src"])
    assert report.clean, report.render_human()

The rule catalog (SIM001–SIM006) and how to extend it are documented in
``docs/static-analysis.md``.
"""

from tools.simlint.findings import Finding, PragmaIndex
from tools.simlint.rules import ALL_RULES, RULES_BY_CODE, LintContext, Rule
from tools.simlint.runner import (
    LintReport,
    SimlintUsageError,
    lint_paths,
    lint_source,
    select_rules,
)

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "LintReport",
    "PragmaIndex",
    "RULES_BY_CODE",
    "Rule",
    "SimlintUsageError",
    "lint_paths",
    "lint_source",
    "select_rules",
]
