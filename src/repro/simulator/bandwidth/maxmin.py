"""Max-min fair rate allocation by progressive filling.

This is the simulator's model of TCP sharing (the paper implements "a rate
limiter that behaves like TCP"): flows traversing a bottleneck link share it
equally, and no flow can increase its rate without decreasing that of a flow
with an equal or smaller rate (Bertsekas & Gallager's water-filling).

The implementation is vectorised over links with numpy: each round finds
the bottleneck fair share, freezes every flow crossing a bottleneck link at
that rate, and subtracts the allocation — the hot path of the whole
simulator.

The membership structures (which flows cross which link) are factored into
:class:`LinkMembership` so the incremental engine
(:mod:`repro.simulator.bandwidth.engine`) can keep them alive across
allocation epochs and mutate them by flow add/remove deltas instead of
rebuilding them on every call.  Every from-scratch construction is counted
(see :func:`membership_rebuilds`) — the engine's acceptance metric is built
on exactly this counter.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np
import numpy.typing as npt

_EPSILON = 1e-9

#: A flow's route: the directed link ids it traverses.
Route = Tuple[int, ...]

#: Full from-scratch membership constructions (non-empty flow sets only);
#: the legacy path pays one per water-fill, the engine only on invalidation.
_membership_rebuilds = 0


def membership_rebuilds() -> int:
    """How many times link-membership structures were built from scratch."""
    return _membership_rebuilds


def reset_membership_rebuilds() -> None:
    """Reset the rebuild counter (benchmarks call this between runs)."""
    global _membership_rebuilds
    _membership_rebuilds = 0


class LinkMembership:
    """Per-link flow membership: who crosses each link, and how many.

    Holds exactly the structures the water-filling loop needs — a route per
    flow, an insertion-ordered member table per link, and a per-link count
    vector — and supports O(|route|) add/remove so the incremental engine
    can maintain one instance across allocation epochs.

    ``link_members`` maps link id -> insertion-ordered dict used as an
    ordered set (values are ``None``); deterministic iteration order is what
    keeps engine allocations reproducible run to run.
    """

    __slots__ = ("num_links", "routes", "counts", "link_members")

    def __init__(self, num_links: int) -> None:
        self.num_links = num_links
        self.routes: Dict[int, Route] = {}
        self.counts: npt.NDArray[np.int64] = np.zeros(num_links, dtype=np.int64)
        self.link_members: Dict[int, Dict[int, None]] = {}

    @classmethod
    def from_routes(
        cls, flow_routes: Mapping[int, Route], num_links: int
    ) -> "LinkMembership":
        """Build membership from scratch (counted as a full rebuild)."""
        global _membership_rebuilds
        membership = cls(num_links)
        for flow_id, route in flow_routes.items():
            membership.add(flow_id, route)
        if flow_routes:
            _membership_rebuilds += 1
        return membership

    def add(self, flow_id: int, route: Route) -> None:
        if flow_id in self.routes:
            raise ValueError(f"flow {flow_id} already in membership")
        self.routes[flow_id] = route
        for link_id in route:
            self.counts[link_id] += 1
            self.link_members.setdefault(link_id, {})[flow_id] = None

    def remove(self, flow_id: int) -> None:
        route = self.routes.pop(flow_id)
        for link_id in route:
            self.counts[link_id] -= 1
            members = self.link_members[link_id]
            del members[flow_id]
            if not members:
                del self.link_members[link_id]

    def __len__(self) -> int:
        return len(self.routes)

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self.routes


def water_fill_membership(
    membership: LinkMembership,
    residual: npt.NDArray[np.float64],
) -> Dict[int, float]:
    """Max-min fair rates for ``membership`` within ``residual`` capacity.

    The core of :func:`water_fill`, operating on prebuilt membership
    structures.  ``membership`` is *not* mutated (the per-link counts are
    copied); ``residual`` *is* mutated — allocated bandwidth is subtracted
    and tiny negative drift is clamped — so callers can layer allocations,
    e.g. one priority class after another.
    """
    rates: Dict[int, float] = {}
    if not membership.routes:
        return rates

    res = residual
    routes = membership.routes
    counts = membership.counts.copy()
    frozen: Dict[int, None] = {}
    remaining = len(routes)
    while remaining > 0:
        with np.errstate(divide="ignore", invalid="ignore"):
            shares = np.where(
                counts > 0, np.maximum(res, 0.0) / np.maximum(counts, 1), np.inf
            )
        bottleneck_share = float(shares.min())
        if not np.isfinite(bottleneck_share):
            # Remaining flows traverse no contended link (empty routes, or
            # inconsistent membership) — they cannot be rate-limited here.
            for flow_id in routes:
                if flow_id not in frozen:
                    rates[flow_id] = 0.0
            break
        bottleneck_links = np.flatnonzero(shares <= bottleneck_share + _EPSILON)
        newly_frozen: List[int] = []
        for link_id in bottleneck_links:
            for flow_id in membership.link_members.get(int(link_id), ()):
                if flow_id not in frozen:
                    frozen[flow_id] = None
                    newly_frozen.append(flow_id)
        if not newly_frozen:
            # Defensive: should be impossible, but never spin forever.
            for flow_id in routes:
                if flow_id not in frozen:
                    rates[flow_id] = bottleneck_share
            break
        for flow_id in newly_frozen:
            rates[flow_id] = bottleneck_share
            for link_id in routes[flow_id]:
                res[link_id] -= bottleneck_share
                counts[link_id] -= 1
        remaining -= len(newly_frozen)

    # Clean up float drift: clamp tiny negative residuals to zero.
    np.clip(res, 0.0, None, out=res)
    return rates


def water_fill(
    flow_routes: Mapping[int, Route],
    residual: Union[npt.NDArray[np.float64], List[float]],
) -> Dict[int, float]:
    """Max-min fair rates for ``flow_routes`` within ``residual`` capacity.

    ``residual`` is indexed by link id and is **mutated** (allocated
    bandwidth is subtracted) so callers can layer allocations, e.g. one
    priority class after another.  Pass a ``numpy.ndarray`` to avoid a
    copy; plain lists are converted (and mutated via slice write-back).

    Builds the membership structures from scratch on every call — the
    incremental engine keeps a persistent :class:`LinkMembership` and calls
    :func:`water_fill_membership` directly instead.

    Returns a rate (bytes/second) for every flow in ``flow_routes``.
    """
    if not flow_routes:
        return {}

    if isinstance(residual, np.ndarray):
        res = residual
    else:
        res = np.asarray(residual, dtype=np.float64)
    membership = LinkMembership.from_routes(flow_routes, len(res))
    rates = water_fill_membership(membership, res)
    if not isinstance(residual, np.ndarray):
        residual[:] = res.tolist()
    return rates


def allocate_maxmin(
    flow_routes: Mapping[int, Route],
    capacities: Sequence[float],
) -> Dict[int, float]:
    """Max-min fair rates against fresh link capacities (non-mutating)."""
    return water_fill(flow_routes, np.array(capacities, dtype=float))
