"""Per-Flow Fair Sharing (PFS) — the paper's baseline.

PFS divides each link's capacity equally among the flows traversing it
(max-min fair, i.e. ideal TCP).  It is coflow- and job-agnostic: no
priorities, no coordination.
"""

from __future__ import annotations

from typing import List

from repro.jobs.flow import Flow
from repro.schedulers.base import SchedulerPolicy
from repro.simulator.bandwidth.request import AllocationMode, AllocationRequest


class PerFlowFairSharing(SchedulerPolicy):
    """The PFS baseline: plain max-min fair sharing, no priorities."""

    name = "pfs"

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        return AllocationRequest(mode=AllocationMode.MAXMIN)
