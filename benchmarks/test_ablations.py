"""Ablations of Gurita's design choices (DESIGN.md §6).

One bench per knob the design calls out: the rule-4 critical-path bonus,
starvation mitigation (WRR vs raw SPQ), the number of priority queues,
the head-receiver update interval δ, the demotion-threshold spacing, and
the WRR weight reading.  Each prints average JCT per variant on a fixed
trace-driven scenario.
"""

from _util import bench_jobs

from repro.experiments.ablations import (
    critical_path_variants,
    queue_count_variants,
    run_variants,
    starvation_variants,
    summarize,
    threshold_variants,
    update_interval_variants,
    wrr_weight_mode_variants,
)
from repro.experiments.common import ScenarioConfig


def scenario():
    return ScenarioConfig(name="ablation", num_jobs=bench_jobs(40), seed=13)


def _report(title, results):
    print(f"\n{title}")
    for name, jct in summarize(results):
        print(f"  {name:16s} avg JCT {jct:8.4f}s")


def test_ablation_critical_path(run_once):
    results = run_once(run_variants, scenario(), critical_path_variants())
    _report("ABLATION rule-4 critical-path bonus lambda:", results)
    jcts = {name: r.average_jct() for name, r in results.items()}
    # The bonus is a marginal nudge: it must not blow up the schedule.
    assert max(jcts.values()) < 1.5 * min(jcts.values())


def test_ablation_starvation(run_once):
    results = run_once(run_variants, scenario(), starvation_variants())
    _report("ABLATION starvation mitigation (WRR emulation vs raw SPQ):", results)
    assert set(results) == {"wrr", "spq"}
    for result in results.values():
        assert result.all_done


def test_ablation_queue_count(run_once):
    results = run_once(run_variants, scenario(), queue_count_variants())
    _report("ABLATION number of priority queues K:", results)
    jcts = {name: r.average_jct() for name, r in results.items()}
    # More queues means finer demotion: K=4 (the paper's pick) should not
    # lose badly to K=2.
    assert jcts["K=4"] <= jcts["K=2"] * 1.25


def test_ablation_update_interval(run_once):
    results = run_once(run_variants, scenario(), update_interval_variants())
    _report("ABLATION head-receiver update interval delta:", results)
    jcts = summarize(results)
    # Coarser coordination degrades gracefully, not catastrophically.
    assert jcts[-1][1] < 2.0 * jcts[0][1]


def test_ablation_thresholds(run_once):
    results = run_once(run_variants, scenario(), threshold_variants())
    _report("ABLATION demotion-threshold exponential base:", results)
    assert all(result.all_done for result in results.values())


def test_ablation_wrr_weight_mode(run_once):
    results = run_once(run_variants, scenario(), wrr_weight_mode_variants())
    _report(
        "ABLATION WRR weights: inverse-wait (ours) vs literal paper formula:",
        results,
    )
    assert all(result.all_done for result in results.values())
