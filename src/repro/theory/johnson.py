"""Johnson's rule for two-machine flow shops (Johnson 1954).

The classic result behind the paper's design rules (§IV.A): in a
two-machine flow shop, total makespan is minimised by running jobs with
``a_i <= b_i`` first in increasing ``a_i``, then the rest in decreasing
``b_i`` (``a_i``/``b_i`` being processing times on machines 1/2).  The
qualitative lessons — keep machines busy, avoid blocking, avoid tardiness
— are what Gurita's rules adapt to coflows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class TwoMachineJob:
    """A job with processing times on two sequential machines."""

    job_id: int
    machine1: float
    machine2: float

    def __post_init__(self) -> None:
        if self.machine1 < 0 or self.machine2 < 0:
            raise ValueError(f"job {self.job_id}: processing times must be >= 0")


def johnson_order(jobs: Sequence[TwoMachineJob]) -> List[TwoMachineJob]:
    """Johnson's optimal sequence for the two-machine flow shop."""
    first = sorted(
        (j for j in jobs if j.machine1 <= j.machine2),
        key=lambda j: (j.machine1, j.job_id),
    )
    last = sorted(
        (j for j in jobs if j.machine1 > j.machine2),
        key=lambda j: (-j.machine2, j.job_id),
    )
    return first + last


def flow_shop_makespan(sequence: Sequence[TwoMachineJob]) -> float:
    """Makespan of a two-machine flow shop under the given sequence."""
    machine1_free = 0.0
    machine2_free = 0.0
    for job in sequence:
        machine1_free += job.machine1
        machine2_free = max(machine2_free, machine1_free) + job.machine2
    return machine2_free


def flow_shop_completion_times(
    sequence: Sequence[TwoMachineJob],
) -> List[Tuple[int, float]]:
    """(job_id, completion time) per job under the given sequence."""
    machine1_free = 0.0
    machine2_free = 0.0
    out: List[Tuple[int, float]] = []
    for job in sequence:
        machine1_free += job.machine1
        machine2_free = max(machine2_free, machine1_free) + job.machine2
        out.append((job.job_id, machine2_free))
    return out
