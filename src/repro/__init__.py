"""Gurita reproduction: multi-stage coflow scheduling for datacenters.

Reproduces *"A Near Optimal Multi-Faced Job Scheduler for Datacenter
Workloads"* (ICDCS 2019): the Gurita Least-Blocking-Effect-First scheduler,
its GuritaPlus oracle, the comparators (PFS, Baraat, Stream, Aalo), a
flow-level datacenter network simulator (FatTree + ECMP + SPQ/WRR), and
the paper's workloads and experiments.

Quickstart::

    from repro import (FatTreeTopology, GuritaScheduler, simulate,
                       synthesize_workload)

    topology = FatTreeTopology(k=8)
    jobs = synthesize_workload(num_jobs=50, num_hosts=topology.num_hosts,
                               structure="fb-tao", seed=1)
    result = simulate(topology, GuritaScheduler(), jobs)
    print(result.average_jct())
"""

from repro.core import GuritaConfig, GuritaPlusScheduler, GuritaScheduler
from repro.jobs import (
    Coflow,
    CoflowDag,
    Flow,
    IdAllocator,
    Job,
    JobBuilder,
    chain_job,
    single_stage_job,
)
from repro.schedulers import (
    AaloScheduler,
    BaraatScheduler,
    PerFlowFairSharing,
    SchedulerPolicy,
    StreamScheduler,
)
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.simulator import (
    TEN_GBPS,
    BigSwitchTopology,
    CoflowSimulation,
    FatTreeTopology,
    SimulationResult,
    simulate,
)
from repro.workloads import synthesize_workload

__version__ = "1.0.0"

__all__ = [
    "AaloScheduler",
    "BaraatScheduler",
    "BigSwitchTopology",
    "Coflow",
    "CoflowDag",
    "CoflowSimulation",
    "FatTreeTopology",
    "Flow",
    "GuritaConfig",
    "GuritaPlusScheduler",
    "GuritaScheduler",
    "IdAllocator",
    "Job",
    "JobBuilder",
    "PerFlowFairSharing",
    "SchedulerPolicy",
    "SimulationResult",
    "StreamScheduler",
    "TEN_GBPS",
    "available_schedulers",
    "chain_job",
    "make_scheduler",
    "simulate",
    "single_stage_job",
    "synthesize_workload",
]
