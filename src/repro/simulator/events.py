"""Deterministic event queue for the flow-level simulator.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events at the same timestamp pop
in the order they were scheduled.  ``priority`` lets structurally different
events at the same instant be ordered (e.g. arrivals before reallocation).

The queue also enforces causality at the source: a **monotonic watermark**
tracks the latest popped timestamp, and scheduling an event earlier than
the watermark (beyond float time resolution) raises
:class:`~repro.errors.SimulationError` immediately — at the buggy ``push``
call site — instead of surfacing later as a backwards clock jump.

Every float-time comparison — the push-side watermark guard *and* the
batch-horizon test :meth:`EventQueue.has_event_within` — goes through the
blessed helpers of :mod:`repro.simulator.timecmp`, so the tolerance that
lets same-instant events batch together is exactly the tolerance the
watermark applies to late pushes (they used to disagree: raw ``<=`` on the
horizon could split a same-timestamp batch straddling the watermark into
two batches, each paying a reallocation).

Two storage strategies implement the same total order:

* :class:`EventQueue` — the classic binary heap; the default.
* :class:`BucketEventQueue` — a calendar-style two-level structure that
  buckets events sharing one exact timestamp (bursty arrivals, fault
  timelines, same-instant completion batches) under a single heap entry;
  selected via ``CoflowSimulation(..., event_queue="bucket")``.

Both order events by ``(time, kind, seq)`` and are drop-in equivalent —
the parity suite asserts bit-identical simulation results.
"""

from __future__ import annotations

import enum
import heapq
import math
from bisect import insort
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simulator.hotpath import hot_path
from repro.simulator.timecmp import time_before, time_resolution, times_close
from repro.simulator.units import Seconds


class EventKind(enum.IntEnum):
    """Kinds of events, in intra-timestamp processing order.

    Values are append-only: fault kinds were added after the original
    three, keeping every zero-fault event ordering byte-identical to
    builds that predate fault injection.
    """

    JOB_ARRIVAL = 0
    FLOW_COMPLETION = 1
    SCHEDULER_UPDATE = 2
    FAULT = 3
    REPAIR = 4


class Event:
    """A scheduled simulator event.

    A ``__slots__`` class (historically a frozen dataclass): one Event is
    allocated per scheduled occurrence, so construction cost and memory
    footprint sit directly on the event-loop hot path.  Treat instances as
    immutable — the queue's ordering invariants assume ``time``/``kind``/
    ``seq`` never change after scheduling.
    """

    __slots__ = ("time", "kind", "seq", "payload", "epoch")

    def __init__(
        self,
        time: Seconds,
        kind: EventKind,
        seq: int,
        payload: Any = None,
        epoch: int = 0,
    ) -> None:
        self.time = time
        self.kind = kind
        self.seq = seq
        self.payload = payload
        #: Allocation epoch at scheduling time; stale completion events
        #: (scheduled under an old rate assignment) are skipped on pop.
        self.epoch = epoch

    def __repr__(self) -> str:
        return (
            f"Event(time={self.time!r}, kind={self.kind!r}, seq={self.seq!r}, "
            f"payload={self.payload!r}, epoch={self.epoch!r})"
        )


class EventQueueBase:
    """Shared watermark discipline and comparison tolerance.

    Subclasses provide the storage (:meth:`_store`, :meth:`_take`,
    :meth:`peek_time`); this base owns the causality guard, the blessed
    float-time comparisons, and the size bookkeeping — so every variant
    enforces exactly the same semantics.
    """

    def __init__(self) -> None:
        #: Next sequence number; a plain int (not itertools.count) so the
        #: counter can be captured and restored by checkpoint snapshots.
        self._next_seq = 0
        self._size = 0
        #: Latest popped timestamp; pushes may not schedule behind it.
        self._watermark = -math.inf

    # -- storage hooks -------------------------------------------------
    def _store(self, event: Event) -> None:
        raise NotImplementedError

    def _take(self) -> Event:
        raise NotImplementedError

    def peek_time(self) -> Optional[Seconds]:
        """Timestamp of the earliest event, or None if empty."""
        raise NotImplementedError

    def _storage_state(self) -> Dict[str, Any]:
        """Subclass storage payload for :meth:`snapshot_state`."""
        raise NotImplementedError

    def _restore_storage(self, state: Dict[str, Any]) -> None:
        """Subclass inverse of :meth:`_storage_state`."""
        raise NotImplementedError

    # -- checkpoint support --------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Capture the complete queue state for a checkpoint.

        The payload is picklable (plain containers + :class:`Event`
        objects) and round-trips through :meth:`restore_state` to a
        queue that pops the exact same ``(time, kind, seq)`` order —
        including the monotonic watermark and the sequence counter, so
        events scheduled *after* a restore continue the original
        numbering bit-for-bit.
        """
        return {
            "variant": type(self).__name__,
            "next_seq": self._next_seq,
            "size": self._size,
            "watermark": self._watermark,
            "storage": self._storage_state(),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot_state` (same concrete class only)."""
        if state.get("variant") != type(self).__name__:
            raise SimulationError(
                f"queue snapshot is for {state.get('variant')!r}, "
                f"cannot restore into {type(self).__name__!r}"
            )
        self._next_seq = state["next_seq"]
        self._size = state["size"]
        self._watermark = state["watermark"]
        self._restore_storage(state["storage"])

    # -- shared semantics ----------------------------------------------
    @hot_path
    def push(
        self,
        time: Seconds,
        kind: EventKind,
        payload: Any = None,
        epoch: int = 0,
    ) -> Event:
        """Schedule an event; returns the Event object.

        Raises :class:`SimulationError` for negative timestamps and for
        *past-time scheduling*: a timestamp behind the pop watermark by
        more than float time resolution can never be processed causally.
        """
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        if time_before(time, self._watermark):
            raise SimulationError(
                f"cannot schedule event at t={time!r} behind the pop "
                f"watermark t={self._watermark!r}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time=time, kind=kind, seq=seq, payload=payload, epoch=epoch)
        self._store(event)
        self._size += 1
        return event

    @hot_path
    def pop(self) -> Event:
        """Remove and return the earliest event; advances the watermark."""
        if self._size == 0:
            raise SimulationError("pop from empty event queue")
        self._size -= 1
        event = self._take()
        if event.time > self._watermark:
            self._watermark = event.time
        return event

    @hot_path
    def has_event_within(self, horizon: Seconds) -> bool:
        """Is the next event at or before ``horizon``, within resolution?

        This is the batch-draining test: an event within float time
        resolution of the horizon denotes the *same simulation instant*
        and must join the batch — the same tolerance :meth:`push` grants
        to schedules straddling the watermark (raw ``<=`` here used to
        split such batches).
        """
        next_time = self.peek_time()
        if next_time is None:
            return False
        return next_time <= horizon or times_close(next_time, horizon)

    @property
    def watermark(self) -> Seconds:
        """Latest popped timestamp (``-inf`` before the first pop)."""
        return self._watermark

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0


class EventQueue(EventQueueBase):
    """Min-heap of events with deterministic total ordering (the default)."""

    def __init__(self) -> None:
        super().__init__()
        self._heap: List[Tuple[float, int, int, Event]] = []

    @hot_path
    def _store(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, int(event.kind), event.seq, event))

    @hot_path
    def _take(self) -> Event:
        return heapq.heappop(self._heap)[3]

    @hot_path
    def peek_time(self) -> Optional[Seconds]:
        """Timestamp of the earliest event, or None if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def _storage_state(self) -> Dict[str, Any]:
        # A heap list is already a deterministic structure; copy it so
        # later pushes on the live queue don't mutate the snapshot.
        return {"heap": list(self._heap)}

    def _restore_storage(self, state: Dict[str, Any]) -> None:
        self._heap = list(state["heap"])


class BucketEventQueue(EventQueueBase):
    """Calendar-style queue bucketing events that share one timestamp.

    Workloads with time-clustered batches — bursty arrivals dropping tens
    of jobs on one instant, prescheduled fault timelines, same-epoch
    completion bursts — put many events on *exactly* equal float
    timestamps.  The binary heap pays ``O(log n)`` per event over the
    whole backlog; here each distinct timestamp is one heap entry and its
    events live in an insertion-sorted bucket, so same-instant batches
    push and drain in near-constant time per event.

    The total order is identical to :class:`EventQueue` — time first,
    then ``(kind, seq)`` inside a bucket — which the differential parity
    suite asserts end-to-end.
    """

    def __init__(self) -> None:
        super().__init__()
        self._times: List[float] = []  # heap of distinct timestamps
        #: per-timestamp bucket: insertion-sorted (kind, seq, event) rows,
        #: drained via a cursor instead of repeated list.pop(0)
        self._buckets: Dict[float, List[Tuple[int, int, Event]]] = {}
        self._cursors: Dict[float, int] = {}

    @hot_path
    def _store(self, event: Event) -> None:
        bucket = self._buckets.get(event.time)
        row = (int(event.kind), event.seq, event)
        if bucket is None:
            self._buckets[event.time] = [row]
            self._cursors[event.time] = 0
            heapq.heappush(self._times, event.time)
        else:
            # Keep (kind, seq) order among the *remaining* rows; rows
            # before the cursor are already popped and stay untouched.
            insort(bucket, row, lo=self._cursors[event.time])

    @hot_path
    def _take(self) -> Event:
        time = self._times[0]
        bucket = self._buckets[time]
        cursor = self._cursors[time]
        event = bucket[cursor][2]
        cursor += 1
        if cursor >= len(bucket):
            heapq.heappop(self._times)
            del self._buckets[time]
            del self._cursors[time]
        else:
            self._cursors[time] = cursor
        return event

    @hot_path
    def peek_time(self) -> Optional[Seconds]:
        """Timestamp of the earliest event, or None if empty."""
        if not self._times:
            return None
        return self._times[0]

    def _storage_state(self) -> Dict[str, Any]:
        # Shallow-copy each level: the timestamp heap, every bucket list,
        # and the drain cursors.  Events themselves are shared (treated
        # as immutable by the queue contract).
        return {
            "times": list(self._times),
            "buckets": {time: list(rows) for time, rows in self._buckets.items()},
            "cursors": dict(self._cursors),
        }

    def _restore_storage(self, state: Dict[str, Any]) -> None:
        self._times = list(state["times"])
        self._buckets = {time: list(rows) for time, rows in state["buckets"].items()}
        self._cursors = dict(state["cursors"])


#: Queue variants selectable by configuration; "heap" is the default.
EVENT_QUEUE_VARIANTS = ("heap", "bucket")


def make_event_queue(variant: str = "heap") -> EventQueueBase:
    """Build an event queue by variant name ("heap" or "bucket")."""
    if variant == "heap":
        return EventQueue()
    if variant == "bucket":
        return BucketEventQueue()
    raise SimulationError(
        f"unknown event queue variant {variant!r}; "
        f"expected one of {EVENT_QUEUE_VARIANTS}"
    )
