"""Performance-trajectory harness: pinned workloads, committed numbers.

Measures wall time and events/second of the ``gurita`` scheduler on four
pinned workloads (two scalability points and the figure-5/6 shapes) and
writes a ``BENCH_*.json`` artifact that carries BOTH the measurement and
the frozen pre-optimization baseline, so the speedup trajectory is
reviewable in the diff of a single committed file.

Artifact schema (``perf-trajectory/v1``) — see docs/performance.md::

    {
      "schema": "perf-trajectory/v1",
      "bench_id": "BENCH_6",
      "baseline": {"captured_on": ..., "workloads": {<name>: <metrics>}},
      "current":  {"captured_on": ..., "workloads": {<name>: <metrics>}},
      "speedup":  {<name>: <current evps / baseline evps>}
    }

    <metrics> = {"events": int, "wall_seconds": float,
                 "events_per_sec": float, "jct_fingerprint": str}

The ``jct_fingerprint`` (blake2b-16 over the sorted JCT map, the
``fingerprint_figures.py`` scheme) witnesses that the measured run is
*bit-identical* to the baseline behaviour — a perf number attached to
different simulation output would be meaningless.

Modes::

    python benchmarks/perf_trajectory.py --out            # next BENCH_<n+1>
    python benchmarks/perf_trajectory.py --out BENCH_9.json
    python benchmarks/perf_trajectory.py --check \
        --workloads scal-k4            # CI smoke vs the latest BENCH_*

With no value, ``--check`` discovers the highest-numbered committed
``BENCH_<n>.json`` in the repository root and ``--out`` writes the next
number in the sequence — callers never hardcode the current artifact.

``--check`` re-measures the selected workloads and fails (exit 1) when
events/sec regresses more than ``--tolerance`` (default 0.2, overridable
via ``REPRO_PERF_TOLERANCE``) against the committed artifact's "current"
numbers, or when a fingerprint diverges (fingerprints get no tolerance).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import os
import re
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.experiments.common import ScenarioConfig, build_jobs, build_topology
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate

SCHEMA = "perf-trajectory/v1"

#: Trajectory artifacts live in the repo root as ``BENCH_<n>.json``.
_BENCH_NAME_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: argparse sentinels for "discover the artifact yourself".
_LATEST = "__latest__"
_NEXT = "__next__"


def bench_artifacts(root: str = ".") -> List[Path]:
    """Committed ``BENCH_<n>.json`` files, sorted by trajectory number."""
    found = [
        (int(match.group(1)), path)
        for path in Path(root).glob("BENCH_*.json")
        if (match := _BENCH_NAME_RE.match(path.name)) is not None
    ]
    return [path for _, path in sorted(found)]


def latest_bench(root: str = ".") -> Optional[Path]:
    """The highest-numbered committed artifact, or None."""
    artifacts = bench_artifacts(root)
    return artifacts[-1] if artifacts else None


def next_bench_path(root: str = ".") -> Path:
    """The next artifact name in the trajectory sequence."""
    latest = latest_bench(root)
    if latest is None:
        return Path(root) / "BENCH_1.json"
    number = int(_BENCH_NAME_RE.match(latest.name).group(1))  # type: ignore[union-attr]
    return latest.with_name(f"BENCH_{number + 1}.json")

#: Pinned workloads.  Names are harness-level ids; the fig5 config keeps
#: its historical scenario name ("FB-t") so the generated workload is
#: byte-identical to the one the baseline was captured on.
WORKLOADS: Dict[str, ScenarioConfig] = {
    "scal-k4": ScenarioConfig(
        name="scal-k4", structure="fb-tao", num_jobs=20, fattree_k=4, seed=3
    ),
    "scal-k8": ScenarioConfig(
        name="scal-k8", structure="fb-tao", num_jobs=40, fattree_k=8, seed=3
    ),
    "fig5-fbt": ScenarioConfig(
        name="FB-t", structure="fb-tao", arrival_mode="uniform",
        num_jobs=60, seed=42,
    ),
    "fig6-tpcds": ScenarioConfig(
        name="fig6-tpcds", structure="tpcds", arrival_mode="uniform",
        num_jobs=100, seed=42,
    ),
}

#: Frozen pre-optimization measurements (single-core reference box, the
#: same machine the "current" numbers in the committed artifact come
#: from).  Never update these without re-running the historical tree.
BASELINE = {
    "captured_on": (
        "pre-optimization tree (commit cf118a7 lineage), best-of-3, "
        "1-core reference box, back-to-back with the current capture"
    ),
    "workloads": {
        "scal-k4": {"events": 1446, "wall_seconds": 0.856,
                    "events_per_sec": 1689.3,
                    "jct_fingerprint": "870ac75a4ce545a9971b523ab60b8a09"},
        "scal-k8": {"events": 4799, "wall_seconds": 5.637,
                    "events_per_sec": 851.3,
                    "jct_fingerprint": "01e75ce39db5bbfca0695ea1d9e71ece"},
        "fig5-fbt": {"events": 3047, "wall_seconds": 13.766,
                     "events_per_sec": 221.3,
                     "jct_fingerprint": "3fdd642c22d324cce3c0c514d3a23c9b"},
        "fig6-tpcds": {"events": 35242, "wall_seconds": 61.142,
                       "events_per_sec": 576.4,
                       "jct_fingerprint": "1239d68f06623a4477a4976367082b02"},
    },
}


def fingerprint(payload: object) -> str:
    """Same scheme as benchmarks/fingerprint_figures.py."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).hexdigest()


def measure(name: str, repeats: int = 1) -> Dict[str, object]:
    """Run one pinned workload; return its best-of-``repeats`` metrics row.

    Taking the *minimum* wall time over repeats is the standard
    noise-robust estimator on shared hardware: simulation work is
    deterministic, so every run does identical work and the fastest run
    is the one least perturbed by host steal/frequency noise.
    """
    config = WORKLOADS[name]
    best_wall = math.inf
    result = None
    for _ in range(repeats):
        topology = build_topology(config)
        jobs = build_jobs(config, topology.num_hosts)
        start = time.perf_counter()
        run = simulate(topology, make_scheduler("gurita"), jobs)
        wall = time.perf_counter() - start
        if wall < best_wall:
            best_wall = wall
            result = run
    assert result is not None
    return {
        "events": result.events_processed,
        "wall_seconds": round(best_wall, 3),
        "events_per_sec": round(result.events_processed / best_wall, 1),
        "jct_fingerprint": fingerprint(
            sorted(result.job_completion_times().items())
        ),
    }


def run_all(
    names: Iterable[str], repeats: int = 1
) -> Dict[str, Dict[str, object]]:
    measured: Dict[str, Dict[str, object]] = {}
    for name in names:
        measured[name] = measure(name, repeats=repeats)
        print(f"{name}: {measured[name]}", flush=True)
    return measured


def write_artifact(path: str, measured: Dict[str, Dict[str, object]]) -> None:
    speedup = {
        name: round(
            float(measured[name]["events_per_sec"])  # type: ignore[arg-type]
            / BASELINE["workloads"][name]["events_per_sec"],  # type: ignore[index]
            2,
        )
        for name in measured
        if name in BASELINE["workloads"]
    }
    artifact = {
        "schema": SCHEMA,
        "bench_id": Path(path).stem,
        "baseline": BASELINE,
        "current": {
            "captured_on": "optimized tree, same reference box",
            "workloads": measured,
        },
        "speedup": speedup,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}; speedup: {speedup}")


def check_regression(
    path: str, names: Iterable[str], tolerance: float
) -> int:
    """Exit status 0/1: measured events/sec vs the committed artifact."""
    with open(path, encoding="utf-8") as handle:
        artifact = json.load(handle)
    committed = artifact["current"]["workloads"]
    failures = []
    for name in names:
        row = measure(name, repeats=3)
        print(f"{name}: {row}", flush=True)
        reference = committed[name]
        floor = reference["events_per_sec"] * (1.0 - tolerance)
        if float(row["events_per_sec"]) < floor:  # type: ignore[arg-type]
            failures.append(
                f"{name}: {row['events_per_sec']} ev/s < committed "
                f"{reference['events_per_sec']} ev/s - {tolerance:.0%}"
            )
        if row["jct_fingerprint"] != reference["jct_fingerprint"]:
            failures.append(
                f"{name}: JCT fingerprint {row['jct_fingerprint']} != "
                f"committed {reference['jct_fingerprint']} "
                "(behaviour changed, not just speed)"
            )
    if failures:
        for line in failures:
            print(f"PERF REGRESSION: {line}", file=sys.stderr)
        return 1
    print("perf check OK")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        nargs="?",
        const=_NEXT,
        help=(
            "write a fresh artifact to this path (with no value: the next "
            "BENCH_<n+1>.json after the latest committed artifact)"
        ),
    )
    parser.add_argument(
        "--check",
        nargs="?",
        const=_LATEST,
        help=(
            "regression-check against this committed artifact (with no "
            "value: the latest committed BENCH_<n>.json)"
        ),
    )
    parser.add_argument(
        "--workloads",
        default=",".join(WORKLOADS),
        help="comma-separated workload subset (default: all)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", "0.2")),
        help="allowed fractional events/sec regression for --check",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per workload; the fastest is reported (noise floor)",
    )
    args = parser.parse_args(argv)
    names = [n for n in args.workloads.split(",") if n]
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        parser.error(f"unknown workloads: {unknown}; have {list(WORKLOADS)}")
    if args.check:
        check_path = args.check
        if check_path == _LATEST:
            discovered = latest_bench()
            if discovered is None:
                parser.error("no committed BENCH_<n>.json found to check against")
            check_path = str(discovered)
            print(f"checking against latest artifact: {check_path}", flush=True)
        return check_regression(check_path, names, args.tolerance)
    measured = run_all(names, repeats=args.repeats)
    if args.out:
        out_path = args.out
        if out_path == _NEXT:
            out_path = str(next_bench_path())
        write_artifact(out_path, measured)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
