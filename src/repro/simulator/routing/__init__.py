"""Routing policies (currently ECMP, the datacenter standard)."""

from repro.simulator.routing.ecmp import EcmpRouter, flow_hash

__all__ = ["EcmpRouter", "flow_hash"]
