"""Concurrent Open Shop (COSP) — the reduction the paper argues *against*.

Early coflow work reduces coflow scheduling to COSP (Gonzales & Sahni
1976): jobs have per-machine work, machines process work in any order, and
a job completes when all its components do.  The paper's §III.A objection:
COSP permits a flow to be "processed at the receiver before the sender",
an order impossible in a network, which is why Gurita reduces to FFS-MJ
instead.

This module implements COSP plus the classic SRPT-style heuristic so tests
can demonstrate both the reduction and the ordering artefact: a COSP
schedule may differ from any network-feasible (flow-shop) schedule on the
same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class CospJob:
    """A job with independent work per machine (no ordering constraint)."""

    job_id: int
    work_per_machine: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.work_per_machine:
            raise ReproError(f"job {self.job_id} needs work on >= 1 machine")
        if any(w < 0 for w in self.work_per_machine):
            raise ReproError(f"job {self.job_id} has negative work")

    @property
    def total_work(self) -> float:
        return sum(self.work_per_machine)

    @property
    def max_work(self) -> float:
        return max(self.work_per_machine)


def permutation_completion_times(
    jobs: Sequence[CospJob], order: Sequence[int]
) -> Dict[int, float]:
    """Per-job completion under a permutation schedule.

    In COSP, permutation schedules are dominant for minimising total
    completion time: every machine processes jobs in the same order, and
    job j completes when its slowest machine finishes its work.
    """
    by_id = {job.job_id: job for job in jobs}
    if sorted(order) != sorted(by_id):
        raise ReproError("order must be a permutation of the job ids")
    num_machines = len(next(iter(by_id.values())).work_per_machine)
    if any(len(j.work_per_machine) != num_machines for j in by_id.values()):
        raise ReproError("all jobs must specify work on the same machines")
    machine_time = [0.0] * num_machines
    completion: Dict[int, float] = {}
    for job_id in order:
        job = by_id[job_id]
        finish = 0.0
        for machine, work in enumerate(job.work_per_machine):
            machine_time[machine] += work
            finish = max(finish, machine_time[machine])
        completion[job_id] = finish
    return completion


def total_completion_time(jobs: Sequence[CospJob], order: Sequence[int]) -> float:
    """Sum of completion times under a permutation order."""
    return sum(permutation_completion_times(jobs, order).values())


def smallest_max_work_first(jobs: Sequence[CospJob]) -> List[int]:
    """The Varys-style SEBF analogue for COSP: ascending bottleneck work."""
    return [
        job.job_id
        for job in sorted(jobs, key=lambda j: (j.max_work, j.job_id))
    ]


def brute_force_best_order(jobs: Sequence[CospJob]) -> Tuple[Tuple[int, ...], float]:
    """Exhaustive best permutation (small instances only)."""
    import itertools

    if len(jobs) > 8:
        raise ReproError("brute force limited to 8 jobs")
    best_order: Tuple[int, ...] = ()
    best_value = float("inf")
    for order in itertools.permutations(j.job_id for j in jobs):
        value = total_completion_time(jobs, order)
        if value < best_value - 1e-12:
            best_order, best_value = order, value
    return best_order, best_value
