"""Unit tests for the Facebook-trace parser, writer, and synthesizer."""

import pytest

from repro.errors import TraceFormatError
from repro.workloads.categories import MB
from repro.workloads.fbtrace import (
    TraceCoflow,
    parse_trace,
    synthesize_trace,
    write_trace,
)


def sample_coflow(coflow_id=0):
    return TraceCoflow(
        coflow_id=coflow_id,
        arrival_seconds=1.5,
        mappers=(0, 1),
        reducers=((2, 100 * MB), (3, 50 * MB)),
    )


class TestTraceCoflow:
    def test_totals(self):
        coflow = sample_coflow()
        assert coflow.total_bytes == pytest.approx(150 * MB)
        assert coflow.num_flows == 4

    def test_flow_specs_split_reducer_bytes_across_mappers(self):
        specs = sample_coflow().flow_specs()
        assert len(specs) == 4
        to_reducer_2 = [s for s in specs if s[1] == 2]
        assert sum(size for _s, _d, size in to_reducer_2) == pytest.approx(
            100 * MB
        )

    def test_colocated_pairs_move_no_bytes(self):
        coflow = TraceCoflow(
            coflow_id=0,
            arrival_seconds=0.0,
            mappers=(2, 5),
            reducers=((2, 10 * MB),),
        )
        specs = coflow.flow_specs()
        assert all(src != dst for src, dst, _ in specs)
        assert len(specs) == 1  # mapper 2 is co-located with reducer 2

    def test_fully_colocated_degenerate_case(self):
        coflow = TraceCoflow(
            coflow_id=0,
            arrival_seconds=0.0,
            mappers=(2,),
            reducers=((2, 10 * MB),),
        )
        specs = coflow.flow_specs()
        assert len(specs) == 1
        assert specs[0][0] != specs[0][1]


class TestRoundTrip:
    def test_write_then_parse(self, tmp_path):
        coflows = [sample_coflow(0), sample_coflow(1)]
        path = tmp_path / "trace.txt"
        write_trace(path, coflows, num_machines=10)
        machines, parsed = parse_trace(path)
        assert machines == 10
        assert len(parsed) == 2
        for original, loaded in zip(coflows, parsed):
            assert loaded.coflow_id == original.coflow_id
            assert loaded.arrival_seconds == pytest.approx(
                original.arrival_seconds, abs=1e-3
            )
            assert loaded.mappers == original.mappers
            assert loaded.total_bytes == pytest.approx(original.total_bytes)

    def test_parse_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            parse_trace(path)

    def test_parse_rejects_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("10 2\n0 0 1 0 1 2:1\n")
        with pytest.raises(TraceFormatError):
            parse_trace(path)

    def test_parse_rejects_malformed_record(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("10 1\n0 0 banana\n")
        with pytest.raises(TraceFormatError):
            parse_trace(path)

    def test_parse_rejects_out_of_range_machine(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3 1\n0 0 1 7 1 2:1\n")
        with pytest.raises(TraceFormatError):
            parse_trace(path)


class TestSynthesis:
    def test_deterministic_in_seed(self):
        a = synthesize_trace(50, num_machines=100, seed=9)
        b = synthesize_trace(50, num_machines=100, seed=9)
        assert [c.reducers for c in a] == [c.reducers for c in b]

    def test_seed_changes_output(self):
        a = synthesize_trace(50, num_machines=100, seed=1)
        b = synthesize_trace(50, num_machines=100, seed=2)
        assert [c.reducers for c in a] != [c.reducers for c in b]

    def test_arrivals_sorted_within_duration(self):
        trace = synthesize_trace(80, num_machines=50, duration=100.0, seed=3)
        arrivals = [c.arrival_seconds for c in trace]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 100.0 for a in arrivals)

    def test_machines_in_range(self):
        trace = synthesize_trace(80, num_machines=16, seed=4)
        for coflow in trace:
            for machine in list(coflow.mappers) + [m for m, _ in coflow.reducers]:
                assert 0 <= machine < 16

    def test_fanin_capped(self):
        trace = synthesize_trace(200, num_machines=1000, seed=5, max_fanin=7)
        assert max(len(c.mappers) for c in trace) <= 7
        assert max(len(c.reducers) for c in trace) <= 7

    def test_sizes_are_heavy_tailed(self):
        trace = synthesize_trace(400, num_machines=1000, seed=6)
        sizes = sorted(c.total_bytes for c in trace)
        median = sizes[len(sizes) // 2]
        assert max(sizes) > 100 * median  # a real tail exists

    def test_big_coflows_are_wide(self):
        trace = synthesize_trace(400, num_machines=1000, seed=7)
        big = [c for c in trace if c.total_bytes > 10_000 * MB]
        small = [c for c in trace if c.total_bytes < 100 * MB]
        assert big and small
        mean_width = lambda group: sum(len(c.reducers) for c in group) / len(group)
        assert mean_width(big) > 2 * mean_width(small)

    def test_size_scale_applies(self):
        base = synthesize_trace(20, num_machines=50, seed=8, size_scale=1.0)
        scaled = synthesize_trace(20, num_machines=50, seed=8, size_scale=0.5)
        for full, half in zip(base, scaled):
            assert half.total_bytes == pytest.approx(full.total_bytes * 0.5)

    def test_validation(self):
        with pytest.raises(TraceFormatError):
            synthesize_trace(0)
        with pytest.raises(TraceFormatError):
            synthesize_trace(5, num_machines=1)
