"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.jobs import IdAllocator, JobBuilder
from repro.simulator.topology.bigswitch import BigSwitchTopology


@pytest.fixture
def ids():
    """A fresh id allocator per test."""
    return IdAllocator()


@pytest.fixture
def small_fabric():
    """A 6-host big-switch fabric with unit-friendly 1 GB/s links."""
    return BigSwitchTopology(num_hosts=6, link_capacity=1e9)


@pytest.fixture
def diamond_job(ids):
    """A 4-coflow diamond: leaf -> (left, right) -> root, hosts 0..3."""
    builder = JobBuilder(arrival_time=0.0, ids=ids)
    leaf = builder.add_coflow([(0, 1, 100.0)])
    left = builder.add_coflow([(1, 2, 50.0)], depends_on=[leaf])
    right = builder.add_coflow([(1, 3, 75.0)], depends_on=[leaf])
    root = builder.add_coflow([(2, 3, 25.0)], depends_on=[left, right])
    job = builder.build()
    job.coflow_ids = {"leaf": leaf, "left": left, "right": right, "root": root}
    return job
