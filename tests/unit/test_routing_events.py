"""Unit tests for ECMP routing and the event queue."""

import pytest

from repro.errors import SimulationError
from repro.jobs.flow import Flow
from repro.simulator.events import EventKind, EventQueue
from repro.simulator.routing.ecmp import EcmpRouter, flow_hash
from repro.simulator.topology.fattree import FatTreeTopology


class TestFlowHash:
    def test_deterministic(self):
        assert flow_hash(1, 2, 3) == flow_hash(1, 2, 3)

    def test_salt_changes_hash(self):
        assert flow_hash(1, 2, 3, salt=0) != flow_hash(1, 2, 3, salt=1)

    def test_distinct_flows_spread(self):
        values = {flow_hash(i, 0, 1) % 16 for i in range(200)}
        # 200 flows over 16 buckets should hit most buckets.
        assert len(values) >= 12


class TestEcmpRouter:
    def test_same_flow_same_path(self):
        topo = FatTreeTopology(k=4)
        router = EcmpRouter(topo)
        flow = Flow(flow_id=7, coflow_id=0, src=0, dst=15, size_bytes=1.0)
        assert router.route_flow(flow) == router.route_flow(flow)

    def test_flows_balance_over_paths(self):
        topo = FatTreeTopology(k=4)
        router = EcmpRouter(topo)
        paths = {
            router.route_flow(
                Flow(flow_id=i, coflow_id=0, src=0, dst=15, size_bytes=1.0)
            )
            for i in range(100)
        }
        assert len(paths) == topo.num_route_choices(0, 15)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(2.0, EventKind.JOB_ARRIVAL, "late")
        queue.push(1.0, EventKind.JOB_ARRIVAL, "early")
        assert queue.pop().payload == "early"
        assert queue.pop().payload == "late"

    def test_kind_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.SCHEDULER_UPDATE)
        queue.push(1.0, EventKind.JOB_ARRIVAL)
        assert queue.pop().kind is EventKind.JOB_ARRIVAL

    def test_fifo_within_same_time_and_kind(self):
        queue = EventQueue()
        queue.push(1.0, EventKind.JOB_ARRIVAL, "first")
        queue.push(1.0, EventKind.JOB_ARRIVAL, "second")
        assert queue.pop().payload == "first"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, EventKind.JOB_ARRIVAL)

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.push(3.0, EventKind.JOB_ARRIVAL)
        assert queue.peek_time() == 3.0
        assert len(queue) == 1
