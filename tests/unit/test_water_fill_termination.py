"""Water-filling termination and drift audit (the hot-loop bugfix sweep).

The progressive-filling loop must terminate for every input the runtime
can produce — zero-capacity (fault-revoked) links, capacities within
``_EPSILON`` of zero after layered subtraction drift, empty routes — and
must never leave negative residual capacity behind.  All near-zero
comparisons go through the blessed helpers ``share_at_most`` /
``capacity_exhausted`` so the tolerance is defined in exactly one place.

Both code paths are exercised: the incremental-share scalar loop (the
default dispatch) and the vectorised CSR path (the ``widen``/vectorized
variants flip ``_VECTOR_DISPATCH`` on so ``water_fill`` routes >=
``_VECTOR_MIN_FLOWS`` flow sets through it).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.simulator.bandwidth.maxmin as maxmin
from repro.simulator.bandwidth.maxmin import (
    _EPSILON,
    _VECTOR_MIN_FLOWS,
    LinkMembership,
    capacity_exhausted,
    share_at_most,
    water_fill,
    water_fill_membership,
)


@pytest.fixture
def vector_dispatch(monkeypatch):
    """Route large-enough fills through the vectorised CSR path."""
    monkeypatch.setattr(maxmin, "_VECTOR_DISPATCH", True)


def _membership(flow_routes, num_links):
    return LinkMembership.from_routes(flow_routes, num_links)


def _widen(flow_routes, num_links, start=10_000):
    """Pad a flow set past the vectorisation threshold with disjoint flows."""
    widened = dict(flow_routes)
    extra_links = num_links
    for i in range(_VECTOR_MIN_FLOWS):
        widened[start + i] = (extra_links + i,)
    return widened, num_links + _VECTOR_MIN_FLOWS


class TestBlessedHelpers:
    def test_capacity_exhausted_at_zero_and_below_epsilon(self):
        assert capacity_exhausted(0.0)
        assert capacity_exhausted(_EPSILON / 2)
        assert capacity_exhausted(-1e-12)
        assert not capacity_exhausted(10.0 * _EPSILON)

    def test_share_at_most_ties_within_epsilon(self):
        shares = np.array([1.0, 1.0 + _EPSILON / 2, 1.0 + 10 * _EPSILON, 2.0])
        mask = share_at_most(shares, 1.0)
        assert mask.tolist() == [True, True, False, False]


class TestTermination:
    def test_zero_capacity_links_freeze_flows_at_zero(self):
        rates = water_fill({1: (0,), 2: (0,)}, [0.0])
        assert rates == {1: 0.0, 2: 0.0}

    def test_zero_capacity_vectorized(self, vector_dispatch):
        flows = {i: (0,) for i in range(_VECTOR_MIN_FLOWS + 3)}
        rates = water_fill(flows, [0.0])
        assert all(rate == 0.0 for rate in rates.values())

    def test_capacity_within_epsilon_of_zero_terminates(self):
        caps = [_EPSILON / 3, 5.0]
        rates = water_fill({1: (0, 1), 2: (1,)}, caps)
        assert all(rate >= 0.0 for rate in rates.values())
        # The exhausted link bottlenecks flow 1 at (effectively) zero.
        assert rates[1] == pytest.approx(0.0, abs=_EPSILON)

    def test_empty_route_flows_get_zero_not_livelock(self):
        rates = water_fill({1: (), 2: (0,)}, [4.0])
        assert rates[1] == 0.0
        assert rates[2] == pytest.approx(4.0)

    def test_all_empty_routes(self):
        rates = water_fill({1: (), 2: ()}, [4.0])
        assert rates == {1: 0.0, 2: 0.0}

    def test_empty_routes_vectorized(self, vector_dispatch):
        flows = {i: (0,) for i in range(_VECTOR_MIN_FLOWS)}
        flows[999] = ()
        rates = water_fill(flows, [6.0])
        assert rates[999] == 0.0
        assert sum(rates.values()) == pytest.approx(6.0)

    @pytest.mark.parametrize("widen", [False, True])
    def test_mixed_zero_and_live_links(self, widen, request):
        flows = {1: (0,), 2: (0, 1), 3: (1,), 4: (2,)}
        num_links = 4
        if widen:
            request.getfixturevalue("vector_dispatch")
            flows, num_links = _widen(flows, num_links)
        caps = [0.0, 6.0, 9.0] + [1.0] * (num_links - 3)
        rates = water_fill(flows, caps)
        assert rates[1] == 0.0 and rates[2] == 0.0
        assert rates[3] == pytest.approx(6.0)
        assert rates[4] == pytest.approx(9.0)


class TestDriftAudit:
    def _layered_residual(self, num_flows):
        """Layer allocations the way WRR does and return the residual."""
        num_links = 5
        flow_routes = {
            i: (i % num_links, (i * 3 + 1) % num_links) for i in range(num_flows)
        }
        residual = np.array([3.0, 1.0, 7.0, 0.3, 1e-9])
        layer_one = _membership(
            {f: r for f, r in flow_routes.items() if f % 2 == 0}, num_links
        )
        layer_two = _membership(
            {f: r for f, r in flow_routes.items() if f % 2 == 1}, num_links
        )
        water_fill_membership(layer_one, residual)
        water_fill_membership(layer_two, residual)
        return residual

    @pytest.mark.parametrize("num_flows", [6, 4 * _VECTOR_MIN_FLOWS])
    def test_layered_fills_never_leave_negative_residual(
        self, num_flows, request
    ):
        if num_flows >= _VECTOR_MIN_FLOWS:
            request.getfixturevalue("vector_dispatch")
        residual = self._layered_residual(num_flows)
        assert np.all(residual >= 0.0)

    @pytest.mark.parametrize("num_flows", [7, 4 * _VECTOR_MIN_FLOWS])
    def test_no_link_oversubscribed_beyond_epsilon(self, num_flows, request):
        if num_flows >= _VECTOR_MIN_FLOWS:
            request.getfixturevalue("vector_dispatch")
        num_links = 6
        flow_routes = {
            i: tuple(sorted({i % num_links, (i * 7 + 2) % num_links}))
            for i in range(num_flows)
        }
        caps = [2.0, 0.0, 5.0, _EPSILON / 2, 11.0, 0.125]
        nominal = np.asarray(caps)  # water_fill mutates caps (by contract)
        rates = water_fill(flow_routes, caps)
        usage = np.zeros(num_links)
        for flow_id, route in flow_routes.items():
            assert rates[flow_id] >= 0.0
            for link in route:
                usage[link] += rates[flow_id]
        # Per-round ties freeze within _EPSILON of the bottleneck, so the
        # total overshoot is bounded by rounds * _EPSILON (<< 1e-6).
        assert np.all(usage <= nominal + 1e-6)
        # The mutated residual is exactly nominal minus usage, clamped:
        # the drift audit proper.
        assert np.all(np.asarray(caps) >= 0.0)
