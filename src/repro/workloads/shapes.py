"""Job-structure shapes observed in production (paper §II, after Graphene).

Microsoft's production study reports jobs shaped as chains, trees (~40% of
jobs), "W" shapes, inverted "V" shapes, and more complex multi-root DAGs,
with an average depth of five stages and tails beyond ten.  A shape here is
an abstract DAG over node indices ``0..n-1`` with edges ``(u, v)`` meaning
*v depends on u*; workload generators instantiate each node with a coflow
replicated from the trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import WorkloadError

#: Average job depth in production (paper §II).
PRODUCTION_MEAN_DEPTH = 5


@dataclass(frozen=True)
class DagShape:
    """An abstract dependency shape: node count + (u, v) dependency edges."""

    name: str
    num_nodes: int
    edges: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        for u, v in self.edges:
            if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
                raise WorkloadError(f"shape {self.name}: edge ({u},{v}) out of range")


def chain(depth: int) -> DagShape:
    """A linear pipeline: stage i feeds stage i+1."""
    if depth < 1:
        raise WorkloadError("chain depth must be >= 1")
    return DagShape(
        name=f"chain-{depth}",
        num_nodes=depth,
        edges=tuple((i, i + 1) for i in range(depth - 1)),
    )


def tree(depth: int, branching: int = 2) -> DagShape:
    """A reduction tree: ``branching^d`` leaves funnel into one root.

    Nodes are laid out level by level from the root (node 0); leaves are
    the deepest level and every child must complete before its parent.
    """
    if depth < 1 or branching < 1:
        raise WorkloadError("tree needs depth >= 1 and branching >= 1")
    edges: List[Tuple[int, int]] = []
    level_start = 0
    level_size = 1
    total = 1
    for _level in range(depth - 1):
        next_start = level_start + level_size
        next_size = level_size * branching
        for parent_offset in range(level_size):
            parent = level_start + parent_offset
            for child_offset in range(branching):
                child = next_start + parent_offset * branching + child_offset
                edges.append((child, parent))
        level_start, level_size = next_start, next_size
        total += next_size
    return DagShape(name=f"tree-{depth}x{branching}", num_nodes=total, edges=tuple(edges))


def w_shape() -> DagShape:
    """The "W" shape: two roots each aggregating two leaves, sharing one.

    Leaves 2, 3, 4; roots 0 and 1; leaf 3 feeds both roots — drawn out it
    traces a W.
    """
    return DagShape(
        name="w",
        num_nodes=5,
        edges=((2, 0), (3, 0), (3, 1), (4, 1)),
    )


def inverted_v(fanout: int = 2) -> DagShape:
    """Inverted "V": one leaf feeding ``fanout`` independent roots."""
    if fanout < 2:
        raise WorkloadError("inverted V needs fanout >= 2")
    return DagShape(
        name=f"inverted-v-{fanout}",
        num_nodes=fanout + 1,
        edges=tuple((fanout, root) for root in range(fanout)),
    )


def parallel_chains(num_chains: int, depth: int) -> DagShape:
    """Multiple independent chains merging into a single final stage.

    Models the paper's "job with multiple parallel chain shape structure":
    a stage of one chain can proceed as soon as *its* dependency finishes,
    regardless of sibling chains.
    """
    if num_chains < 1 or depth < 1:
        raise WorkloadError("parallel chains need num_chains >= 1 and depth >= 1")
    # Node 0 is the merge root; chain c occupies nodes 1+c*depth .. c*depth+depth.
    edges: List[Tuple[int, int]] = []
    for c in range(num_chains):
        base = 1 + c * depth
        for i in range(depth - 1):
            edges.append((base + i + 1, base + i))  # deeper feeds shallower
        edges.append((base, 0))
    return DagShape(
        name=f"parallel-{num_chains}x{depth}",
        num_nodes=1 + num_chains * depth,
        edges=tuple(edges),
    )


def multi_root(num_roots: int = 2, num_leaves: int = 3) -> DagShape:
    """A complex multi-output shape: shared leaves feeding several roots."""
    if num_roots < 2 or num_leaves < 2:
        raise WorkloadError("multi_root needs >= 2 roots and >= 2 leaves")
    edges: List[Tuple[int, int]] = []
    mid = num_roots  # one intermediate node
    leaves_start = num_roots + 1
    for leaf in range(leaves_start, leaves_start + num_leaves):
        edges.append((leaf, mid))
    for root in range(num_roots):
        edges.append((mid, root))
        # each root also takes one raw leaf directly
        edges.append((leaves_start + root % num_leaves, root))
    return DagShape(
        name=f"multiroot-{num_roots}r{num_leaves}l",
        num_nodes=num_roots + 1 + num_leaves,
        edges=tuple(edges),
    )


def single() -> DagShape:
    """A single-stage job (one coflow) — the classic coflow setting."""
    return DagShape(name="single", num_nodes=1, edges=())


def sample_production_shape(rng: random.Random) -> DagShape:
    """Draw a shape following the production mix the paper cites.

    ~40% trees; the rest split across chains, W, inverted-V, parallel
    chains, and multi-root shapes, with depths centred on five stages.
    """
    roll = rng.random()
    if roll < 0.40:
        depth = rng.choice([2, 3, 3, 4])
        return tree(depth=depth, branching=rng.choice([2, 2, 3]))
    if roll < 0.60:
        return chain(depth=rng.choice([3, 4, 5, 6, 7]))
    if roll < 0.72:
        return w_shape()
    if roll < 0.84:
        return inverted_v(fanout=rng.choice([2, 3]))
    if roll < 0.94:
        return parallel_chains(num_chains=rng.choice([2, 3]), depth=rng.choice([2, 3]))
    return multi_root(num_roots=2, num_leaves=rng.choice([2, 3]))
