"""End-to-end equivalence: Gurita's fast path vs the flow-table plane."""


from repro.core.config import GuritaConfig
from repro.core.gurita import GuritaScheduler
from repro.simulator.runtime import simulate
from repro.simulator.topology.fattree import FatTreeTopology
from repro.workloads.generator import synthesize_workload


def run_with(use_flow_tables: bool):
    topology = FatTreeTopology(k=4)
    jobs = synthesize_workload(
        num_jobs=10, num_hosts=topology.num_hosts, seed=17, offered_load=1.5
    )
    scheduler = GuritaScheduler(GuritaConfig(use_flow_tables=use_flow_tables))
    return simulate(topology, scheduler, jobs)


class TestFlowTablePathEquivalence:
    def test_identical_schedules(self):
        """The deployment-shaped observation plane reproduces the direct
        path bit-for-bit: same JCT for every job, same event count."""
        direct = run_with(use_flow_tables=False)
        plane = run_with(use_flow_tables=True)
        assert plane.job_completion_times() == direct.job_completion_times()
        assert plane.events_processed == direct.events_processed
        assert plane.reallocations == direct.reallocations

    def test_plane_completes_and_is_deterministic(self):
        first = run_with(use_flow_tables=True)
        second = run_with(use_flow_tables=True)
        assert first.all_done
        assert first.job_completion_times() == second.job_completion_times()
