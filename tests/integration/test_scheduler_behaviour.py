"""Integration tests: policy behaviour end-to-end in the simulator."""

import pytest

from repro.core.config import GuritaConfig
from repro.core.gurita import GuritaScheduler
from repro.core.gurita_plus import GuritaPlusScheduler
from repro.jobs import IdAllocator, chain_job, single_stage_job
from repro.schedulers.aalo import AaloScheduler
from repro.schedulers.baraat import BaraatScheduler
from repro.schedulers.pfs import PerFlowFairSharing
from repro.schedulers.stream import StreamScheduler
from repro.simulator.runtime import simulate
from repro.simulator.topology.bigswitch import BigSwitchTopology

GB = 1e9


def topo(hosts=8):
    return BigSwitchTopology(num_hosts=hosts, link_capacity=1.0 * GB)


def elephant_and_mouse(ids, mouse_arrival=1.0):
    """A 20 GB elephant and a late 10 MB mouse sharing a receiver."""
    elephant = single_stage_job([(0, 2, 20.0 * GB)], ids=ids)
    mouse = single_stage_job(
        [(1, 2, 0.01 * GB)], arrival_time=mouse_arrival, ids=ids
    )
    return elephant, mouse


class TestPriorityBeatsFairSharing:
    def test_aalo_protects_the_mouse(self, ids):
        elephant, mouse = elephant_and_mouse(ids)
        result = simulate(topo(), AaloScheduler(), [elephant, mouse])
        jcts = result.job_completion_times()
        # Elephant long demoted when the mouse arrives: mouse runs at
        # nearly full line rate instead of splitting with the elephant.
        assert jcts[mouse.job_id] < 0.05

    def test_pfs_penalises_the_mouse(self, ids):
        elephant, mouse = elephant_and_mouse(ids)
        result = simulate(topo(), PerFlowFairSharing(), [elephant, mouse])
        jcts = result.job_completion_times()
        # Under fair sharing the mouse gets half the downlink.
        assert jcts[mouse.job_id] == pytest.approx(0.02, rel=0.05)

    def test_gurita_protects_the_mouse(self, ids):
        elephant, mouse = elephant_and_mouse(ids)
        result = simulate(topo(), GuritaScheduler(), [elephant, mouse])
        jcts = result.job_completion_times()
        # WRR emulation guarantees the elephant a trickle, so the mouse is
        # close to — but not exactly at — line rate.
        assert jcts[mouse.job_id] < 0.05
        assert jcts[mouse.job_id] >= 0.01


class TestBaraatFifo:
    def test_head_of_line_blocks_late_mouse(self, ids):
        # Baraat's weakness (paper §V): a light job arriving behind a
        # non-heavy earlier job waits for it.
        first = single_stage_job([(0, 2, 0.05 * GB)], ids=ids)
        second = single_stage_job(
            [(1, 2, 0.05 * GB)], arrival_time=0.001, ids=ids
        )
        result = simulate(
            topo(), BaraatScheduler(heavy_bytes=1e12), [first, second]
        )
        jcts = result.job_completion_times()
        assert jcts[first.job_id] < jcts[second.job_id]


class TestGuritaStageSensitivity:
    def test_on_and_off_job_regains_priority_in_light_stage(self, ids):
        """The paper's core claim: a job heavy early and light late should
        not be punished in its light stages (unlike TBS/Aalo)."""
        config = GuritaConfig(update_interval=2e-3)
        # Job A: stage 1 huge (5 GB), stage 2 tiny (10 MB via host 4->5).
        on_off = chain_job(
            [[(0, 3, 5.0 * GB)], [(4, 5, 0.01 * GB)]], ids=ids
        )
        # A competitor elephant owns host 4's uplink the whole time.
        blocker = single_stage_job([(4, 6, 40.0 * GB)], ids=ids)
        gurita_result = simulate(
            topo(), GuritaScheduler(config), [on_off, blocker]
        )
        aalo_result_jobs = [
            chain_job([[(0, 3, 5.0 * GB)], [(4, 5, 0.01 * GB)]], ids=(ids2 := IdAllocator())),
            single_stage_job([(4, 6, 40.0 * GB)], ids=ids2),
        ]
        aalo_result = simulate(topo(), AaloScheduler(), aalo_result_jobs)
        gurita_jct = gurita_result.job_completion_times()[on_off.job_id]
        aalo_jct = aalo_result.job_completion_times()[
            aalo_result_jobs[0].job_id
        ]
        # Aalo accumulates the job's 5 GB history -> its tiny stage 2 is
        # demoted below the blocker.  Gurita's per-stage effect resets.
        assert gurita_jct < aalo_jct

    def test_all_schedulers_complete_everything(self, ids):
        jobs_spec = lambda alloc: [
            chain_job([[(0, 1, 0.5 * GB)], [(1, 2, 0.1 * GB)]], ids=alloc),
            single_stage_job([(0, 3, 1.0 * GB)], ids=alloc),
            single_stage_job([(4, 5, 0.2 * GB)], arrival_time=0.1, ids=alloc),
        ]
        for scheduler in (
            PerFlowFairSharing(),
            AaloScheduler(),
            BaraatScheduler(),
            StreamScheduler(),
            GuritaScheduler(),
            GuritaPlusScheduler(),
        ):
            result = simulate(topo(), scheduler, jobs_spec(IdAllocator()))
            assert result.all_done, scheduler.name


class TestStarvationMitigation:
    def test_spq_starves_wrr_does_not(self, ids):
        """With mitigation off the low-priority elephant is frozen while
        the top queue is busy; WRR keeps it trickling."""
        config_spq = GuritaConfig(starvation_mitigation=False)
        config_wrr = GuritaConfig(starvation_mitigation=True)

        def build(alloc):
            # Many small jobs keep the top queue busy on host 2's downlink;
            # one pre-demoted elephant shares it.
            jobs = [
                single_stage_job(
                    [(0, 2, 0.2 * GB)], arrival_time=0.05 * i, ids=alloc
                )
                for i in range(10)
            ]
            jobs.append(single_stage_job([(1, 2, 1.0 * GB)], ids=alloc))
            return jobs

        spq_jobs = build(IdAllocator())
        wrr_jobs = build(IdAllocator())
        spq_result = simulate(topo(), GuritaScheduler(config_spq), spq_jobs)
        wrr_result = simulate(topo(), GuritaScheduler(config_wrr), wrr_jobs)
        spq_elephant = spq_result.job_completion_times()[spq_jobs[-1].job_id]
        wrr_elephant = wrr_result.job_completion_times()[wrr_jobs[-1].job_id]
        assert wrr_elephant <= spq_elephant
