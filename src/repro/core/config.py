"""Configuration for the Gurita scheduler family."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SchedulerError
from repro.schedulers.thresholds import ExponentialThresholds
from repro.simulator.bandwidth.request import DEFAULT_NUM_CLASSES


@dataclass
class GuritaConfig:
    """Tunables of Gurita (defaults follow the paper's evaluation §V).

    Attributes
    ----------
    num_classes:
        Priority queues used (the paper evaluates with 4; switches offer 8).
    psi_first, psi_base:
        Exponentially spaced demotion thresholds over the blocking effect
        Ψ.  Ψ has byte-like scale (width × largest flow × factors ≤ 1), so
        the defaults start near Aalo's 10 MB boundary.
    update_interval:
        δ — seconds between head-receiver coordination rounds.
    beta_floor:
        β when all flows of a coflow are equal-sized (paper's 0.1).
    critical_path_bonus:
        λ — relative discount on Ψ for coflows judged to be on a critical
        path (rule 4); 0 disables the rule.
    critical_path_marks:
        AVA bound on coflows flagged critical per job (< 5, the average
        number of stages in production jobs).
    starvation_mitigation:
        When True (default) enforce priorities with WRR-emulated SPQ;
        when False use raw SPQ (the ablation of §IV.B's mitigation).
    wrr_utilization, wrr_weight_mode:
        Parameters of the WRR emulation (see bandwidth.wrr).
    use_flow_tables:
        When True, Ψ̈ estimates flow through the deployment-shaped
        observation plane (per-receiver Jenkins-hash flow tables merged by
        the head receiver, :mod:`repro.core.receiver`) instead of being
        read directly off coflow state.  The two paths are numerically
        equivalent; the plane costs extra bookkeeping and exists for
        architectural fidelity and per-receiver instrumentation.
    hr_failover_rounds:
        δ-rounds a job tolerates its head receiver being on a crashed
        host before the peers elect a replacement (the lowest-numbered
        alive receiver host).  Until the election the job's receivers
        keep scheduling on their stale priority view.
    stale_psi_bound:
        Seconds of HR-sync staleness receivers tolerate before
        discarding stale Ψ̈ decisions and falling back to the local
        default (highest priority, the no-information prior).  ``None``
        (default) disables the bound: receivers continue on stale Ψ̈
        indefinitely — the paper's graceful-degradation baseline.
    """

    num_classes: int = DEFAULT_NUM_CLASSES
    psi_first: float = 10e6
    psi_base: float = 10.0
    update_interval: float = 8e-3
    beta_floor: float = 0.1
    critical_path_bonus: float = 0.1
    critical_path_marks: int = 5
    starvation_mitigation: bool = True
    wrr_utilization: float = 0.9
    wrr_weight_mode: str = "inverse_wait"
    use_flow_tables: bool = False
    hr_failover_rounds: int = 2
    stale_psi_bound: Optional[float] = None

    thresholds: ExponentialThresholds = field(init=False)

    def __post_init__(self) -> None:
        if self.hr_failover_rounds < 1:
            raise SchedulerError(
                f"hr_failover_rounds must be >= 1, got {self.hr_failover_rounds}"
            )
        if self.stale_psi_bound is not None and self.stale_psi_bound <= 0:
            raise SchedulerError(
                f"stale_psi_bound must be positive, got {self.stale_psi_bound}"
            )
        if not 0.0 <= self.critical_path_bonus < 1.0:
            raise SchedulerError(
                f"critical_path_bonus must be in [0, 1), got {self.critical_path_bonus}"
            )
        if not 0.0 < self.beta_floor <= 1.0:
            raise SchedulerError(
                f"beta_floor must be in (0, 1], got {self.beta_floor}"
            )
        if self.update_interval <= 0:
            raise SchedulerError("update_interval must be positive")
        self.thresholds = ExponentialThresholds(
            self.num_classes, first=self.psi_first, base=self.psi_base
        )
