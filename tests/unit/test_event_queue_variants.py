"""Event-queue variants: bucket/heap parity and timecmp-consistent draining.

Two regressions are locked in here:

* the batch-horizon test (``has_event_within``) applies the same float
  time tolerance as the push-side watermark guard, so a same-instant
  batch straddling the watermark can never be split into two batches
  (each would pay a redundant reallocation);
* :class:`BucketEventQueue` implements exactly the heap queue's
  ``(time, kind, seq)`` total order, including pushes landing in a
  bucket that is already being drained.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import SimulationError
from repro.simulator.events import (
    EVENT_QUEUE_VARIANTS,
    BucketEventQueue,
    EventKind,
    EventQueue,
    make_event_queue,
)
from repro.simulator.timecmp import time_resolution

ALL_VARIANTS = list(EVENT_QUEUE_VARIANTS)


class TestFactory:
    def test_heap_is_default(self):
        assert isinstance(make_event_queue(), EventQueue)

    def test_bucket_variant(self):
        assert isinstance(make_event_queue("bucket"), BucketEventQueue)

    def test_unknown_variant_raises(self):
        with pytest.raises(SimulationError, match="unknown event queue"):
            make_event_queue("fibonacci")


@pytest.mark.parametrize("variant", ALL_VARIANTS)
class TestSharedSemantics:
    def test_push_pop_orders_by_time_kind_seq(self, variant):
        queue = make_event_queue(variant)
        queue.push(2.0, EventKind.FLOW_COMPLETION)
        queue.push(1.0, EventKind.SCHEDULER_UPDATE)
        queue.push(1.0, EventKind.JOB_ARRIVAL)
        queue.push(1.0, EventKind.JOB_ARRIVAL)
        popped = [(e.time, e.kind, e.seq) for e in (queue.pop() for _ in range(4))]
        assert popped == sorted(popped)
        assert popped[0][1] is EventKind.JOB_ARRIVAL

    def test_watermark_guard(self, variant):
        queue = make_event_queue(variant)
        queue.push(5.0, EventKind.JOB_ARRIVAL)
        queue.pop()
        assert queue.watermark == 5.0
        queue.push(5.0, EventKind.SCHEDULER_UPDATE)  # same instant: legal
        with pytest.raises(SimulationError, match="behind the pop watermark"):
            queue.push(4.0, EventKind.FLOW_COMPLETION)

    def test_negative_time_rejected(self, variant):
        queue = make_event_queue(variant)
        with pytest.raises(SimulationError, match="negative time"):
            queue.push(-0.5, EventKind.JOB_ARRIVAL)

    def test_pop_empty_raises(self, variant):
        queue = make_event_queue(variant)
        with pytest.raises(SimulationError, match="empty event queue"):
            queue.pop()

    def test_len_and_bool(self, variant):
        queue = make_event_queue(variant)
        assert not queue and len(queue) == 0
        queue.push(1.0, EventKind.JOB_ARRIVAL)
        assert queue and len(queue) == 1
        queue.pop()
        assert not queue

    def test_has_event_within_empty(self, variant):
        queue = make_event_queue(variant)
        assert not queue.has_event_within(math.inf)

    def test_has_event_within_plain_cases(self, variant):
        queue = make_event_queue(variant)
        queue.push(10.0, EventKind.JOB_ARRIVAL)
        assert queue.has_event_within(10.0)
        assert queue.has_event_within(11.0)
        assert not queue.has_event_within(9.0)

    def test_same_instant_batch_straddling_watermark_not_split(self, variant):
        """The S2 regression: push tolerates float-resolution scheduling
        around the watermark, so the drain horizon must tolerate the same
        band — a raw ``<=`` here used to split the batch in two."""
        batch_time = 1000.0
        tick = time_resolution(batch_time)
        queue = make_event_queue(variant)
        queue.push(batch_time, EventKind.JOB_ARRIVAL)
        queue.pop()  # watermark = batch_time; runtime horizon below
        horizon = batch_time + tick
        # An event one resolution step past the horizon still denotes the
        # same simulation instant (push would equally have accepted it one
        # step *behind* the watermark).
        queue.push(batch_time + 2.0 * tick, EventKind.FLOW_COMPLETION)
        assert queue.has_event_within(horizon)

    def test_event_beyond_resolution_stays_out_of_batch(self, variant):
        batch_time = 1000.0
        tick = time_resolution(batch_time)
        queue = make_event_queue(variant)
        queue.push(batch_time + 10.0 * tick, EventKind.FLOW_COMPLETION)
        assert not queue.has_event_within(batch_time + tick)


class TestBucketHeapParity:
    def _interleaving(self):
        # Deterministic pseudo-random times with heavy duplication: the
        # bucket queue's raison d'etre is exactly-equal timestamps.
        state = 12345
        times = []
        for _ in range(300):
            state = (state * 1103515245 + 12345) % (1 << 31)
            times.append(float(state % 7))
        kinds = [EventKind(state_i % 5) for state_i in range(300)]
        return list(zip(times, kinds))

    def test_identical_pop_sequence(self):
        heap = make_event_queue("heap")
        bucket = make_event_queue("bucket")
        for time, kind in self._interleaving():
            heap.push(time, kind, payload=("p", time))
            bucket.push(time, kind, payload=("p", time))
        out_heap = [
            (e.time, e.kind, e.seq, e.payload)
            for e in (heap.pop() for _ in range(len(heap)))
        ]
        out_bucket = [
            (e.time, e.kind, e.seq, e.payload)
            for e in (bucket.pop() for _ in range(len(bucket)))
        ]
        assert out_heap == out_bucket

    def test_push_into_draining_bucket(self):
        """A push landing in the bucket currently being drained must slot
        into (kind, seq) order among the *remaining* rows — exactly what
        the heap does for an equal-timestamp push mid-batch."""
        heap = make_event_queue("heap")
        bucket = make_event_queue("bucket")
        for queue in (heap, bucket):
            queue.push(3.0, EventKind.SCHEDULER_UPDATE)
            queue.push(3.0, EventKind.FAULT)
            queue.push(3.0, EventKind.REPAIR)
            first = queue.pop()
            assert first.kind is EventKind.SCHEDULER_UPDATE
            # Arrives mid-drain with a kind ahead of the remaining rows.
            queue.push(3.0, EventKind.JOB_ARRIVAL)
        seq_heap = [heap.pop().kind for _ in range(len(heap))]
        seq_bucket = [bucket.pop().kind for _ in range(len(bucket))]
        assert seq_heap == seq_bucket
        assert seq_heap[0] is EventKind.JOB_ARRIVAL

    def test_bucket_cleanup_after_drain(self):
        queue = make_event_queue("bucket")
        queue.push(1.0, EventKind.JOB_ARRIVAL)
        queue.push(1.0, EventKind.JOB_ARRIVAL)
        queue.push(2.0, EventKind.JOB_ARRIVAL)
        queue.pop()
        queue.pop()
        assert queue.peek_time() == 2.0
        queue.pop()
        assert queue.peek_time() is None
        assert len(queue) == 0
