"""The checkpoint hard guarantee: restore → run is bit-identical.

Parity matrix per the acceptance criteria: two schedulers × two
topologies, plus a chaos fault profile, plus both event-queue variants —
each case checkpoints a half-finished run, restores it, runs to
completion, and requires the exact job-completion times and event count
of the uninterrupted run.  The SIGKILL test does the same across a real
process boundary: the first run is killed dead mid-flight and a fresh
interpreter finishes from its last on-disk checkpoint.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.common import (
    ScenarioConfig,
    build_fault_profile,
    build_jobs,
    build_topology,
)
from repro.schedulers.registry import make_scheduler
from repro.simulator.checkpoint import restore_simulation, write_checkpoint
from repro.simulator.runtime import CoflowSimulation

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def _build(config: ScenarioConfig, scheduler: str, **sim_kwargs):
    topology = build_topology(config)
    jobs = build_jobs(config, topology.num_hosts)
    return CoflowSimulation(
        topology,
        make_scheduler(scheduler),
        jobs,
        faults=build_fault_profile(config),
        **sim_kwargs,
    )


PARITY_CASES = [
    # (case id, scheduler, config overrides, event queue variant)
    ("pfs-fattree", "pfs", {}, "heap"),
    ("gurita-fattree", "gurita", {}, "heap"),
    ("pfs-bigswitch", "pfs", {"topology": "bigswitch"}, "heap"),
    ("gurita-bigswitch", "gurita", {"topology": "bigswitch"}, "heap"),
    ("pfs-chaos", "pfs", {"fault_profile": "link-flap"}, "heap"),
    ("gurita-chaos", "gurita", {"fault_profile": "link-flap"}, "bucket"),
    ("pfs-bucket", "pfs", {}, "bucket"),
]


class TestMidRunRestoreParity:
    @pytest.mark.parametrize(
        "scheduler,overrides,variant",
        [case[1:] for case in PARITY_CASES],
        ids=[case[0] for case in PARITY_CASES],
    )
    def test_restore_is_bit_identical(
        self, tmp_path, scheduler, overrides, variant
    ):
        config = ScenarioConfig(
            name="ckpt-parity", num_jobs=10, seed=7, **overrides
        )
        reference = _build(config, scheduler, event_queue=variant).run()

        interrupted = _build(config, scheduler, event_queue=variant)
        interrupted.run(until=reference.makespan / 2)
        path = tmp_path / "mid.ckpt"
        write_checkpoint(interrupted, path)

        resumed = restore_simulation(path).run()
        assert (
            resumed.job_completion_times()
            == reference.job_completion_times()
        )
        assert resumed.events_processed == reference.events_processed
        assert resumed.reallocations == reference.reallocations

    def test_double_checkpoint_chain_stays_identical(self, tmp_path):
        """Checkpoint → restore → checkpoint again → restore again."""
        config = ScenarioConfig(name="ckpt-chain", num_jobs=8, seed=5)
        reference = _build(config, "gurita").run()

        sim = _build(config, "gurita")
        sim.run(until=reference.makespan / 3)
        first = tmp_path / "first.ckpt"
        write_checkpoint(sim, first)

        middle = restore_simulation(first)
        middle.run(until=2 * reference.makespan / 3)
        second = tmp_path / "second.ckpt"
        write_checkpoint(middle, second)

        final = restore_simulation(second).run()
        assert (
            final.job_completion_times() == reference.job_completion_times()
        )
        assert final.events_processed == reference.events_processed


_CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.experiments.common import (
    ScenarioConfig, build_fault_profile, build_jobs, build_topology,
)
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import CoflowSimulation

config = ScenarioConfig(name="sigkill", num_jobs=60, seed=13)
topology = build_topology(config)
jobs = build_jobs(config, topology.num_hosts)
sim = CoflowSimulation(
    topology, make_scheduler("gurita"), jobs,
    faults=build_fault_profile(config),
    checkpoint_every=1e-4, checkpoint_path={ckpt!r},
)
sim.run()
"""


class TestSigkillRecovery:
    def test_killed_run_resumes_to_identical_fingerprint(self, tmp_path):
        config = ScenarioConfig(name="sigkill", num_jobs=60, seed=13)
        reference = _build(config, "gurita").run()

        ckpt = tmp_path / "victim.ckpt"
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _CHILD_SCRIPT.format(src=str(REPO_SRC), ckpt=str(ckpt)),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not ckpt.exists():
                if child.poll() is not None:
                    break  # finished before we could kill it — still valid
                if time.monotonic() > deadline:
                    pytest.fail("child never wrote a checkpoint")
                time.sleep(0.005)
            if child.poll() is None:
                os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30.0)

        assert ckpt.exists(), "no checkpoint survived the kill"
        resumed = restore_simulation(ckpt).run()
        assert (
            resumed.job_completion_times()
            == reference.job_completion_times()
        )
        assert resumed.events_processed == reference.events_processed
