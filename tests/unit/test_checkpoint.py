"""Unit tests for the checkpoint file format and restore plumbing."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import CheckpointError
from repro.experiments.common import ScenarioConfig, build_jobs, build_topology
from repro.schedulers.registry import make_scheduler
from repro.simulator.checkpoint import (
    CHECKPOINT_SCHEMA,
    read_checkpoint,
    restore_simulation,
    write_checkpoint,
)
from repro.simulator.runtime import CoflowSimulation


def _small_sim() -> CoflowSimulation:
    config = ScenarioConfig(name="ckpt-unit", num_jobs=4, seed=3)
    topology = build_topology(config)
    jobs = build_jobs(config, topology.num_hosts)
    return CoflowSimulation(topology, make_scheduler("pfs"), jobs)


class TestFileFormat:
    def test_write_read_round_trip(self, tmp_path):
        sim = _small_sim()
        sim.run(until=0.01)
        path = tmp_path / "sim.ckpt"
        fingerprint = write_checkpoint(sim, path, meta={"scheduler": "pfs"})
        payload = read_checkpoint(path)
        assert payload["schema"] == CHECKPOINT_SCHEMA
        assert payload["fingerprint"] == fingerprint
        assert payload["meta"] == {"scheduler": "pfs"}
        assert payload["simulated_time"] == sim.now
        assert isinstance(payload["state"], dict)

    def test_atomic_write_leaves_no_tmp_file(self, tmp_path):
        sim = _small_sim()
        path = tmp_path / "sim.ckpt"
        write_checkpoint(sim, path)
        assert path.exists()
        assert not (tmp_path / "sim.ckpt.tmp").exists()

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_checkpoint(tmp_path / "absent.ckpt")

    def test_truncated_checkpoint_is_detected(self, tmp_path):
        sim = _small_sim()
        path = tmp_path / "sim.ckpt"
        write_checkpoint(sim, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_corrupted_body_fails_fingerprint(self, tmp_path):
        sim = _small_sim()
        path = tmp_path / "sim.ckpt"
        write_checkpoint(sim, path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        body = bytearray(payload["body"])
        body[len(body) // 2] ^= 0xFF
        payload["body"] = bytes(body)
        path.write_bytes(pickle.dumps(payload, protocol=4))
        with pytest.raises(CheckpointError, match="fingerprint"):
            read_checkpoint(path)

    def test_wrong_magic_and_garbage_rejected(self, tmp_path):
        path = tmp_path / "not-a-checkpoint"
        path.write_bytes(pickle.dumps({"magic": "something-else"}))
        with pytest.raises(CheckpointError):
            read_checkpoint(path)
        path.write_bytes(b"plain garbage, not even pickle")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_unsupported_schema_rejected(self, tmp_path):
        sim = _small_sim()
        path = tmp_path / "sim.ckpt"
        write_checkpoint(sim, path)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["schema"] = CHECKPOINT_SCHEMA + 1
        path.write_bytes(pickle.dumps(payload, protocol=4))
        with pytest.raises(CheckpointError, match="schema"):
            read_checkpoint(path)


class TestRestore:
    def test_restore_continues_to_identical_result(self, tmp_path):
        baseline = _small_sim()
        reference = baseline.run()

        sim = _small_sim()
        sim.run(until=reference.makespan / 2)
        path = tmp_path / "mid.ckpt"
        write_checkpoint(sim, path)

        resumed = restore_simulation(path).run()
        assert (
            resumed.job_completion_times()
            == reference.job_completion_times()
        )
        assert resumed.events_processed == reference.events_processed

    def test_checkpoint_cadence_writes_and_resumes(self, tmp_path):
        config = ScenarioConfig(name="ckpt-cadence", num_jobs=4, seed=3)
        topology = build_topology(config)
        jobs = build_jobs(config, topology.num_hosts)
        path = tmp_path / "auto.ckpt"
        sim = CoflowSimulation(
            topology,
            make_scheduler("pfs"),
            jobs,
            checkpoint_every=0.001,
            checkpoint_path=path,
        )
        reference = sim.run()
        assert path.exists()  # at least one cadence checkpoint was cut
        resumed = restore_simulation(path).run()
        assert (
            resumed.job_completion_times()
            == reference.job_completion_times()
        )

    def test_checkpoint_every_requires_path(self):
        config = ScenarioConfig(name="ckpt-flags", num_jobs=2, seed=1)
        topology = build_topology(config)
        jobs = build_jobs(config, topology.num_hosts)
        with pytest.raises(Exception):
            CoflowSimulation(
                topology, make_scheduler("pfs"), jobs, checkpoint_every=1.0
            )

    def test_scheduler_class_mismatch_rejected(self, tmp_path):
        sim = _small_sim()
        sim.run(until=0.005)
        state = sim.snapshot_state()
        state["scheduler"]["state"]["class"] = "SomethingElse"
        with pytest.raises(CheckpointError):
            make_scheduler("pfs").restore_state(state["scheduler"]["state"])
