"""SIM306-SIM308: streaming-discipline rules (``--units``).

The memory half of the fourth simlint layer.  These rules pre-gate the
ROADMAP's million-job streaming refactor: once workload arrivals become
generators, nothing may silently materialize them back into RAM
(SIM306), the hot event loop may not grow unbounded per-event state
(SIM307), and the unit-annotation registry may not drift out of sync
with the tree (SIM308).

The checkers here are plain project walks — no unit inference — so they
take a :class:`~tools.simlint.callgraph.Project` plus an ``emit``
callback and stay independent of :mod:`tools.simlint.units`, which
orchestrates them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from tools.simlint.callgraph import FunctionInfo, ModuleInfo, Project
from tools.simlint.hotpaths import HotPathRegistry

#: emit(path, lineno, col, code, message)
Emit = Callable[[str, int, int, str, str], None]


@dataclass(frozen=True)
class MemRule:
    """Descriptor of one streaming-discipline rule."""

    code: str
    name: str
    description: str


MEM_RULES: Tuple[MemRule, ...] = (
    MemRule(
        code="SIM306",
        name="generator-materialization",
        description=(
            "list()/sorted()/tuple() materializes the output of a "
            "workloads-package generator function in one shot. Arrival "
            "streams must stay streaming — iterate lazily or bound the "
            "window explicitly."
        ),
    ),
    MemRule(
        code="SIM307",
        name="hot-loop-accumulation",
        description=(
            "A registered hot-path function appends/extends onto shared "
            "state (self attribute or module global) inside a loop and "
            "never drains it — per-event memory growth the event loop "
            "cannot shed. Drain the container in the same function or "
            "acknowledge with '# simlint: ignore[SIM307] (reason)'."
        ),
    ),
    MemRule(
        code="SIM308",
        name="units-registry-drift",
        description=(
            "A repro module uses unit annotations without being listed in "
            "UNITS_MODULES (tools/simlint/units.py), or a registered "
            "module no longer carries any — the --units layer only "
            "analyzes registered roots, so drift silently unguards code."
        ),
    ),
)

MEM_RULES_BY_CODE: Dict[str, MemRule] = {rule.code: rule for rule in MEM_RULES}

#: Builtins that force a whole iterable into memory at once.
_MATERIALIZERS = frozenset({"builtins.list", "builtins.sorted", "builtins.tuple"})

#: Receiver methods that grow a container.
_GROWERS = frozenset({"append", "extend"})

#: Receiver methods that shrink or reset a container (a drain).
_DRAINERS = frozenset({"pop", "popleft", "popitem", "clear", "remove"})


def _is_workloads_module(name: str) -> bool:
    parts = name.split(".")
    return "workloads" in parts


def _is_generator_function(func: FunctionInfo) -> bool:
    nested: Set[ast.AST] = set()
    for node in ast.walk(func.node):
        if node is not func.node and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            nested.update(ast.walk(node))
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) and node not in nested
        for node in ast.walk(func.node)
    )


def check_generator_materialization(project: Project, emit: Emit) -> None:
    """SIM306: list()/sorted()/tuple() around a workloads generator call."""
    for mod in project.modules.values():
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            wrapper = project.resolve_expr(node.func, mod)
            if wrapper not in _MATERIALIZERS:
                continue
            inner = node.args[0]
            if not isinstance(inner, ast.Call):
                continue
            target = _resolve_call_in_context(project, mod, node, inner)
            if target is None:
                continue
            func = project.functions.get(target)
            if func is None:
                continue
            if not _is_workloads_module(func.module):
                continue
            if not _is_generator_function(func):
                continue
            short = wrapper.rsplit(".", 1)[-1]
            emit(
                mod.path,
                node.lineno,
                node.col_offset,
                "SIM306",
                f"{short}() materializes workload arrival generator "
                f"{target} — iterate the stream lazily instead",
            )


def _resolve_call_in_context(
    project: Project, mod: ModuleInfo, outer: ast.Call, inner: ast.Call
) -> Optional[str]:
    """Resolve ``inner.func``, using the enclosing class when inside a method."""
    for cls in mod.classes.values():
        for method in cls.methods.values():
            if outer in set(ast.walk(method.node)):
                return project.resolve_expr(inner.func, mod, cls=cls)
    return project.resolve_expr(inner.func, mod)


def _shared_receiver(
    node: ast.Attribute, func: FunctionInfo, mod: ModuleInfo
) -> Optional[str]:
    """Name the shared container a ``.append``/``.extend`` call grows.

    Only ``self.<attr>`` receivers and module globals count as shared;
    plain locals are scratch space the function owns.
    """
    value = node.value
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
    ):
        return f"self.{value.attr}"
    if isinstance(value, ast.Name):
        name = value.id
        if name in func.params:
            return None
        if Project._is_local_name(func, name):
            return None
        if name in mod.global_names or name in mod.mutable_globals:
            return name
    return None


def _drained_receivers(func: FunctionInfo) -> Set[str]:
    """Receivers the function also shrinks, resets, or reassigns."""
    drained: Set[str] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _DRAINERS:
                drained.add(_receiver_key(node.func.value))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                drained.add(_receiver_key(target))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    drained.add(_receiver_key(target.value))
                else:
                    drained.add(_receiver_key(target))
    drained.discard("")
    return drained


def _receiver_key(node: ast.AST) -> str:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    if isinstance(node, ast.Name):
        return node.id
    return ""


def check_hot_accumulation(
    project: Project, registry: HotPathRegistry, emit: Emit
) -> None:
    """SIM307: undrained append/extend onto shared state in hot loops."""
    for full_name in sorted(registry.registered()):
        func = project.functions.get(full_name)
        if func is None:
            continue
        mod = project.modules[func.module]
        drained = _drained_receivers(func)
        for loop in ast.walk(func.node):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _GROWERS
                ):
                    continue
                shared = _shared_receiver(node.func, func, mod)
                if shared is None or shared in drained:
                    continue
                emit(
                    mod.path,
                    node.lineno,
                    node.col_offset,
                    "SIM307",
                    f"hot-path {full_name} grows {shared} with "
                    f".{node.func.attr}() inside its loop and never drains "
                    "it — unbounded per-event accumulation",
                )


def check_registry_drift(
    project: Project,
    registered: FrozenSet[str],
    prefix: str,
    usage_lines: Dict[str, int],
    emit: Emit,
) -> None:
    """SIM308: two-way drift between unit annotations and UNITS_MODULES.

    ``usage_lines`` maps module name -> first line carrying a unit
    annotation (computed by the inference engine).  Registered modules
    that are not loaded are skipped so partial lints stay clean.
    """
    for name, lineno in sorted(usage_lines.items()):
        if not name.startswith(prefix) or name in registered:
            continue
        mod = project.modules[name]
        emit(
            mod.path,
            lineno,
            0,
            "SIM308",
            f"module {name} uses unit annotations but is not listed in "
            "UNITS_MODULES (tools/simlint/units.py) — register it so "
            "--units analyzes it",
        )
    for name in sorted(registered):
        mod = project.modules.get(name)
        if mod is None:
            continue
        if name in usage_lines:
            continue
        emit(
            mod.path,
            1,
            0,
            "SIM308",
            f"module {name} is listed in UNITS_MODULES but no longer "
            "carries any unit annotations — stale registry entry",
        )
