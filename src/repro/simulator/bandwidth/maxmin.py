"""Max-min fair rate allocation by progressive filling.

This is the simulator's model of TCP sharing (the paper implements "a rate
limiter that behaves like TCP"): flows traversing a bottleneck link share it
equally, and no flow can increase its rate without decreasing that of a flow
with an equal or smaller rate (Bertsekas & Gallager's water-filling).

The implementation is vectorised over links with numpy: each round finds
the bottleneck fair share, freezes every flow crossing a bottleneck link at
that rate, and subtracts the allocation — the hot path of the whole
simulator.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

_EPSILON = 1e-9

#: A flow's route: the directed link ids it traverses.
Route = Tuple[int, ...]


def water_fill(
    flow_routes: Mapping[int, Route],
    residual: Union[np.ndarray, List[float]],
) -> Dict[int, float]:
    """Max-min fair rates for ``flow_routes`` within ``residual`` capacity.

    ``residual`` is indexed by link id and is **mutated** (allocated
    bandwidth is subtracted) so callers can layer allocations, e.g. one
    priority class after another.  Pass a ``numpy.ndarray`` to avoid a
    copy; plain lists are converted (and mutated via slice write-back).

    Returns a rate (bytes/second) for every flow in ``flow_routes``.
    """
    rates: Dict[int, float] = {}
    if not flow_routes:
        return rates

    is_array = isinstance(residual, np.ndarray)
    res = residual if is_array else np.asarray(residual, dtype=float)

    flow_ids = list(flow_routes)
    routes = [flow_routes[fid] for fid in flow_ids]

    # Per-link flow membership and per-link unfrozen counts.
    counts = np.zeros(len(res), dtype=np.int64)
    link_members: Dict[int, List[int]] = {}
    for index, route in enumerate(routes):
        for link_id in route:
            counts[link_id] += 1
            link_members.setdefault(link_id, []).append(index)

    frozen = np.zeros(len(flow_ids), dtype=bool)
    remaining = len(flow_ids)
    while remaining > 0:
        with np.errstate(divide="ignore", invalid="ignore"):
            shares = np.where(
                counts > 0, np.maximum(res, 0.0) / np.maximum(counts, 1), np.inf
            )
        bottleneck_share = float(shares.min())
        if not np.isfinite(bottleneck_share):
            # Remaining flows traverse no contended link (cannot happen for
            # well-formed routes, but guard against it).
            for index in np.flatnonzero(~frozen):
                rates[flow_ids[index]] = 0.0
            break
        bottleneck_links = np.flatnonzero(shares <= bottleneck_share + _EPSILON)
        newly_frozen: List[int] = []
        for link_id in bottleneck_links:
            for index in link_members.get(int(link_id), ()):
                if not frozen[index]:
                    frozen[index] = True
                    newly_frozen.append(index)
        if not newly_frozen:
            # Defensive: should be impossible, but never spin forever.
            for index in np.flatnonzero(~frozen):
                rates[flow_ids[index]] = bottleneck_share
            break
        for index in newly_frozen:
            rates[flow_ids[index]] = bottleneck_share
            for link_id in routes[index]:
                res[link_id] -= bottleneck_share
                counts[link_id] -= 1
        remaining -= len(newly_frozen)

    # Clean up float drift: clamp tiny negative residuals to zero.
    np.clip(res, 0.0, None, out=res)
    if not is_array:
        residual[:] = res.tolist()
    return rates


def allocate_maxmin(
    flow_routes: Mapping[int, Route],
    capacities: Sequence[float],
) -> Dict[int, float]:
    """Max-min fair rates against fresh link capacities (non-mutating)."""
    return water_fill(flow_routes, np.array(capacities, dtype=float))
