"""Flow: a single point-to-point data transfer inside a coflow.

A flow carries ``size_bytes`` from a sender host to a receiver host.  The
simulator decrements :attr:`Flow.remaining_bytes` as bandwidth is granted.
Flows are the unit the bandwidth allocator works on; coflows and jobs are
aggregations defined on top of them.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Tuple

from repro.errors import InvalidJobError

if TYPE_CHECKING:  # annotation-only: a runtime import would cycle
    from repro.simulator.units import Bytes, BytesPerSec, Seconds

#: Volume below which a flow is considered finished (guards float round-off).
VOLUME_EPSILON: Bytes = 1e-6


class FlowState(enum.Enum):
    """Lifecycle of a flow inside the simulator."""

    PENDING = "pending"  #: parent coflow not yet released
    ACTIVE = "active"  #: transmitting (possibly at rate zero)
    DONE = "done"  #: all bytes delivered


class Flow:
    """A single sender-to-receiver transfer.

    A ``__slots__`` class rather than a dataclass: flows are the hottest
    objects in the simulator (every event batch touches every active
    flow's ``rate`` / ``remaining_bytes``), and slotted attribute access
    shaves both time and memory at a million-flow scale.  The constructor,
    equality, and repr mirror the historical dataclass exactly.

    Parameters
    ----------
    flow_id:
        Globally unique identifier.
    coflow_id:
        The coflow this flow belongs to.
    src, dst:
        Sender and receiver host identifiers (indices into the topology's
        host list).
    size_bytes:
        Total number of bytes to transfer; must be positive.
    """

    __slots__ = (
        "flow_id",
        "coflow_id",
        "src",
        "dst",
        "size_bytes",
        "state",
        "remaining_bytes",
        "start_time",
        "finish_time",
        "rate",
        "priority",
        "route",
    )

    def __init__(
        self,
        flow_id: int,
        coflow_id: int,
        src: int,
        dst: int,
        size_bytes: Bytes,
        state: FlowState = FlowState.PENDING,
        remaining_bytes: Bytes = 0.0,
        start_time: Optional[Seconds] = None,
        finish_time: Optional[Seconds] = None,
        rate: BytesPerSec = 0.0,
        priority: Optional[int] = None,
        route: Tuple[int, ...] = (),
    ) -> None:
        self.flow_id = flow_id
        self.coflow_id = coflow_id
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.state = state
        #: Volume still to deliver; decremented by the runtime.
        self.remaining_bytes = remaining_bytes
        self.start_time = start_time
        self.finish_time = finish_time
        #: Current rate in bytes/second, set by the bandwidth allocator.
        self.rate = rate
        #: Priority class currently assigned (0 = highest).  ``None`` until
        #: a scheduler assigns one.
        self.priority = priority
        #: Route as a tuple of directed link ids; filled in by the router.
        self.route = route
        if self.size_bytes <= 0:
            raise InvalidJobError(
                f"flow {self.flow_id} must have positive size, got {self.size_bytes}"
            )
        if self.src == self.dst:
            raise InvalidJobError(
                f"flow {self.flow_id} has identical src and dst host {self.src}"
            )
        self.remaining_bytes = float(self.size_bytes)

    def _astuple(self) -> Tuple[object, ...]:
        return (
            self.flow_id,
            self.coflow_id,
            self.src,
            self.dst,
            self.size_bytes,
            self.state,
            self.remaining_bytes,
            self.start_time,
            self.finish_time,
            self.rate,
            self.priority,
            self.route,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Flow:
            return NotImplemented
        assert isinstance(other, Flow)
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return (
            f"Flow(flow_id={self.flow_id!r}, coflow_id={self.coflow_id!r}, "
            f"src={self.src!r}, dst={self.dst!r}, "
            f"size_bytes={self.size_bytes!r}, state={self.state!r}, "
            f"remaining_bytes={self.remaining_bytes!r}, "
            f"start_time={self.start_time!r}, finish_time={self.finish_time!r}, "
            f"rate={self.rate!r}, priority={self.priority!r}, "
            f"route={self.route!r})"
        )

    @property
    def bytes_sent(self) -> Bytes:
        """Bytes already delivered to the receiver."""
        return self.size_bytes - self.remaining_bytes

    @property
    def is_done(self) -> bool:
        return self.state is FlowState.DONE

    @property
    def is_active(self) -> bool:
        return self.state is FlowState.ACTIVE

    def start(self, now: Seconds) -> None:
        """Transition PENDING -> ACTIVE at simulation time ``now``."""
        if self.state is not FlowState.PENDING:
            raise InvalidJobError(
                f"flow {self.flow_id} started twice (state={self.state})"
            )
        self.state = FlowState.ACTIVE
        self.start_time = now

    def advance(self, elapsed: Seconds) -> None:
        """Consume volume for ``elapsed`` seconds at the current rate."""
        if self.state is not FlowState.ACTIVE or elapsed <= 0.0:
            return
        self.remaining_bytes = max(0.0, self.remaining_bytes - self.rate * elapsed)

    def finish(self, now: Seconds) -> None:
        """Transition ACTIVE -> DONE at simulation time ``now``."""
        if self.state is not FlowState.ACTIVE:
            raise InvalidJobError(
                f"flow {self.flow_id} finished while not active (state={self.state})"
            )
        self.state = FlowState.DONE
        self.remaining_bytes = 0.0
        self.rate = 0.0
        self.finish_time = now

    @property
    def nearly_done(self) -> bool:
        """True when remaining volume is below the completion epsilon."""
        return self.remaining_bytes <= VOLUME_EPSILON

    def duration(self) -> Optional[Seconds]:
        """Completion time of this flow, or ``None`` if not finished."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time
