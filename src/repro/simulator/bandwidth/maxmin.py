"""Max-min fair rate allocation by progressive filling.

This is the simulator's model of TCP sharing (the paper implements "a rate
limiter that behaves like TCP"): flows traversing a bottleneck link share it
equally, and no flow can increase its rate without decreasing that of a flow
with an equal or smaller rate (Bertsekas & Gallager's water-filling).

This is the hot path of the whole simulator, and two implementations of
the round loop live behind one API.  The default
(:func:`_water_fill_scalar`) maintains the per-link fair-share vector
*incrementally*: the full vector is derived once per fill, then each
round only finds its minimum, freezes the members of the bottleneck
links, and recomputes the share at only the links those flows touched;
a link's count hits zero the round it bottlenecks, so each member list
is scanned at most once per fill.  The alternative
(:func:`_water_fill_vectorized`, gated by ``_VECTOR_DISPATCH``) runs
each round on a flat CSR-style view of the routes
(``np.minimum.reduceat`` for per-flow bottleneck detection,
``np.subtract.at`` for the residual update).  Both replicate the
historical loop's arithmetic operation-for-operation — within one round
every frozen flow subtracts the *same* bottleneck share from its links
in the same order — so the produced rates are bit-identical, and the
parity suite holds them to that.

The membership structures (which flows cross which link) are factored into
:class:`LinkMembership` so the incremental engine
(:mod:`repro.simulator.bandwidth.engine`) can keep them alive across
allocation epochs and mutate them by flow add/remove deltas instead of
rebuilding them on every call.  Every from-scratch construction is counted
(see :func:`membership_rebuilds`) — the engine's acceptance metric is built
on exactly this counter.

Float comparisons against the bottleneck share and against exhausted
residual capacity are routed through the blessed helpers
:func:`share_at_most` / :func:`capacity_exhausted` (the
:mod:`repro.simulator.timecmp` discipline applied to rates): capacities
revoked to zero by fault injection, or degraded to within ``_EPSILON`` of
zero, must freeze their flows instead of spinning the progressive-filling
loop on sub-epsilon residuals.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np
import numpy.typing as npt

from repro.simulator.hotpath import hot_path
from repro.simulator.units import BytesPerSec

#: Rate tolerance for freeze/exhaustion comparisons (bytes/second).
_EPSILON: BytesPerSec = 1e-9

#: Flow counts below which the vectorised round is never worth trying
#: (numpy call overhead dominates tiny memberships).
_VECTOR_MIN_FLOWS = 12

#: Whether :func:`water_fill_membership` dispatches to the CSR round loop
#: at ``_VECTOR_MIN_FLOWS``+ flows.  Calibration on fattree-shaped
#: memberships (see docs/performance.md) found the incremental-share
#: scalar loop faster at *every* measured size — its python freeze work
#: touches only bottleneck-link members, while each CSR round pays
#: O(total hops) in the gather/reduceat — so the vectorised path is kept
#: behind this switch for mass-tie workloads and the parity suite.
_VECTOR_DISPATCH = False


def share_at_most(
    shares: npt.NDArray[np.float64],
    bottleneck: BytesPerSec,
    out: Union[npt.NDArray[np.bool_], None] = None,
) -> npt.NDArray[np.bool_]:
    """Blessed comparison: which ``shares`` equal ``bottleneck`` within
    tolerance?

    The absolute ``_EPSILON`` slack mirrors the historical behaviour (and
    keeps the figure fingerprints bit-identical); links whose fair share
    ties with the bottleneck within it freeze in the same round instead of
    spinning one near-empty round each.  ``out`` lets the hot loop reuse
    a round-scratch buffer.
    """
    result: npt.NDArray[np.bool_] = np.less_equal(
        shares, bottleneck + _EPSILON, out=out
    )
    return result


def capacity_exhausted(capacity: BytesPerSec) -> bool:
    """Blessed comparison: is a residual capacity effectively zero?

    Fault-degraded links (``set_capacity`` to zero, or drift within
    ``_EPSILON`` of it) cannot host progress; their flows must freeze at
    share zero rather than keep the filling loop alive.
    """
    return capacity <= _EPSILON

#: A flow's route: the directed link ids it traverses.
Route = Tuple[int, ...]

#: Full from-scratch membership constructions (non-empty flow sets only);
#: the legacy path pays one per water-fill, the engine only on invalidation.
_membership_rebuilds = 0


def membership_rebuilds() -> int:
    """How many times link-membership structures were built from scratch."""
    return _membership_rebuilds


def reset_membership_rebuilds() -> None:
    """Reset the rebuild counter (benchmarks call this between runs)."""
    global _membership_rebuilds
    _membership_rebuilds = 0


class _CsrView:
    """Flat CSR view of a membership's routes, plus reusable scratch.

    Built once per membership mutation generation (see
    :meth:`LinkMembership.csr`) instead of once per water-fill.  The
    scratch buffers let the round loop run entirely with ``out=``
    arguments; a membership is never water-filled reentrantly, so the
    buffers cannot alias a concurrent fill.
    """

    __slots__ = (
        "flow_ids", "arrs", "lengths", "links_flat", "starts",
        "all_nonempty", "nonempty", "starts_nonempty", "fancy_safe",
        "shares", "num_buf", "cpos", "gather", "seg_min", "active",
        "newly_buf",
    )

    def __init__(self, membership: "LinkMembership") -> None:
        self.flow_ids = list(membership.routes)
        n = len(self.flow_ids)
        arrays = membership.route_arrays
        self.arrs = [arrays[flow_id] for flow_id in self.flow_ids]
        self.lengths = np.fromiter(
            (a.size for a in self.arrs), dtype=np.intp, count=n
        )
        self.links_flat = (
            np.concatenate(self.arrs) if n else np.empty(0, dtype=np.intp)
        )
        ptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(self.lengths, out=ptr[1:])
        self.starts = ptr[:-1]
        self.nonempty = self.lengths > 0
        self.all_nonempty = bool(self.nonempty.all())
        self.starts_nonempty = self.starts[self.nonempty]
        #: Routes are simple paths, so links within one route are distinct
        #: and buffered fancy-index subtraction equals ``np.subtract.at``.
        #: Guarded anyway: a degenerate route with repeated links falls
        #: back to the unbuffered path.
        self.fancy_safe = all(
            len(set(route)) == len(route)
            for route in membership.routes.values()
        )
        num_links = membership.num_links
        self.shares = np.empty(num_links, dtype=np.float64)
        self.num_buf = np.empty(num_links, dtype=np.float64)
        self.cpos = np.empty(num_links, dtype=bool)
        self.gather = np.empty(self.links_flat.size, dtype=np.float64)
        self.seg_min = np.empty(n, dtype=np.float64)
        self.active = np.empty(n, dtype=bool)
        self.newly_buf = np.empty(n, dtype=bool)


class LinkMembership:
    """Per-link flow membership: who crosses each link, and how many.

    Holds exactly the structures the water-filling loop needs — a route per
    flow, an insertion-ordered member table per link, and a per-link count
    vector — and supports O(|route|) add/remove so the incremental engine
    can maintain one instance across allocation epochs.

    ``link_members`` maps link id -> insertion-ordered dict used as an
    ordered set (values are ``None``); deterministic iteration order is what
    keeps engine allocations reproducible run to run.
    """

    __slots__ = (
        "num_links", "routes", "counts", "link_members", "route_arrays", "_csr"
    )

    def __init__(self, num_links: int) -> None:
        self.num_links = num_links
        self.routes: Dict[int, Route] = {}
        self.counts: npt.NDArray[np.int64] = np.zeros(num_links, dtype=np.int64)
        self.link_members: Dict[int, Dict[int, None]] = {}
        #: per-flow route as an index array, kept in lockstep with
        #: ``routes`` — the vectorised water-fill gathers these instead of
        #: re-materialising arrays from tuples every round.
        self.route_arrays: Dict[int, npt.NDArray[np.intp]] = {}
        #: lazily-built flat CSR view of the routes (see :meth:`csr`);
        #: dropped on any add/remove.
        self._csr: Union[_CsrView, None] = None

    @classmethod
    def from_routes(
        cls, flow_routes: Mapping[int, Route], num_links: int
    ) -> "LinkMembership":
        """Build membership from scratch (counted as a full rebuild)."""
        global _membership_rebuilds
        membership = cls(num_links)
        for flow_id, route in flow_routes.items():
            membership.add(flow_id, route)
        if flow_routes:
            _membership_rebuilds += 1
        return membership

    def add(self, flow_id: int, route: Route) -> None:
        if flow_id in self.routes:
            raise ValueError(f"flow {flow_id} already in membership")
        self.routes[flow_id] = route
        self.route_arrays[flow_id] = np.asarray(route, dtype=np.intp)
        self._csr = None
        for link_id in route:
            self.counts[link_id] += 1
            members = self.link_members.get(link_id)
            if members is None:
                # setdefault(link_id, {}) paid for an empty dict on every
                # hop; this allocates only when a link gains its first
                # member.
                members = self.link_members[link_id] = {}  # simlint: ignore[SIM202] (first-member only)
            members[flow_id] = None

    def remove(self, flow_id: int) -> None:
        route = self.routes.pop(flow_id)
        del self.route_arrays[flow_id]
        self._csr = None
        for link_id in route:
            self.counts[link_id] -= 1
            members = self.link_members[link_id]
            del members[flow_id]
            if not members:
                del self.link_members[link_id]

    def csr(self) -> "_CsrView":
        """The flat CSR view of the current routes, cached across fills.

        The incremental engine keeps memberships alive over many
        allocation epochs; rebuilding the concatenated link array every
        water-fill was measurable on the profile.  Any :meth:`add` /
        :meth:`remove` drops the cache.
        """
        view = self._csr
        if view is None:
            view = self._csr = _CsrView(self)
        return view

    def __len__(self) -> int:
        return len(self.routes)

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self.routes


@hot_path
def water_fill_membership(
    membership: LinkMembership,
    residual: npt.NDArray[np.float64],
) -> Dict[int, BytesPerSec]:
    """Max-min fair rates for ``membership`` within ``residual`` capacity.

    The core of :func:`water_fill`, operating on prebuilt membership
    structures.  ``membership`` is *not* mutated (the per-link counts are
    copied); ``residual`` *is* mutated — allocated bandwidth is subtracted
    and tiny negative drift is clamped — so callers can layer allocations,
    e.g. one priority class after another.
    """
    rates: Dict[int, BytesPerSec] = {}
    if not membership.routes:
        return rates

    if _VECTOR_DISPATCH and len(membership.routes) >= _VECTOR_MIN_FLOWS:
        _water_fill_vectorized(membership, residual, rates)
    else:
        _water_fill_scalar(membership, residual, rates)

    # Clean up float drift: clamp tiny negative residuals to zero.
    np.clip(residual, 0.0, None, out=residual)
    return rates


@hot_path
def _water_fill_scalar(
    membership: LinkMembership,
    res: npt.NDArray[np.float64],
    rates: Dict[int, BytesPerSec],
) -> None:
    """The historical per-flow loop; fastest for tiny memberships.

    Kept operation-for-operation identical to the vectorised path (same
    share formula, same freeze tolerance, same per-round subtractions) so
    both produce bit-identical rates — the parity suite asserts it.
    """
    routes = membership.routes
    shares = np.empty_like(res)
    num_buf = np.empty_like(res)
    mask_buf = np.empty(res.size, dtype=bool)

    # Initial share vector — same floats as the historical np.where
    # formulation: divide only where counts > 0, +inf everywhere else.
    # Subsequent rounds update *touched links only* with the identical
    # scalar formula (max(res, 0) / count), so every round sees exactly
    # the share vector the full recompute would have produced.
    shares.fill(np.inf)
    np.maximum(res, 0.0, out=num_buf)
    np.greater(membership.counts, 0, out=mask_buf)
    np.divide(num_buf, membership.counts, out=shares, where=mask_buf)

    # Round state lives in plain python containers — scalar list indexing
    # is several times cheaper than numpy item access at these sizes.
    # ``res`` is written back below (all float arithmetic is IEEE double
    # either way — bit-identical).
    link_members = membership.link_members
    res_l: List[float] = res.tolist()
    counts_l: List[int] = membership.counts.tolist()
    inf = np.inf

    frozen: Dict[int, None] = {}
    remaining = len(routes)
    while remaining > 0:
        bottleneck_share = float(shares.min())
        if not np.isfinite(bottleneck_share):
            # Remaining flows traverse no contended link (empty routes, or
            # inconsistent membership) — they cannot be rate-limited here.
            for flow_id in routes:
                if flow_id not in frozen:
                    rates[flow_id] = 0.0
            break
        bottleneck_links = (
            share_at_most(shares, bottleneck_share, out=mask_buf)
            .nonzero()[0]
            .tolist()
        )
        # A link's count hits zero the round it bottlenecks, so each
        # link's member list is scanned at most once per fill — skipping
        # already-frozen members with a dict check beats maintaining
        # shrunken member copies.
        newly_frozen: List[int] = []  # simlint: ignore[SIM202] (per-round scratch, bounded by flows frozen this round)
        for link_id in bottleneck_links:
            members = link_members.get(link_id)
            if members:
                for flow_id in members:
                    if flow_id not in frozen:
                        frozen[flow_id] = None
                        newly_frozen.append(flow_id)
        if not newly_frozen:
            # Defensive: should be impossible, but never spin forever.
            for flow_id in routes:
                if flow_id not in frozen:
                    rates[flow_id] = bottleneck_share
            break
        for flow_id in newly_frozen:
            rates[flow_id] = bottleneck_share
            route = routes[flow_id]
            for link_id in route:
                res_l[link_id] -= bottleneck_share
                counts_l[link_id] -= 1
            # Refresh the touched links' shares right away; a link shared
            # with a later flow of this round just gets recomputed again,
            # and only the final value is ever read (next round's min).
            for link_id in route:
                count = counts_l[link_id]
                if count > 0:
                    residual = res_l[link_id]
                    shares[link_id] = (
                        residual if residual > 0.0 else 0.0
                    ) / count
                else:
                    shares[link_id] = inf
        remaining -= len(newly_frozen)
    res[:] = res_l


@hot_path
def _water_fill_vectorized(
    membership: LinkMembership,
    res: npt.NDArray[np.float64],
    rates: Dict[int, BytesPerSec],
) -> None:
    """Progressive filling on a flat CSR view of the routes.

    Per round: one share vector over the links, per-flow bottleneck
    detection via ``np.minimum.reduceat``, and an unbuffered
    ``np.subtract.at`` residual update.  Bit-identity with the scalar
    loop holds because every frozen flow of a round subtracts the *same*
    bottleneck share — sequential subtraction of equal values yields the
    same float regardless of flow order — and the share formula is
    unchanged.
    """
    view = membership.csr()
    flow_ids = view.flow_ids
    arrs = view.arrs
    n = len(flow_ids)
    lengths = view.lengths
    links_flat = view.links_flat
    seg_min = view.seg_min
    shares = view.shares
    num_buf = view.num_buf
    cpos = view.cpos
    gather = view.gather
    newly_buf = view.newly_buf
    fancy_safe = view.fancy_safe

    # Float counts make the per-round divide float/float — no internal
    # int64 cast buffer.  Counts are small exact integers, so the shares
    # are bit-identical to dividing by the integer array.
    counts = membership.counts.astype(np.float64)
    active = view.active
    active.fill(True)
    remaining = n
    while remaining > 0:
        shares.fill(np.inf)
        np.maximum(res, 0.0, out=num_buf)
        np.greater(counts, 0, out=cpos)
        np.divide(num_buf, counts, out=shares, where=cpos)
        bottleneck_share = float(shares.min())
        if not np.isfinite(bottleneck_share):
            # Remaining flows traverse no contended link (empty routes, or
            # inconsistent membership) — they cannot be rate-limited here.
            for i in np.flatnonzero(active):
                rates[flow_ids[i]] = 0.0
            break
        if view.all_nonempty:
            np.take(shares, links_flat, out=gather)
            np.minimum.reduceat(gather, view.starts, out=seg_min)
        else:
            seg_min.fill(np.inf)
            if links_flat.size:
                seg_min[view.nonempty] = np.minimum.reduceat(
                    shares[links_flat], view.starts_nonempty
                )
        newly = share_at_most(seg_min, bottleneck_share, out=newly_buf)
        newly &= active
        frozen_indices = np.flatnonzero(newly)
        num_frozen = int(frozen_indices.size)
        if num_frozen == 0:
            # Defensive: should be impossible, but never spin forever.
            for i in np.flatnonzero(active):
                rates[flow_ids[i]] = bottleneck_share
            break
        if fancy_safe and num_frozen <= 8:
            # Small tie group (the common case): apply per flow.  The
            # subtraction order — ascending frozen index, then route
            # order over distinct links — matches the flat
            # ``subtract.at`` below exactly, so both branches are
            # bit-identical.
            for i in frozen_indices:
                rates[flow_ids[i]] = bottleneck_share
                arr = arrs[i]
                res[arr] -= bottleneck_share
                counts[arr] -= 1.0
        else:
            for i in frozen_indices:
                rates[flow_ids[i]] = bottleneck_share
            frozen_links = links_flat[np.repeat(newly, lengths)]
            np.subtract.at(res, frozen_links, bottleneck_share)
            counts -= np.bincount(frozen_links, minlength=counts.size)
        active[frozen_indices] = False
        remaining -= num_frozen


@hot_path
def water_fill(
    flow_routes: Mapping[int, Route],
    residual: Union[npt.NDArray[np.float64], List[float]],
) -> Dict[int, BytesPerSec]:
    """Max-min fair rates for ``flow_routes`` within ``residual`` capacity.

    ``residual`` is indexed by link id and is **mutated** (allocated
    bandwidth is subtracted) so callers can layer allocations, e.g. one
    priority class after another.  Pass a ``numpy.ndarray`` to avoid a
    copy; plain lists are converted (and mutated via slice write-back).

    Builds the membership structures from scratch on every call — the
    incremental engine keeps a persistent :class:`LinkMembership` and calls
    :func:`water_fill_membership` directly instead.

    Returns a rate (bytes/second) for every flow in ``flow_routes``.
    """
    if not flow_routes:
        return {}

    if isinstance(residual, np.ndarray):
        res = residual
    else:
        res = np.asarray(residual, dtype=np.float64)
    membership = LinkMembership.from_routes(flow_routes, len(res))
    rates = water_fill_membership(membership, res)
    if not isinstance(residual, np.ndarray):
        residual[:] = res.tolist()
    return rates


def allocate_maxmin(
    flow_routes: Mapping[int, Route],
    capacities: Sequence[BytesPerSec],
) -> Dict[int, BytesPerSec]:
    """Max-min fair rates against fresh link capacities (non-mutating)."""
    return water_fill(flow_routes, np.array(capacities, dtype=float))
