"""Deterministic event queue for the flow-level simulator.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering total and deterministic: two events at the same timestamp pop
in the order they were scheduled.  ``priority`` lets structurally different
events at the same instant be ordered (e.g. arrivals before reallocation).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError


class EventKind(enum.IntEnum):
    """Kinds of events, in intra-timestamp processing order."""

    JOB_ARRIVAL = 0
    FLOW_COMPLETION = 1
    SCHEDULER_UPDATE = 2


@dataclass(frozen=True)
class Event:
    """A scheduled simulator event."""

    time: float
    kind: EventKind
    seq: int
    payload: Any = None
    #: Allocation epoch at scheduling time; stale completion events
    #: (scheduled under an old rate assignment) are skipped on pop.
    epoch: int = 0


class EventQueue:
    """Min-heap of events with deterministic total ordering."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()
        self._size = 0

    def push(
        self,
        time: float,
        kind: EventKind,
        payload: Any = None,
        epoch: int = 0,
    ) -> Event:
        """Schedule an event; returns the Event object."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        event = Event(time=time, kind=kind, seq=next(self._seq), payload=payload, epoch=epoch)
        heapq.heappush(self._heap, (event.time, int(event.kind), event.seq, event))
        self._size += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        self._size -= 1
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest event, or None if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
