"""Unit tests for the baseline scheduling policies."""

import pytest

from repro.errors import SchedulerError
from repro.jobs import single_stage_job
from repro.schedulers.aalo import AaloScheduler
from repro.schedulers.baraat import BaraatScheduler
from repro.schedulers.base import SchedulerContext
from repro.schedulers.pfs import PerFlowFairSharing
from repro.schedulers.registry import available_schedulers, make_scheduler
from repro.schedulers.stream import StreamScheduler
from repro.schedulers.tbs import StageBytesSjf, TotalBytesSjf
from repro.simulator.bandwidth.request import AllocationMode


def _bind(scheduler, jobs, job_bytes=None):
    coflows = {c.coflow_id: c for j in jobs for c in j.coflows}
    context = SchedulerContext(
        {j.job_id: j for j in jobs}, coflows, job_bytes
    )
    scheduler.bind(context)
    return context


def _release_all(jobs):
    flows = []
    for job in jobs:
        for coflow in job.arrive(0.0):
            coflow.release(0.0)
            flows.extend(coflow.flows)
    return flows


class TestRegistry:
    def test_all_paper_policies_registered(self):
        names = available_schedulers()
        for expected in ("pfs", "baraat", "stream", "aalo", "gurita", "gurita+"):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(SchedulerError):
            make_scheduler("nope")

    def test_instances_are_fresh(self):
        assert make_scheduler("baraat") is not make_scheduler("baraat")


class TestPfs:
    def test_requests_pure_maxmin(self):
        scheduler = PerFlowFairSharing()
        request = scheduler.allocation([], 0.0)
        assert request.mode is AllocationMode.MAXMIN
        assert request.priorities == {}


class TestAalo:
    def test_priority_follows_accumulated_job_bytes(self, ids):
        small = single_stage_job([(0, 1, 1e6)], ids=ids)
        big = single_stage_job([(2, 3, 1e12)], ids=ids)
        scheduler = AaloScheduler()
        job_bytes = {small.job_id: 0.0, big.job_id: 0.0}
        _bind(scheduler, [small, big], job_bytes)
        flows = _release_all([small, big])
        # Before any bytes move, both jobs sit in the top queue.
        request = scheduler.allocation(flows, 0.0)
        assert set(request.priorities.values()) == {0}
        # After the big job has pushed 50 GB, it drops to the bottom queue.
        job_bytes[big.job_id] = 50e9
        request = scheduler.allocation(flows, 1.0)
        big_flow = big.coflows[0].flows[0]
        small_flow = small.coflows[0].flows[0]
        assert request.priorities[big_flow.flow_id] == 3
        assert request.priorities[small_flow.flow_id] == 0


class TestBaraat:
    def test_fifo_order_by_arrival(self, ids):
        jobs = [single_stage_job([(i, 10 + i, 1e6)], ids=ids) for i in range(3)]
        scheduler = BaraatScheduler(num_classes=8)
        _bind(scheduler, jobs)
        for index, job in enumerate(jobs):
            scheduler.on_job_arrival(job, float(index))
        flows = _release_all(jobs)
        request = scheduler.allocation(flows, 3.0)
        classes = [
            request.priorities[j.coflows[0].flows[0].flow_id] for j in jobs
        ]
        assert classes == [0, 1, 2]

    def test_heavy_head_shares_its_class(self, ids):
        jobs = [single_stage_job([(i, 10 + i, 1e12)], ids=ids) for i in range(2)]
        scheduler = BaraatScheduler(num_classes=8, heavy_bytes=1e6)
        job_bytes = {j.job_id: 0.0 for j in jobs}
        _bind(scheduler, jobs, job_bytes)
        for index, job in enumerate(jobs):
            scheduler.on_job_arrival(job, float(index))
        flows = _release_all(jobs)
        # Make the head job heavy: it stops consuming a FIFO slot.
        head = jobs[0]
        for flow in head.coflows[0].flows:
            flow.rate = 1.0
            flow.advance(2e6)
        request = scheduler.allocation(flows, 1.0)
        classes = [
            request.priorities[j.coflows[0].flows[0].flow_id] for j in jobs
        ]
        assert classes == [0, 0]  # limited multiplexing kicked in

    def test_completed_jobs_leave_the_queue(self, ids):
        jobs = [single_stage_job([(i, 10 + i, 1e6)], ids=ids) for i in range(2)]
        scheduler = BaraatScheduler()
        _bind(scheduler, jobs)
        for index, job in enumerate(jobs):
            scheduler.on_job_arrival(job, float(index))
        flows = _release_all(jobs)
        first = jobs[0]
        for flow in first.coflows[0].flows:
            flow.finish(1.0)
        first.coflows[0].maybe_complete(1.0)
        first.maybe_complete(1.0)
        request = scheduler.allocation(
            [f for f in flows if not f.is_done], 1.0
        )
        second_flow = jobs[1].coflows[0].flows[0]
        assert request.priorities[second_flow.flow_id] == 0


class TestStream:
    def test_uses_lagged_observations(self, ids):
        job = single_stage_job([(0, 1, 1e12)], ids=ids)
        scheduler = StreamScheduler()
        job_bytes = {job.job_id: 0.0}
        _bind(scheduler, [job], job_bytes)
        scheduler.on_job_arrival(job, 0.0)
        flows = _release_all([job])
        # Bytes moved but no observation round yet: still top priority.
        job_bytes[job.job_id] = 50e9
        request = scheduler.allocation(flows, 0.0)
        assert request.priorities[flows[0].flow_id] == 0
        # After the periodic snapshot the demotion lands.
        assert scheduler.on_update(0.008) is True
        request = scheduler.allocation(flows, 0.008)
        assert request.priorities[flows[0].flow_id] == 3

    def test_wide_coflows_demoted_extra_class(self, ids):
        specs = [(i, 100 + i, 1e3) for i in range(60)]
        job = single_stage_job(specs, ids=ids)
        scheduler = StreamScheduler(wide_coflow=50)
        _bind(scheduler, [job], {job.job_id: 0.0})
        flows = _release_all([job])
        request = scheduler.allocation(flows, 0.0)
        assert request.priorities[flows[0].flow_id] == 1

    def test_quiet_update_reports_no_change(self, ids):
        job = single_stage_job([(0, 1, 1e6)], ids=ids)
        scheduler = StreamScheduler()
        _bind(scheduler, [job], {job.job_id: 0.0})
        scheduler.on_job_arrival(job, 0.0)
        assert scheduler.on_update(0.008) is False


class TestTbs:
    def test_total_bytes_ranking(self, ids):
        small = single_stage_job([(0, 1, 1e6)], ids=ids)
        big = single_stage_job([(2, 3, 1e9)], ids=ids)
        scheduler = TotalBytesSjf()
        _bind(scheduler, [small, big])
        flows = _release_all([small, big])
        request = scheduler.allocation(flows, 0.0)
        assert request.priorities[small.coflows[0].flows[0].flow_id] == 0
        assert request.priorities[big.coflows[0].flows[0].flow_id] == 1

    def test_stage_ranking_ignores_history(self, ids):
        from repro.jobs import chain_job

        # Big job in a tiny stage vs a medium single-stage job.
        big = chain_job([[(0, 1, 1e9)], [(1, 2, 1e5)]], ids=ids)
        medium = single_stage_job([(3, 4, 1e6)], ids=ids)
        scheduler = StageBytesSjf()
        _bind(scheduler, [big, medium])
        # Manually walk big into its second (tiny) stage.
        for coflow in big.arrive(0.0):
            coflow.release(0.0)
        first = big.coflows[0]
        for flow in first.flows:
            flow.finish(1.0)
        first.maybe_complete(1.0)
        for coflow in big.releasable_after(first.coflow_id):
            coflow.release(1.0)
        medium_flows = _release_all([medium])
        active = [big.coflows[1].flows[0]] + medium_flows
        request = scheduler.allocation(active, 1.0)
        # Stage-aware: big job's 0.1 MB stage outranks the 1 MB job.
        assert request.priorities[big.coflows[1].flows[0].flow_id] == 0
        assert request.priorities[medium_flows[0].flow_id] == 1
