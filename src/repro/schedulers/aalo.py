"""Aalo — centralized coflow scheduling without prior knowledge (ref [5]).

Aalo's Discretized Coflow-Aware Least-Attained-Service (D-CLAS) demotes a
coflow through exponentially spaced priority queues as its *accumulated
bytes sent* grow.  It is the paper's centralized comparator: a coordinator
with a global, instantaneous view of bytes sent (the paper's simulator
grants Aalo instantaneous information and ignores coordinator latency —
§V, "Aalo's additional delay ... is not considered").

Following the paper's critique of TBS schemes, attained service accumulates
at the *job* level across stages: a job that transmitted heavily in early
stages keeps its demoted priority in later stages, which is exactly the
behaviour Gurita's per-stage blocking effect avoids.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.jobs.flow import Flow
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.thresholds import ExponentialThresholds
from repro.simulator.bandwidth.request import (
    DEFAULT_NUM_CLASSES,
    AllocationMode,
    AllocationRequest,
)


class AaloScheduler(SchedulerPolicy):
    """Centralized D-CLAS over job-level accumulated bytes sent."""

    name = "aalo"

    def __init__(
        self,
        num_classes: int = DEFAULT_NUM_CLASSES,
        thresholds: Optional[ExponentialThresholds] = None,
    ) -> None:
        super().__init__()
        self.num_classes = num_classes
        self.thresholds = (
            thresholds
            if thresholds is not None
            else ExponentialThresholds(num_classes)
        )

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        assert self.context is not None
        priorities: Dict[int, int] = {}
        for flow in active_flows:
            job_id = self.context.coflow(flow.coflow_id).job_id
            # Global view: exact bytes sent so far by the whole job.
            priorities[flow.flow_id] = self.thresholds.class_of(
                self.context.job_bytes_sent(job_id)
            )
        return AllocationRequest(
            mode=AllocationMode.SPQ,
            priorities=priorities,
            num_classes=self.num_classes,
        )
