"""The simlint rule catalog.

Each rule is an :class:`ast`-level check with a stable code (``SIMxxx``), a
one-line summary, and an optional *scope*: a set of path fragments the rule
is restricted to (matched against ``/``-normalised file paths).  Rules are
deliberately simulator-specific — they encode the failure classes that
break determinism and conservation in flow-level simulation:

========  ==================================================================
SIM001    wall-clock time (``time.time``, ``datetime.now``, …) inside the
          simulator or a scheduling policy — simulated time must come from
          the event clock, never the host
SIM002    module-level or unseeded ``random`` / ``numpy.random`` usage —
          randomness must flow through an injected ``random.Random(seed)``
SIM003    iteration over a ``set``/``frozenset``/``dict.keys()`` result
          without ``sorted()`` in allocation/scheduling hot paths —
          iteration order is not part of the language contract, and rate
          assignment must not depend on it
SIM004    float ``==``/``!=`` on simulation timestamps outside the blessed
          tolerance helpers (:mod:`repro.simulator.timecmp`)
SIM005    mutable default arguments (shared state across calls)
SIM006    a ``SchedulerPolicy`` subclass that sets
          ``reports_priority_deltas = True`` but never calls
          ``_note_priority_change`` — the incremental engine would reuse
          stale class memberships
========  ==================================================================

Adding a rule: subclass :class:`Rule`, give it a fresh ``code``, implement
:meth:`Rule.check`, and append an instance to :data:`ALL_RULES`.  Document
it in ``docs/static-analysis.md`` and give it a good/bad fixture pair in
``tests/unit/test_simlint.py``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from tools.simlint.findings import Finding

#: Scope shorthand: the two packages the paper's determinism story lives in.
SIMULATOR_SCOPES: Tuple[str, ...] = (
    "repro/simulator",
    "repro/schedulers",
    "repro/core",
)


@dataclass(frozen=True)
class LintContext:
    """Everything a rule needs about one file."""

    path: str  #: ``/``-normalised path, as reported in findings
    tree: ast.Module


class Rule:
    """Base class for simlint rules."""

    code: str = "SIM000"
    name: str = "base"
    description: str = ""
    #: Path fragments the rule is restricted to; empty = every file.
    scopes: Tuple[str, ...] = ()
    #: Path fragments exempt from the rule even when in scope.
    blessed: Tuple[str, ...] = ()

    def applies(self, path: str) -> bool:
        if any(fragment in path for fragment in self.blessed):
            return False
        if not self.scopes:
            return True
        return any(fragment in path for fragment in self.scopes)

    def check(self, ctx: LintContext) -> List[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def module_aliases(tree: ast.Module) -> Dict[str, Set[str]]:
    """Map module name -> local aliases (``import numpy as np`` → np)."""
    aliases: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname if item.asname else item.name.split(".")[0]
                aliases.setdefault(item.name, set()).add(local)
    return aliases


def from_imports(tree: ast.Module) -> Dict[str, Tuple[str, str]]:
    """Map local name -> (source module, original name) for from-imports."""
    out: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module is not None:
            for item in node.names:
                local = item.asname if item.asname else item.name
                out[local] = (node.module, item.name)
    return out


def dotted_parts(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def terminal_identifier(node: ast.AST) -> Optional[str]:
    """The last identifier of a name/attribute/call expression."""
    if isinstance(node, ast.Call):
        return terminal_identifier(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# ----------------------------------------------------------------------
# SIM001 — wall-clock time
# ----------------------------------------------------------------------
class WallClockRule(Rule):
    code = "SIM001"
    name = "wall-clock-time"
    description = (
        "wall-clock time inside the simulator or a scheduling policy; "
        "simulated time must come from the event clock"
    )
    scopes = SIMULATOR_SCOPES

    #: functions of the ``time`` module that read the host clock
    WALL_TIME_FUNCS = frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "clock_gettime",
            "clock_gettime_ns",
            "localtime",
            "gmtime",
            "ctime",
            "sleep",
        }
    )
    #: wall-clock constructors on ``datetime.datetime`` / ``datetime.date``
    DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def check(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        time_aliases = module_aliases(ctx.tree).get("time", set())
        datetime_aliases = module_aliases(ctx.tree).get("datetime", set())
        froms = from_imports(ctx.tree)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for item in node.names:
                    if item.name in self.WALL_TIME_FUNCS:
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"import of wall-clock 'time.{item.name}'",
                            )
                        )
                continue
            parts = dotted_parts(node) if isinstance(node, ast.Attribute) else None
            if parts is None:
                continue
            root = parts[0]
            # time.<wall func>
            if root in time_aliases and len(parts) == 2 and parts[1] in self.WALL_TIME_FUNCS:
                findings.append(
                    self.finding(ctx, node, f"wall-clock call 'time.{parts[1]}'")
                )
            # datetime.datetime.now / datetime.date.today
            elif (
                root in datetime_aliases
                and len(parts) == 3
                and parts[1] in ("datetime", "date")
                and parts[2] in self.DATETIME_FUNCS
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"wall-clock call 'datetime.{parts[1]}.{parts[2]}'",
                    )
                )
            # from datetime import datetime; datetime.now()
            elif (
                len(parts) == 2
                and parts[1] in self.DATETIME_FUNCS
                and froms.get(root, ("", ""))[0] == "datetime"
            ):
                findings.append(
                    self.finding(ctx, node, f"wall-clock call '{root}.{parts[1]}'")
                )
        return findings


# ----------------------------------------------------------------------
# SIM002 — module-level / unseeded randomness
# ----------------------------------------------------------------------
class UnseededRandomRule(Rule):
    code = "SIM002"
    name = "unseeded-random"
    description = (
        "module-level or unseeded randomness; inject a 'random.Random(seed)' "
        "instance instead so every run is reproducible"
    )

    #: names importable from ``random`` that are fine to use
    ALLOWED_FROM_RANDOM = frozenset({"Random"})

    def check(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        aliases = module_aliases(ctx.tree)
        random_aliases = aliases.get("random", set())
        numpy_aliases = aliases.get("numpy", set())

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for item in node.names:
                    if item.name not in self.ALLOWED_FROM_RANDOM:
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"import of module-level 'random.{item.name}' "
                                "(global, shared RNG state)",
                            )
                        )
                continue
            if isinstance(node, ast.Call):
                parts = dotted_parts(node.func)
                if parts is None:
                    continue
                root = parts[0]
                if root in random_aliases and len(parts) == 2:
                    if parts[1] == "Random":
                        if not node.args and not node.keywords:
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    "'random.Random()' without a seed; pass an "
                                    "explicit seed",
                                )
                            )
                    elif parts[1] == "SystemRandom":
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "'random.SystemRandom' is nondeterministic by "
                                "design",
                            )
                        )
                    else:
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"module-level 'random.{parts[1]}' uses the "
                                "global RNG; inject a seeded random.Random",
                            )
                        )
                elif (
                    root in numpy_aliases
                    and len(parts) >= 3
                    and parts[1] == "random"
                ):
                    if parts[2] == "default_rng" and (node.args or node.keywords):
                        continue  # numpy.random.default_rng(seed) is fine
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"'numpy.random.{parts[2]}' uses global or unseeded "
                            "RNG state; use numpy.random.default_rng(seed)",
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# SIM003 — unsorted set / dict.keys() iteration in hot paths
# ----------------------------------------------------------------------
class UnsortedSetIterationRule(Rule):
    code = "SIM003"
    name = "unsorted-set-iteration"
    description = (
        "iteration over a set/frozenset/dict.keys() result without sorted() "
        "in an allocation or scheduling hot path; iteration order is not a "
        "language guarantee and must not influence rate assignment"
    )
    scopes = SIMULATOR_SCOPES

    _SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
    _SET_METHODS = frozenset(
        {"union", "intersection", "difference", "symmetric_difference", "copy"}
    )

    def check(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        # Track, per straight-line scope walk, which simple names are
        # known to hold set-like values.  This is deliberately shallow —
        # it follows single assignments, not data flow — but catches the
        # realistic pattern `candidates = ... ; for x in candidates`.
        set_names: Set[str] = set()

        def is_sety(node: ast.AST) -> bool:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return True
            if isinstance(node, ast.Name):
                return node.id in set_names
            if isinstance(node, ast.IfExp):
                return is_sety(node.body) or is_sety(node.orelse)
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
            ):
                return is_sety(node.left) or is_sety(node.right)
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name):
                    return func.id in self._SET_CONSTRUCTORS
                if isinstance(func, ast.Attribute):
                    if func.attr == "keys":
                        return True
                    if func.attr in self._SET_METHODS:
                        return is_sety(func.value)
            return False

        def describe(node: ast.AST) -> str:
            if isinstance(node, (ast.Set, ast.SetComp)):
                return "a set"
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "keys":
                    return "dict.keys()"
            if isinstance(node, ast.Name):
                return f"set-valued name '{node.id}'"
            return "a set expression"

        def flag(iter_node: ast.AST) -> None:
            if is_sety(iter_node):
                findings.append(
                    self.finding(
                        ctx,
                        iter_node,
                        f"iterating {describe(iter_node)} without sorted(); "
                        "wrap in sorted(...) for a deterministic order",
                    )
                )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                    name = node.targets[0].id
                    if is_sety(node.value):
                        set_names.add(name)
                    else:
                        set_names.discard(name)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    if is_sety(node.value):
                        set_names.add(node.target.id)
                    else:
                        set_names.discard(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                flag(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    flag(generator.iter)
        return findings


# ----------------------------------------------------------------------
# SIM004 — float equality on simulation timestamps
# ----------------------------------------------------------------------
class TimestampEqualityRule(Rule):
    code = "SIM004"
    name = "timestamp-float-equality"
    description = (
        "float ==/!= on simulation timestamps; use the tolerance helpers in "
        "repro.simulator.timecmp (times_close / time_before) instead"
    )
    scopes = SIMULATOR_SCOPES
    #: the blessed tolerance helpers themselves may compare exactly
    blessed = ("repro/simulator/timecmp.py",)

    _EXACT_TIMEY = frozenset({"time", "now", "eta", "timestamp", "watermark"})

    def _is_timey(self, node: ast.AST) -> bool:
        name = terminal_identifier(node)
        if name is None:
            return False
        name = name.lstrip("_")
        return name in self._EXACT_TIMEY or name.endswith("_time")

    def check(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(o, ast.Constant) and o.value is None for o in operands
            ):
                continue  # `x == None` is a different problem, not SIM004
            timey = next((o for o in operands if self._is_timey(o)), None)
            if timey is not None:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"float equality on timestamp "
                        f"'{terminal_identifier(timey)}'; compare with "
                        "repro.simulator.timecmp.times_close",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# SIM005 — mutable default arguments
# ----------------------------------------------------------------------
class MutableDefaultRule(Rule):
    code = "SIM005"
    name = "mutable-default-argument"
    description = "mutable default argument; shared across calls"

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            name = terminal_identifier(node.func)
            return name in self._MUTABLE_CALLS
        return False

    def check(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    findings.append(
                        self.finding(
                            ctx,
                            default,
                            f"mutable default argument in '{label}'; "
                            "use None and construct inside the function",
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# SIM006 — priority-delta contract
# ----------------------------------------------------------------------
class PriorityDeltaContractRule(Rule):
    code = "SIM006"
    name = "priority-delta-contract"
    description = (
        "SchedulerPolicy subclass sets reports_priority_deltas = True but "
        "never calls _note_priority_change; the incremental engine would "
        "reuse stale class memberships"
    )

    def check(self, ctx: LintContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            opt_in = self._opt_in_statement(node)
            if opt_in is None:
                continue
            if not self._calls_note_priority_change(node):
                findings.append(
                    self.finding(
                        ctx,
                        opt_in,
                        f"class '{node.name}' sets reports_priority_deltas = "
                        "True but never calls _note_priority_change",
                    )
                )
        return findings

    @staticmethod
    def _opt_in_statement(cls: ast.ClassDef) -> Optional[ast.stmt]:
        for stmt in cls.body:
            targets: Iterable[ast.expr] = ()
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == "reports_priority_deltas"
                    and isinstance(value, ast.Constant)
                    and value.value is True
                ):
                    return stmt
        return None

    @staticmethod
    def _calls_note_priority_change(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Call):
                name = terminal_identifier(node.func)
                if name == "_note_priority_change":
                    return True
        return False


#: The rule registry, in code order.
ALL_RULES: Tuple[Rule, ...] = (
    WallClockRule(),
    UnseededRandomRule(),
    UnsortedSetIterationRule(),
    TimestampEqualityRule(),
    MutableDefaultRule(),
    PriorityDeltaContractRule(),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}
