"""Unit tests for metrics: JCT summaries, improvement factors, reports."""

import pytest

from repro.errors import ReproError
from repro.jobs import IdAllocator, single_stage_job
from repro.metrics import (
    JctSummary,
    average_jct_by_category,
    categories_present,
    format_category_table,
    format_improvement_row,
    format_jct_table,
    improvement_factor,
    jct_by_category,
    overall_improvement,
    per_category_improvement,
)
from repro.simulator.runtime import SimulationResult


def fake_result(jct_by_size, scheduler="x"):
    """Build a SimulationResult whose jobs have given (bytes, jct) pairs."""
    ids = IdAllocator()
    jobs = []
    for size, jct in jct_by_size:
        job = single_stage_job([(0, 1, size)], ids=ids)
        job.arrive(0.0)
        coflow = job.coflows[0]
        coflow.release(0.0)
        for flow in coflow.flows:
            flow.finish(jct)
        coflow.maybe_complete(jct)
        job.maybe_complete(jct)
        jobs.append(job)
    return SimulationResult(
        jobs=jobs,
        makespan=max(j for _s, j in jct_by_size),
        events_processed=0,
        reallocations=0,
        scheduler_name=scheduler,
    )


class TestSummary:
    def test_stats(self):
        summary = JctSummary.from_values([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.maximum == 4.0
        assert summary.total == 10.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            JctSummary.from_values([])


class TestCategoryGrouping:
    def test_jobs_grouped_by_size(self):
        result = fake_result([(10e6, 1.0), (20e6, 2.0), (500e6, 3.0)])
        groups = jct_by_category(result)
        assert sorted(groups[1]) == [1.0, 2.0]
        assert groups[2] == [3.0]

    def test_category_averages(self):
        result = fake_result([(10e6, 1.0), (20e6, 3.0)])
        assert average_jct_by_category(result) == {1: pytest.approx(2.0)}

    def test_categories_present_intersects(self):
        a = fake_result([(10e6, 1.0), (500e6, 1.0)])
        b = fake_result([(10e6, 1.0), (5e9, 1.0)])
        assert categories_present([a, b]) == [1]


class TestImprovement:
    def test_factor_definition(self):
        assert improvement_factor(2.0, 1.0) == pytest.approx(2.0)
        assert improvement_factor(0.5, 1.0) == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ReproError):
            improvement_factor(-1.0, 1.0)
        with pytest.raises(ReproError):
            improvement_factor(1.0, 0.0)

    def test_overall_improvement(self):
        slow = fake_result([(10e6, 4.0)])
        fast = fake_result([(10e6, 2.0)])
        assert overall_improvement(slow, fast) == pytest.approx(2.0)

    def test_per_category_improvement_only_common_categories(self):
        slow = fake_result([(10e6, 4.0), (500e6, 8.0)])
        fast = fake_result([(10e6, 2.0), (5e9, 1.0)])
        factors = per_category_improvement(slow, fast)
        assert set(factors) == {1}
        assert factors[1] == pytest.approx(2.0)


class TestReports:
    def test_improvement_row_format(self):
        row = format_improvement_row("FB-t", {"pfs": 2.0, "aalo": 1.05})
        assert "FB-t" in row and "pfs= 2.00x" in row and "aalo= 1.05x" in row

    def test_category_table_has_roman_headers(self):
        table = format_category_table({"pfs": {1: 2.0, 3: 1.5}}, title="fig6")
        assert "fig6" in table
        assert "I" in table and "III" in table
        assert "2.00" in table and "1.50" in table

    def test_category_table_marks_missing(self):
        table = format_category_table({"pfs": {1: 2.0}, "aalo": {2: 1.0}})
        assert "-" in table

    def test_jct_table_sorted_fastest_first(self):
        table = format_jct_table({"slow": 3.0, "fast": 1.0})
        assert table.index("fast") < table.index("slow")

    def test_bar_chart_scales_to_peak(self):
        from repro.metrics import format_bar_chart

        chart = format_bar_chart({"a": 2.0, "b": 1.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].startswith("a")  # sorted descending
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert "2.00x" in lines[0]

    def test_bar_chart_empty_and_zero(self):
        from repro.metrics import format_bar_chart

        assert format_bar_chart({}) == "(no data)"
        chart = format_bar_chart({"a": 0.0})
        assert "0.00" in chart
