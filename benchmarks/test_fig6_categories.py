"""Figure 6 — trace-driven per-category improvement (6a FB-Tao, 6b TPC-DS).

Paper: Gurita beats PFS in every category — by up to 8.5x for the small
categories — and Baraat by up to 5x; it beats Stream in most categories
(up to 4x); against Aalo it matches everywhere except category I with the
FB-Tao structure, where the centralized global view wins by ~0.1x.
"""

import pytest

from _util import bench_jobs

from repro.experiments.common import run_scenario
from repro.experiments.figures import figure6_config
from repro.metrics.report import format_category_table


@pytest.mark.parametrize("structure", ["fb-tao", "tpcds"])
def test_fig6_per_category(run_once, structure):
    config = figure6_config(structure, num_jobs=bench_jobs(70))
    outcome = run_once(run_scenario, config)
    table = outcome.category_improvements_over("gurita")
    print(
        "\n"
        + format_category_table(
            table,
            title=f"FIG6 ({structure}) improvement of Gurita per category:",
        )
    )
    # Small-job categories (I-II): Gurita strongly beats PFS and Baraat.
    small = [cat for cat in (1, 2) if cat in table["pfs"]]
    assert small, "workload must populate small categories"
    assert max(table["pfs"][cat] for cat in small) > 1.3
    assert max(table["baraat"][cat] for cat in small) > 1.3
    # Mid categories: the stage-aware advantage over TBS (Aalo/Stream).
    mid = [cat for cat in (3, 4, 5) if cat in table["aalo"]]
    assert mid and max(table["aalo"][cat] for cat in mid) > 1.0
    # Aggregate win over every decentralized comparator.
    overall = outcome.improvements_over("gurita")
    assert overall["pfs"] > 1.0 and overall["baraat"] > 1.0
