"""LAS — per-flow Least Attained Service (the PIAS-style baseline).

The paper cites information-agnostic *flow*-level scheduling (PIAS, its
ref [25]) as the per-flow counterpart of the TBS family: each flow is
demoted through priority queues as its *own* bytes accumulate, with no
notion of coflows, let alone jobs or stages.  Included as the finest-
granularity comparator: it shows how much of Gurita's win comes from
coflow/job awareness versus mere size discrimination.
"""

from __future__ import annotations

from typing import List, Optional

from repro.jobs.flow import Flow
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.thresholds import ExponentialThresholds
from repro.simulator.bandwidth.request import (
    DEFAULT_NUM_CLASSES,
    AllocationMode,
    AllocationRequest,
)

#: PIAS-style first demotion boundary: 1 MB of attained service.
DEFAULT_LAS_FIRST = 1e6


class LasScheduler(SchedulerPolicy):
    """Per-flow LAS with exponentially spaced demotion thresholds."""

    name = "las"

    def __init__(
        self,
        num_classes: int = DEFAULT_NUM_CLASSES,
        thresholds: Optional[ExponentialThresholds] = None,
    ) -> None:
        super().__init__()
        self.num_classes = num_classes
        self.thresholds = (
            thresholds
            if thresholds is not None
            else ExponentialThresholds(num_classes, first=DEFAULT_LAS_FIRST)
        )

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        priorities = {
            flow.flow_id: self.thresholds.class_of(flow.bytes_sent)
            for flow in active_flows
        }
        return AllocationRequest(
            mode=AllocationMode.SPQ,
            priorities=priorities,
            num_classes=self.num_classes,
        )
