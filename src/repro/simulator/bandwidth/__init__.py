"""Bandwidth allocation: max-min (TCP), SPQ, and WRR-emulated SPQ."""

from repro.simulator.bandwidth.maxmin import allocate_maxmin, water_fill
from repro.simulator.bandwidth.request import (
    DEFAULT_NUM_CLASSES,
    MAX_SWITCH_CLASSES,
    AllocationMode,
    AllocationRequest,
    dispatch_allocation,
)
from repro.simulator.bandwidth.spq import allocate_spq, group_by_class
from repro.simulator.bandwidth.wrr import (
    allocate_wrr,
    class_loads_from_counts,
    spq_waiting_times,
    wrr_weights,
)

__all__ = [
    "AllocationMode",
    "AllocationRequest",
    "DEFAULT_NUM_CLASSES",
    "MAX_SWITCH_CLASSES",
    "allocate_maxmin",
    "allocate_spq",
    "allocate_wrr",
    "class_loads_from_counts",
    "dispatch_allocation",
    "group_by_class",
    "spq_waiting_times",
    "water_fill",
    "wrr_weights",
]
