"""Failure-isolation hardening of the parallel grid engine.

Covers the robustness additions: exponential retry backoff, the
per-unit wall-clock timeout, hung-worker termination with pool rebuild,
and the structured ``UnitFailure(kind="timeout")`` records.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ExperimentError
from repro.experiments import parallel as parallel_module
from repro.experiments.common import ScenarioConfig, ScenarioResult
from repro.experiments.parallel import WorkUnit, run_grid

#: Empty scheduler set: result validation accepts a bare ScenarioResult,
#: letting these tests use stub runners instead of real simulations.
def _unit(name: str, seed: int = 1) -> WorkUnit:
    return WorkUnit(
        config=ScenarioConfig(name=name, seed=seed, schedulers=())
    )


def _ok(unit: WorkUnit) -> ScenarioResult:
    return ScenarioResult(config=unit.config)


def _hang_first_unit(unit: WorkUnit) -> ScenarioResult:
    if unit.config.name == "hang":
        time.sleep(60.0)
    return ScenarioResult(config=unit.config)


def _always_hang(unit: WorkUnit) -> ScenarioResult:
    time.sleep(60.0)
    return ScenarioResult(config=unit.config)


class TestParameterValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid([_unit("a")], retries=-1, run_unit=_ok)

    def test_negative_backoff_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid([_unit("a")], backoff_base=-0.1, run_unit=_ok)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid([_unit("a")], unit_timeout=0.0, run_unit=_ok)


class TestRetryBackoff:
    def test_backoff_spaces_attempts_exponentially(self, monkeypatch):
        sleeps = []

        def recording_sleep(seconds: float) -> None:
            sleeps.append(seconds)
            time.sleep(seconds)

        monkeypatch.setattr(parallel_module, "_sleep", recording_sleep)
        attempts = {"count": 0}

        def flaky(unit: WorkUnit) -> ScenarioResult:
            attempts["count"] += 1
            if attempts["count"] <= 2:
                raise RuntimeError("transient")
            return ScenarioResult(config=unit.config)

        report = run_grid(
            [_unit("flaky")],
            parallel=2,
            retries=2,
            backoff_base=0.02,
            run_unit=flaky,
            use_threads=True,
        )
        assert report.ok
        assert report.stats.retries == 2
        assert attempts["count"] == 3
        # First retry waits ~backoff_base, second ~2x that (the engine
        # may split one wait across wake-ups, so compare the total).
        assert sum(sleeps) >= 0.02 + 0.04 - 0.005

    def test_zero_backoff_retries_immediately(self, monkeypatch):
        monkeypatch.setattr(
            parallel_module, "_sleep",
            lambda s: pytest.fail("backoff sleep with backoff_base=0"),
        )
        attempts = {"count": 0}

        def flaky(unit: WorkUnit) -> ScenarioResult:
            attempts["count"] += 1
            if attempts["count"] == 1:
                raise RuntimeError("transient")
            return ScenarioResult(config=unit.config)

        report = run_grid(
            [_unit("flaky")], retries=1, run_unit=flaky, use_threads=True,
            parallel=2,
        )
        assert report.ok and report.stats.retries == 1


class TestUnitTimeout:
    def test_hung_process_worker_is_killed_and_pool_rebuilt(self):
        units = [_unit("hang")] + [_unit(f"ok{i}") for i in range(3)]
        events = []
        started = time.monotonic()
        report = run_grid(
            units,
            parallel=2,
            unit_timeout=1.0,
            run_unit=_hang_first_unit,
            progress=lambda e: events.append((e.kind, e.index)),
        )
        elapsed = time.monotonic() - started
        # The hung worker must not stall the grid for its full 60s sleep.
        assert elapsed < 30.0
        assert report.stats.timeouts == 1
        assert report.stats.failures == 1
        assert report.stats.completed == 3
        (failure,) = report.failures
        assert failure.kind == "timeout"
        assert failure.index == 0
        assert "timeout" in failure.error
        assert ("timeout", 0) in events

    def test_timeouts_are_not_retried(self):
        report = run_grid(
            [_unit("hang")],
            parallel=2,
            retries=3,
            unit_timeout=0.5,
            run_unit=_always_hang,
        )
        assert report.stats.timeouts == 1
        assert report.stats.retries == 0
        assert report.failures[0].kind == "timeout"

    def test_fast_units_unaffected_by_timeout(self):
        report = run_grid(
            [_unit(f"u{i}") for i in range(4)],
            parallel=2,
            unit_timeout=30.0,
            run_unit=_ok,
            use_threads=True,
        )
        assert report.ok
        assert report.stats.timeouts == 0
        assert report.stats.completed == 4

    def test_error_failures_keep_kind_error(self):
        def boom(unit: WorkUnit) -> ScenarioResult:
            raise ValueError("broken unit")

        report = run_grid(
            [_unit("boom")], retries=0, run_unit=boom, use_threads=True,
            parallel=2,
        )
        (failure,) = report.failures
        assert failure.kind == "error"
        assert "broken unit" in failure.error
        assert failure.to_dict()["kind"] == "error"
