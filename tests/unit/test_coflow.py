"""Unit tests for Coflow dimensions, observations, and lifecycle."""

import pytest

from repro.errors import InvalidJobError
from repro.jobs.coflow import Coflow, CoflowState
from repro.jobs.flow import Flow


def make_coflow(sizes=(10.0, 20.0, 30.0), coflow_id=5, job_id=7):
    flows = [
        Flow(flow_id=i, coflow_id=coflow_id, src=i, dst=100 + i, size_bytes=s)
        for i, s in enumerate(sizes)
    ]
    return Coflow(coflow_id=coflow_id, job_id=job_id, flows=flows)


class TestDimensions:
    def test_width_is_flow_count(self):
        assert make_coflow().width == 3

    def test_vertical_dimension_is_largest_flow(self):
        assert make_coflow().max_flow_bytes == 30.0

    def test_mean_and_total(self):
        coflow = make_coflow()
        assert coflow.total_bytes == 60.0
        assert coflow.mean_flow_bytes == pytest.approx(20.0)

    def test_rejects_empty(self):
        with pytest.raises(InvalidJobError):
            Coflow(coflow_id=1, job_id=1, flows=[])

    def test_rejects_mismatched_flow_ownership(self):
        flow = Flow(flow_id=0, coflow_id=99, src=0, dst=1, size_bytes=1.0)
        with pytest.raises(InvalidJobError):
            Coflow(coflow_id=1, job_id=1, flows=[flow])


class TestObservations:
    def test_observed_quantities_track_bytes_sent(self):
        coflow = make_coflow((10.0, 40.0))
        coflow.release(0.0)
        coflow.flows[0].rate = 1.0
        coflow.flows[1].rate = 4.0
        for flow in coflow.flows:
            flow.advance(5.0)
        assert coflow.bytes_sent == pytest.approx(25.0)
        assert coflow.observed_max_flow_bytes == pytest.approx(20.0)
        assert coflow.observed_mean_flow_bytes == pytest.approx(12.5)

    def test_active_width_counts_open_connections(self):
        coflow = make_coflow((5.0, 5.0, 5.0))
        assert coflow.active_width == 0
        coflow.release(0.0)
        assert coflow.active_width == 3
        coflow.flows[0].finish(1.0)
        assert coflow.active_width == 2


class TestLifecycle:
    def test_release_starts_all_flows(self):
        coflow = make_coflow()
        coflow.release(2.0)
        assert coflow.state is CoflowState.RUNNING
        assert all(f.is_active for f in coflow.flows)
        assert coflow.release_time == 2.0

    def test_double_release_rejected(self):
        coflow = make_coflow()
        coflow.release(0.0)
        with pytest.raises(InvalidJobError):
            coflow.release(1.0)

    def test_completes_only_when_all_flows_done(self):
        coflow = make_coflow((1.0, 2.0))
        coflow.release(0.0)
        coflow.flows[0].finish(1.0)
        assert not coflow.maybe_complete(1.0)
        coflow.flows[1].finish(3.0)
        assert coflow.maybe_complete(3.0)
        assert coflow.state is CoflowState.DONE
        assert coflow.completion_time() == 3.0

    def test_maybe_complete_idempotent(self):
        coflow = make_coflow((1.0,))
        coflow.release(0.0)
        coflow.flows[0].finish(1.0)
        assert coflow.maybe_complete(1.0)
        assert not coflow.maybe_complete(2.0)
        assert coflow.finish_time == 1.0
