"""k-pod FatTree topology (Al-Fares et al., SIGCOMM 2008).

The paper evaluates on an 8-pod FatTree (128 servers, 80 switches) and, for
the bursty large-scale scenario, a 48-pod FatTree (27,648 servers, 2,880
switches).  A k-pod FatTree has:

* ``k`` pods, each with ``k/2`` edge and ``k/2`` aggregation switches,
* ``(k/2)^2`` core switches in ``k/2`` groups of ``k/2``,
* ``k/2`` hosts per edge switch, hence ``k^3/4`` hosts total.

Aggregation switch ``a`` of every pod connects to the ``k/2`` core switches
of group ``a``.  Equal-cost routes between pods are parameterised by the
(aggregation switch, core index) pair, giving ``(k/2)^2`` choices; ECMP
picks one by flow hash.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TopologyError
from repro.simulator.topology.base import Topology
from repro.simulator.topology.links import TEN_GBPS


class FatTreeTopology(Topology):
    """A k-pod FatTree with uniform link capacity."""

    def __init__(self, k: int = 8, link_capacity: float = TEN_GBPS) -> None:
        super().__init__()
        if k < 2 or k % 2 != 0:
            raise TopologyError(f"FatTree pod count k must be even and >= 2, got {k}")
        self.k = k
        self.half = k // 2
        half = self.half
        self._num_hosts = k * half * half

        # host <-> edge links
        self._host_up: List[int] = []
        self._host_down: List[int] = []
        for host in range(self._num_hosts):
            pod, edge, _port = self.host_position(host)
            up, down = self.links.add_duplex(
                f"h{host}", f"p{pod}e{edge}", link_capacity
            )
            self._host_up.append(up)
            self._host_down.append(down)

        # edge <-> aggregation links (full bipartite within each pod)
        self._edge_up = [
            [[0] * half for _ in range(half)] for _ in range(k)
        ]  # [pod][edge][agg]
        self._agg_down = [
            [[0] * half for _ in range(half)] for _ in range(k)
        ]  # [pod][agg][edge]
        for pod in range(k):
            for edge in range(half):
                for agg in range(half):
                    up, down = self.links.add_duplex(
                        f"p{pod}e{edge}", f"p{pod}a{agg}", link_capacity
                    )
                    self._edge_up[pod][edge][agg] = up
                    self._agg_down[pod][agg][edge] = down

        # aggregation <-> core links (agg `a` to core group `a`)
        self._agg_up = [
            [[0] * half for _ in range(half)] for _ in range(k)
        ]  # [pod][agg][core_index]
        self._core_down = [
            [[0] * k for _ in range(half)] for _ in range(half)
        ]  # [group][core_index][pod]
        for pod in range(k):
            for agg in range(half):
                for core_index in range(half):
                    up, down = self.links.add_duplex(
                        f"p{pod}a{agg}", f"c{agg}_{core_index}", link_capacity
                    )
                    self._agg_up[pod][agg][core_index] = up
                    self._core_down[agg][core_index][pod] = down

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return self._num_hosts

    @property
    def num_switches(self) -> int:
        """Edge + aggregation + core switch count (e.g. 80 for k=8)."""
        return self.k * self.half * 2 + self.half * self.half

    def host_position(self, host: int) -> Tuple[int, int, int]:
        """Decompose a host id into (pod, edge switch, port)."""
        self.validate_host(host)
        per_pod = self.half * self.half
        pod = host // per_pod
        within = host % per_pod
        return pod, within // self.half, within % self.half

    # ------------------------------------------------------------------
    # Routing candidates
    # ------------------------------------------------------------------
    def num_route_choices(self, src: int, dst: int) -> int:
        src_pod, src_edge, _ = self.host_position(src)
        dst_pod, dst_edge, _ = self.host_position(dst)
        if src == dst:
            raise TopologyError("no route from a host to itself")
        if src_pod == dst_pod:
            if src_edge == dst_edge:
                return 1
            return self.half
        return self.half * self.half

    def route(self, src: int, dst: int, selector: int) -> Tuple[int, ...]:
        src_pod, src_edge, _ = self.host_position(src)
        dst_pod, dst_edge, _ = self.host_position(dst)
        if src == dst:
            raise TopologyError("no route from a host to itself")
        choices = self.num_route_choices(src, dst)
        selector %= choices
        up = self._host_up[src]
        down = self._host_down[dst]
        if src_pod == dst_pod and src_edge == dst_edge:
            return (up, down)
        if src_pod == dst_pod:
            agg = selector
            return (
                up,
                self._edge_up[src_pod][src_edge][agg],
                self._agg_down[src_pod][agg][dst_edge],
                down,
            )
        agg = selector // self.half
        core_index = selector % self.half
        return (
            up,
            self._edge_up[src_pod][src_edge][agg],
            self._agg_up[src_pod][agg][core_index],
            self._core_down[agg][core_index][dst_pod],
            self._agg_down[dst_pod][agg][dst_edge],
            down,
        )
