"""Engine unit tests: fault injection, cache robustness, lint cleanliness.

Fault-injection matrix (thread pool shares memory, so injected task
callables can count attempts): a unit that raises is retried exactly
once and lands in the structured ``failures`` report with its offending
config; a corrupt payload is caught by validation and treated the same;
transient faults are rescued by the retry; sibling units always
complete.  A real process-pool crash is exercised via an unknown
scheduler name.  Finally, the engine module itself must be free of
SIM001/SIM002 (wall-clock / unseeded-randomness) findings *even when
linted under the simulator scope*.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

import pytest

from repro.errors import GridExecutionError
from repro.experiments.common import ScenarioConfig, ScenarioResult
from repro.experiments.parallel import (
    ResultCache,
    UnitResultError,
    WorkUnit,
    execute_unit,
    grid_of,
    run_grid,
    validate_unit_result,
)
from repro.metrics.serialize import grid_report_to_dict
from repro.simulator.observability import parallel_counters
from tools.simlint.runner import lint_paths, lint_source, select_rules

TINY = ScenarioConfig(num_jobs=2, fattree_k=4, seed=5)
BOOM = TINY.with_overrides(name="boom")
PAIR = ("pfs", "gurita")

#: Attempt counts per unit, shared with thread-pool workers.
ATTEMPTS: Counter = Counter()


@pytest.fixture(autouse=True)
def _reset_attempts():
    ATTEMPTS.clear()


def crash_marked(unit: WorkUnit) -> ScenarioResult:
    ATTEMPTS[unit.config.name] += 1
    if unit.config.name == "boom":
        raise RuntimeError("injected crash")
    return execute_unit(unit)


def crash_marked_once(unit: WorkUnit) -> ScenarioResult:
    ATTEMPTS[unit.config.name] += 1
    if unit.config.name == "boom" and ATTEMPTS[unit.config.name] == 1:
        raise RuntimeError("transient injected crash")
    return execute_unit(unit)


def corrupt_marked(unit: WorkUnit) -> ScenarioResult:
    ATTEMPTS[unit.config.name] += 1
    if unit.config.name == "boom":
        return {"not": "a ScenarioResult"}  # type: ignore[return-value]
    return execute_unit(unit)


def _units():
    return [
        WorkUnit(config=TINY, seed=1, schedulers=PAIR),
        WorkUnit(config=BOOM, seed=2, schedulers=PAIR),
        WorkUnit(config=TINY, seed=3, schedulers=PAIR),
    ]


class TestFaultInjection:
    def test_crash_retries_exactly_once_then_lands_in_failures(self):
        report = run_grid(
            _units(), parallel=2, use_threads=True, run_unit=crash_marked
        )
        # Exactly one retry: the failing unit ran twice, no more.
        assert ATTEMPTS["boom"] == 2
        assert report.stats.retries == 1
        assert report.stats.failures == len(report.failures) == 1
        failure = report.failures[0]
        assert failure.attempts == 2
        assert failure.unit.config.name == "boom"
        assert "injected crash" in failure.error
        assert "RuntimeError" in failure.traceback
        # The structured record carries the offending config.
        assert failure.to_dict()["config"]["name"] == "boom"
        # Sibling units completed despite the crash.
        assert report.results[0] is not None
        assert report.results[2] is not None
        assert report.stats.completed == 2
        with pytest.raises(GridExecutionError) as excinfo:
            report.scenario_results()
        assert "boom" in str(excinfo.value)

    def test_transient_crash_is_rescued_by_the_retry(self):
        report = run_grid(
            _units(), parallel=2, use_threads=True, run_unit=crash_marked_once
        )
        assert ATTEMPTS["boom"] == 2
        assert report.stats.retries == 1
        assert report.stats.failures == 0
        assert report.ok
        assert len(report.scenario_results()) == 3

    def test_corrupt_payload_fails_validation_and_is_reported(self):
        report = run_grid(
            _units(), parallel=2, use_threads=True, run_unit=corrupt_marked
        )
        assert ATTEMPTS["boom"] == 2  # corrupt payloads are retried too
        assert report.stats.failures == 1
        assert "UnitResultError" in report.failures[0].error
        assert report.results[0] is not None
        assert report.results[2] is not None

    def test_real_process_pool_crash_is_isolated(self):
        units = [
            WorkUnit(config=TINY, seed=1, schedulers=PAIR),
            WorkUnit(
                config=BOOM, seed=2, schedulers=("pfs", "no-such-policy")
            ),
        ]
        report = run_grid(units, parallel=2)
        assert report.stats.failures == 1
        assert report.failures[0].attempts == 2
        assert "no-such-policy" in report.failures[0].error
        assert report.results[0] is not None

    def test_failure_report_is_structured_and_json_safe(self):
        import json

        report = run_grid(
            _units(), parallel=2, use_threads=True, run_unit=crash_marked
        )
        record = report.failure_report()
        assert record["failed"] == 1
        assert record["completed"] == 2
        assert record["failures"][0]["attempts"] == 2
        json.dumps(record)  # must not raise


class TestSerialDegenerateCase:
    def test_serial_path_shares_retry_and_failure_logic(self):
        report = run_grid(_units(), parallel=1, run_unit=crash_marked)
        assert ATTEMPTS["boom"] == 2
        assert report.stats.failures == 1
        assert report.stats.completed == 2

    def test_progress_events_stream_in_order(self):
        events = []
        report = run_grid(_units()[:2], parallel=1, run_unit=crash_marked_once,
                          progress=events.append)
        kinds = [event.kind for event in events]
        assert kinds.count("retry") == 1
        assert kinds.count("done") == 2
        assert events[-1].completed == report.stats.completed == 2
        assert all(event.total == 2 for event in events)


class TestResultCache:
    def test_roundtrip_and_hit_counting(self, tmp_path):
        units = grid_of([TINY], seeds=(1, 2), schedulers=PAIR)
        cold = run_grid(units, cache_dir=tmp_path)
        warm = run_grid(units, cache_dir=tmp_path)
        assert cold.stats.cache_hits == 0
        assert warm.stats.cache_hits == 2
        assert [r.average_jcts() for r in warm.scenario_results()] == [
            r.average_jcts() for r in cold.scenario_results()
        ]

    def test_corrupt_entry_degrades_to_miss_and_is_rewritten(self, tmp_path):
        unit = WorkUnit(config=TINY, seed=1, schedulers=PAIR)
        cache = ResultCache(tmp_path)
        run_grid([unit], cache=cache)
        path = cache.path_for(unit)
        assert path.exists()
        path.write_bytes(b"garbage, not pickle")
        assert cache.load(unit) is None
        report = run_grid([unit], cache=cache)
        assert report.stats.cache_hits == 0  # recomputed...
        assert cache.load(unit) is not None  # ...and rewritten

    def test_salt_bump_invalidates(self, tmp_path):
        unit = WorkUnit(config=TINY, seed=1, schedulers=PAIR)
        old = ResultCache(tmp_path, salt="v-old")
        old.store(unit, execute_unit(unit))
        assert old.load(unit) is not None
        assert ResultCache(tmp_path, salt="v-new").load(unit) is None

    def test_env_salt_override(self, monkeypatch, tmp_path):
        from repro.experiments.parallel import default_cache_salt

        monkeypatch.setenv("REPRO_CACHE_SALT", "my-worktree")
        assert default_cache_salt() == "my-worktree"
        unit = WorkUnit(config=TINY, seed=1, schedulers=PAIR)
        assert unit.fingerprint() == unit.fingerprint("my-worktree")


class TestValidation:
    def test_rejects_wrong_type(self):
        unit = WorkUnit(config=TINY, seed=1, schedulers=PAIR)
        with pytest.raises(UnitResultError, match="expected ScenarioResult"):
            validate_unit_result(unit, "garbage")

    def test_rejects_missing_scheduler(self):
        unit = WorkUnit(config=TINY, seed=1, schedulers=PAIR)
        outcome = execute_unit(
            WorkUnit(config=TINY, seed=1, schedulers=("pfs",))
        )
        with pytest.raises(UnitResultError, match="returned schedulers"):
            validate_unit_result(unit, outcome)

    def test_accepts_good_payload(self):
        unit = WorkUnit(config=TINY, seed=1, schedulers=PAIR)
        outcome = execute_unit(unit)
        assert validate_unit_result(unit, outcome) is outcome


class TestReportSurfaces:
    def test_grid_report_to_dict_carries_failures_and_stats(self):
        report = run_grid(
            _units(), parallel=2, use_threads=True, run_unit=crash_marked
        )
        record = grid_report_to_dict(report)
        assert record["results"][1] is None  # the failed unit's slot
        assert record["results"][0] is not None
        assert record["stats"]["failures"] == 1
        assert record["stats"]["retries"] == 1
        assert len(record["units"]) == 3
        assert record["failures"][0]["config"]["name"] == "boom"

    def test_parallel_counters_snapshot(self):
        report = run_grid(_units()[:2], parallel=1, run_unit=crash_marked_once)
        counters = parallel_counters(report)
        assert counters["units_total"] == 2.0
        assert counters["units_completed"] == 2.0
        assert counters["retries"] == 1.0
        assert counters["failures"] == 0.0
        assert 0.0 <= counters["worker_utilization"] <= 1.0


ENGINE_PATH = (
    Path(__file__).resolve().parents[2] / "src/repro/experiments/parallel.py"
)


class TestEngineIsSimlintClean:
    def test_no_wallclock_or_randomness_even_under_simulator_scope(self):
        """SIM001 is scoped to the simulator packages, so force the scope:
        lint the engine source as if it lived there and require zero
        SIM001/SIM002 hits — the engine must not read the host clock
        (timing is injected via repro.experiments.timing) nor touch
        global randomness (seeds are blake2b-derived)."""
        source = ENGINE_PATH.read_text(encoding="utf-8")
        report = lint_source(
            source,
            path="src/repro/simulator/_parallel_scope_probe.py",
            rules=select_rules(["SIM001", "SIM002"]),
        )
        assert report.clean, report.render_human()

    def test_engine_module_lints_clean_under_default_rules(self):
        report = lint_paths([str(ENGINE_PATH)])
        assert report.clean, report.render_human()
