"""Figure 4 — the blocking-impact example behind Johnson's rules.

Paper numbers: scheduling the blocking job A first gives average JCT 4.25
units; least-blocking-first gives 3.50.  The reconstruction reproduces
both exactly, and the brute-force solver confirms least-blocking-first is
*optimal* for the instance (the "near optimal" sanity anchor).
"""

import pytest

from repro.theory.exact import brute_force_best
from repro.theory.examples import (
    FIG4_PAPER_BLOCKING_AVERAGE,
    FIG4_PAPER_LEAST_BLOCKING_AVERAGE,
    figure4_averages,
    figure4_instance,
)


def test_fig4_blocking_example(run_once):
    blocking_avg, least_avg = run_once(figure4_averages)
    print(f"\nFIG4  blocking-first avg JCT       = {blocking_avg:5.2f} "
          f"(paper: {FIG4_PAPER_BLOCKING_AVERAGE})")
    print(f"FIG4  least-blocking-first avg JCT = {least_avg:5.2f} "
          f"(paper: {FIG4_PAPER_LEAST_BLOCKING_AVERAGE})")
    assert blocking_avg == pytest.approx(FIG4_PAPER_BLOCKING_AVERAGE)
    assert least_avg == pytest.approx(FIG4_PAPER_LEAST_BLOCKING_AVERAGE)


def test_fig4_least_blocking_is_optimal(run_once):
    best = run_once(lambda: brute_force_best(figure4_instance()))
    print(f"\nFIG4  brute-force optimal avg JCT  = {best.average_jct:5.2f} "
          f"via order {best.order}")
    assert best.average_jct == pytest.approx(FIG4_PAPER_LEAST_BLOCKING_AVERAGE)
