"""Figure 7 — bursty traffic, per category (7a FB-Tao, 7b TPC-DS).

Paper: with jobs arriving 2 microseconds apart, Gurita outperforms PFS by
up to 2x and Baraat by 1.8x across categories, and Stream by up to 1.9x
in every category *except category I* — Stream's pure SPQ hands small
jobs the entire fabric, while Gurita reserves a trickle for low-priority
traffic (starvation mitigation).  Aalo is matched overall.

The paper runs this on a 48-pod FatTree with 10,000 generated jobs; the
bench keeps the 8-pod fabric (pass full_scale=True via
repro.experiments.figure7_config for the original configuration).
"""

import pytest

from _util import bench_jobs

from repro.experiments.common import run_scenario
from repro.experiments.figures import figure7_config
from repro.metrics.report import format_category_table


@pytest.mark.parametrize("structure", ["fb-tao", "tpcds"])
def test_fig7_bursty_per_category(run_once, structure):
    config = figure7_config(structure, num_jobs=bench_jobs(60))
    outcome = run_once(run_scenario, config)
    table = outcome.category_improvements_over("gurita")
    print(
        "\n"
        + format_category_table(
            table,
            title=f"FIG7 ({structure}, bursty) improvement of Gurita:",
        )
    )
    overall = outcome.improvements_over("gurita")
    print("FIG7 overall:", {k: round(v, 2) for k, v in sorted(overall.items())})
    # Gurita wins on average against the decentralized comparators.
    assert overall["pfs"] > 1.0
    assert overall["baraat"] > 1.0
    # Small categories: strong wins over PFS/Baraat under bursts.
    small = [cat for cat in (1, 2) if cat in table["pfs"]]
    assert small and max(table["pfs"][cat] for cat in small) > 1.3
    # The paper's Stream exception: category I may favour Stream (pure
    # SPQ gives mice everything); Gurita must still win some category.
    assert any(factor > 1.0 for factor in table["stream"].values())
    # Aalo parity overall.
    assert overall["aalo"] > 0.85
