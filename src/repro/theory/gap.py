"""Optimality-gap harness: "near optimal" as a measured, pinned curve.

The paper's headline claim is that Gurita is *near optimal*.  The
small-instance brute force in :mod:`repro.theory.exact` certifies that on
toy workloads; this module turns the claim into a quantitative,
regression-testable property on the real simulator: for every scheduler
and every scenario family it computes the per-job ratio

    gap(job) = measured JCT / combinatorial lower bound

with the bounds of :mod:`repro.theory.lowerbound` (critical-path, port,
and the precedence-aware port bound) evaluated at the scenario topology's
host NIC rate.  No schedule can push a ratio below 1.0, so the mean/max
gap per (scheduler, scenario) cell is an absolute yardstick — comparable
across schedulers, workload families, and fault profiles, unlike the
pairwise improvement factors of the figure benches.

A :class:`GapReport` carries every cell plus the raw per-job (JCT, bound)
pairs; its blake2b fingerprint is a pure function of those floats, so

* serial and ``parallel=N`` harness runs must fingerprint identically
  (the scenarios fan out through :func:`repro.experiments.parallel.run_grid`
  and inherit its determinism contract), and
* the committed golden artifact (``GAP_GOLDEN.json``, checked by the
  ``gap-smoke`` CI job via ``repro gap --check``) pins the gap curve —
  a later PR that silently worsens any scheduler's gap breaks the build.

Usage::

    report = run_gap()                      # default families x registry
    print(report.format_table())
    report.validate()                       # lower_bound <= JCT everywhere
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError
from repro.experiments.common import ScenarioConfig, scenario_link_rate
from repro.experiments.parallel import (
    GridReport,
    ProgressHook,
    WorkUnit,
    run_grid,
)
from repro.metrics.report import format_gap_table
from repro.schedulers.registry import available_schedulers
from repro.simulator.runtime import SimulationResult
from repro.simulator.units import BytesPerSec, Fraction, Seconds
from repro.theory.lowerbound import job_lower_bound

#: Bump when the golden-artifact layout changes.
GAP_GOLDEN_FORMAT = 1

#: Relative slack for "bound <= JCT": float noise only, not modelling slack.
GAP_TOLERANCE: Fraction = 1e-9

#: The default scenario families: structure x arrival x fabric health.
#: Deliberately >= 3 families, including one under fault injection, so the
#: gap curve covers the trace-driven, bursty, and degraded regimes.
GAP_FAMILIES: Tuple[Tuple[str, str, str, str], ...] = (
    # (family name, structure, arrival mode, fault profile)
    ("trace-fbtao", "fb-tao", "uniform", ""),
    ("trace-tpcds", "tpcds", "uniform", ""),
    ("bursty-fbtao", "fb-tao", "bursty", ""),
    ("faulted-fbtao", "fb-tao", "uniform", "link-flap"),
)


def gap_scenarios(
    num_jobs: int = 12,
    fattree_k: int = 4,
    seed: int = 42,
    families: Optional[Sequence[str]] = None,
) -> List[ScenarioConfig]:
    """The harness's scenario list, one config per family.

    ``families`` filters :data:`GAP_FAMILIES` by name (default: all).
    """
    selected = list(GAP_FAMILIES)
    if families is not None:
        by_name = {family[0]: family for family in GAP_FAMILIES}
        unknown = [name for name in families if name not in by_name]
        if unknown:
            raise ExperimentError(
                f"unknown gap families {unknown}; have {sorted(by_name)}"
            )
        selected = [by_name[name] for name in families]
    return [
        ScenarioConfig(
            name=f"gap-{name}",
            structure=structure,
            arrival_mode=arrival,
            num_jobs=num_jobs,
            fattree_k=fattree_k,
            seed=seed,
            fault_profile=fault_profile,
        )
        for name, structure, arrival, fault_profile in selected
    ]


def workload_lower_bounds(
    result: SimulationResult, link_rate: BytesPerSec
) -> Dict[int, Seconds]:
    """Per-job combinatorial lower bound for one simulated workload."""
    return {
        job.job_id: job_lower_bound(job, link_rate) for job in result.jobs
    }


@dataclass(frozen=True)
class GapCell:
    """One (scenario, scheduler) cell of the gap curve."""

    scenario: str
    scheduler: str
    #: jobs that completed and have a positive lower bound
    num_jobs: int
    mean_jct: Seconds
    mean_bound: Seconds
    #: mean of per-job JCT/bound ratios (>= 1.0 for any feasible schedule)
    mean_gap: Fraction
    max_gap: Fraction
    #: jobs whose measured JCT undercut their bound beyond float noise —
    #: any nonzero count means a bound (or the simulator) is wrong
    violations: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "scheduler": self.scheduler,
            "num_jobs": self.num_jobs,
            "mean_jct": self.mean_jct,
            "mean_bound": self.mean_bound,
            "mean_gap": self.mean_gap,
            "max_gap": self.max_gap,
            "violations": self.violations,
        }


def gap_cell(
    scenario: str,
    scheduler: str,
    result: SimulationResult,
    link_rate: BytesPerSec,
) -> Tuple[GapCell, Dict[int, Tuple[Seconds, Seconds]]]:
    """Compute one cell plus its raw per-job ``(JCT, bound)`` pairs."""
    pairs: Dict[int, Tuple[Seconds, Seconds]] = {}
    for job in result.jobs:
        jct = job.completion_time()
        if jct is None:
            continue
        bound = job_lower_bound(job, link_rate)
        if bound > 0.0:
            pairs[job.job_id] = (jct, bound)
    if not pairs:
        raise ExperimentError(
            f"gap cell ({scenario}, {scheduler}) has no completed jobs "
            "with positive lower bounds"
        )
    gaps = [jct / bound for jct, bound in pairs.values()]
    violations = sum(
        1
        for jct, bound in pairs.values()
        if jct < bound * (1.0 - GAP_TOLERANCE)
    )
    cell = GapCell(
        scenario=scenario,
        scheduler=scheduler,
        num_jobs=len(pairs),
        mean_jct=sum(jct for jct, _ in pairs.values()) / len(pairs),
        mean_bound=sum(bound for _, bound in pairs.values()) / len(pairs),
        mean_gap=sum(gaps) / len(gaps),
        max_gap=max(gaps),
        violations=violations,
    )
    return cell, pairs


class GapViolationError(ExperimentError):
    """A measured JCT undercut its combinatorial lower bound."""


@dataclass
class GapReport:
    """The full gap curve: scenario family x scheduler -> GapCell."""

    scenarios: List[ScenarioConfig]
    schedulers: Tuple[str, ...]
    #: scenario name -> scheduler name -> cell
    cells: Dict[str, Dict[str, GapCell]] = field(default_factory=dict)
    #: scenario name -> scheduler name -> job id -> (JCT, lower bound);
    #: the fingerprint hashes exactly this
    job_pairs: Dict[str, Dict[str, Dict[int, Tuple[float, float]]]] = field(
        default_factory=dict
    )
    #: the engine report behind the run (units, cache hits, timings)
    grid: Optional[GridReport] = field(default=None, compare=False)

    def mean_gaps(self) -> Dict[str, Dict[str, float]]:
        """Scenario -> scheduler -> mean gap (the headline table)."""
        return {
            scenario: {
                name: cell.mean_gap for name, cell in sorted(row.items())
            }
            for scenario, row in sorted(self.cells.items())
        }

    def worst_cell(self) -> GapCell:
        """The cell with the largest mean gap (the weakest claim)."""
        return max(
            (cell for row in self.cells.values() for cell in row.values()),
            key=lambda cell: (cell.mean_gap, cell.scenario, cell.scheduler),
        )

    def validate(self) -> None:
        """Raise :class:`GapViolationError` unless bound <= JCT everywhere."""
        bad = [
            cell
            for row in self.cells.values()
            for cell in row.values()
            if cell.violations
        ]
        if bad:
            detail = "; ".join(
                f"({cell.scenario}, {cell.scheduler}): "
                f"{cell.violations} job(s)"
                for cell in sorted(bad, key=lambda c: (c.scenario, c.scheduler))
            )
            raise GapViolationError(
                f"measured JCT undercut the lower bound in {detail} — "
                "a bound (or the simulator) is wrong"
            )

    def fingerprint(self) -> str:
        """blake2b-16 over the raw per-job (JCT, bound) pairs.

        The same scheme as ``benchmarks/fingerprint_figures.py``: any
        float divergence anywhere — scheduler decision, bound term,
        fault timeline — changes it.
        """
        record = {
            scenario: {
                scheduler: sorted(
                    (job_id, jct, bound)
                    for job_id, (jct, bound) in pairs.items()
                )
                for scheduler, pairs in sorted(row.items())
            }
            for scenario, row in sorted(self.job_pairs.items())
        }
        encoded = json.dumps(record, sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(encoded.encode("utf-8"), digest_size=16).hexdigest()

    def format_table(self) -> str:
        """The scenario x scheduler mean-gap table, rendered."""
        return format_gap_table(self.mean_gaps())

    def to_golden(self) -> Dict[str, Any]:
        """The committed-artifact form (see ``GAP_GOLDEN.json``)."""
        first = self.scenarios[0]
        return {
            "format": GAP_GOLDEN_FORMAT,
            "harness": {
                "families": [c.name.replace("gap-", "", 1) for c in self.scenarios],
                "num_jobs": first.num_jobs,
                "fattree_k": first.fattree_k,
                "seed": first.seed,
                "schedulers": list(self.schedulers),
            },
            "fingerprint": self.fingerprint(),
            "mean_gaps": self.mean_gaps(),
            "cells": {
                scenario: {
                    name: cell.to_dict() for name, cell in sorted(row.items())
                }
                for scenario, row in sorted(self.cells.items())
            },
        }


def run_gap(
    scenarios: Optional[Sequence[ScenarioConfig]] = None,
    schedulers: Optional[Sequence[str]] = None,
    num_jobs: int = 12,
    fattree_k: int = 4,
    seed: int = 42,
    families: Optional[Sequence[str]] = None,
    parallel: int = 1,
    cache_dir: Optional[Union[str, "Any"]] = None,
    progress: Optional[ProgressHook] = None,
) -> GapReport:
    """Run the optimality-gap harness.

    Every (scenario, full scheduler set) pair is one grid work unit, so
    the harness fans out across ``parallel`` workers, reuses the on-disk
    ``cache_dir`` and — per the engine's determinism contract — produces
    a report whose fingerprint is bit-identical to the serial run.
    """
    if scenarios is None:
        scenarios = gap_scenarios(
            num_jobs=num_jobs, fattree_k=fattree_k, seed=seed, families=families
        )
    scenarios = list(scenarios)
    names = tuple(
        schedulers if schedulers is not None else available_schedulers()
    )
    units = [
        WorkUnit(config=config, schedulers=names) for config in scenarios
    ]
    grid = run_grid(units, parallel=parallel, cache_dir=cache_dir, progress=progress)  # simlint: ignore[SIM106] (default worker bumps the benchmark rebuild counter; write-only instrumentation)
    return gap_report_from_grid(grid)


def gap_report_from_grid(grid: "GridReport") -> GapReport:
    """Assemble a :class:`GapReport` from a completed harness grid.

    The grid's own units carry everything needed (scenario configs and
    the scheduler set), so this also works for grids executed elsewhere —
    e.g. a supervised/resumed run replaying the same harness units.
    """
    scenarios = [unit.config for unit in grid.units]
    names = grid.units[0].scheduler_names() if grid.units else ()
    report = GapReport(scenarios=scenarios, schedulers=names, grid=grid)
    for config, outcome in zip(scenarios, grid.scenario_results()):
        link_rate = scenario_link_rate(config)
        row: Dict[str, GapCell] = {}
        raw: Dict[str, Dict[int, Tuple[float, float]]] = {}
        for name in names:
            cell, pairs = gap_cell(
                config.name, name, outcome.results[name], link_rate
            )
            row[name] = cell
            raw[name] = pairs
        report.cells[config.name] = row
        report.job_pairs[config.name] = raw
    return report


def check_gap_golden(
    report: GapReport, golden: Mapping[str, Any]
) -> List[str]:
    """Compare a fresh report against a committed golden artifact.

    Returns human-readable mismatch lines (empty = the gap curve is
    pinned).  The fingerprint comparison is the binding check; mean-gap
    deltas are listed alongside to make a mismatch diagnosable.
    """
    problems: List[str] = []
    if golden.get("format") != GAP_GOLDEN_FORMAT:
        return [
            f"golden artifact format {golden.get('format')!r} != "
            f"{GAP_GOLDEN_FORMAT} (regenerate with `repro gap --out`)"
        ]
    expected = golden.get("fingerprint")
    actual = report.fingerprint()
    if actual != expected:
        problems.append(f"fingerprint {actual} != golden {expected}")
        golden_gaps = golden.get("mean_gaps", {})
        for scenario, row in sorted(report.mean_gaps().items()):
            for name, gap in sorted(row.items()):
                pinned = golden_gaps.get(scenario, {}).get(name)
                if pinned is None:
                    problems.append(f"  {scenario}/{name}: no golden cell")
                elif abs(pinned - gap) > 1e-12:
                    problems.append(
                        f"  {scenario}/{name}: mean gap {gap:.6f} "
                        f"vs golden {pinned:.6f}"
                    )
    return problems


def golden_harness_report(
    golden: Mapping[str, Any],
    parallel: int = 1,
    cache_dir: Optional[Union[str, "Any"]] = None,
    progress: Optional[ProgressHook] = None,
) -> GapReport:
    """Re-run the harness with a golden artifact's embedded parameters."""
    harness = golden.get("harness")
    if not isinstance(harness, dict):
        raise ExperimentError(
            "golden artifact has no 'harness' parameter block"
        )
    return run_gap(
        schedulers=tuple(harness["schedulers"]),
        num_jobs=int(harness["num_jobs"]),
        fattree_k=int(harness["fattree_k"]),
        seed=int(harness["seed"]),
        families=list(harness["families"]),
        parallel=parallel,
        cache_dir=cache_dir,
        progress=progress,
    )


__all__ = [
    "GAP_FAMILIES",
    "GAP_GOLDEN_FORMAT",
    "GAP_TOLERANCE",
    "GapCell",
    "GapReport",
    "GapViolationError",
    "check_gap_golden",
    "gap_cell",
    "gap_report_from_grid",
    "gap_scenarios",
    "golden_harness_report",
    "run_gap",
    "workload_lower_bounds",
]
