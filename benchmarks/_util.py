"""Benchmark sizing helpers (shared by every figure bench)."""

from __future__ import annotations

import os


def bench_jobs(default: int) -> int:
    """Workload size for benches; override with REPRO_BENCH_JOBS."""
    return int(os.environ.get("REPRO_BENCH_JOBS", default))
