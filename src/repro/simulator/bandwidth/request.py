"""Allocation requests: what a scheduling policy asks of the network.

A scheduler does not set rates directly.  Each reallocation round it
returns an :class:`AllocationRequest` describing *how* the network should
divide bandwidth — plain max-min (PFS / TCP), strict priority queuing, or
Gurita's WRR emulation — plus the per-flow priority classes.  The runtime
hands the request to :func:`dispatch_allocation`.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import SchedulerError
from repro.simulator.bandwidth.maxmin import Route, allocate_maxmin
from repro.simulator.bandwidth.spq import allocate_spq
from repro.simulator.bandwidth.wrr import DEFAULT_UTILIZATION, allocate_wrr

#: Number of priority queues used in the paper's evaluation (§V).
DEFAULT_NUM_CLASSES = 4

#: What commodity switches typically support (paper cites 8).
MAX_SWITCH_CLASSES = 8


class AllocationMode(enum.Enum):
    """How link bandwidth is divided among flows."""

    MAXMIN = "maxmin"  #: per-flow fair sharing (TCP model; the PFS baseline)
    SPQ = "spq"  #: strict priority queuing
    WRR = "wrr"  #: WRR-emulated SPQ (Gurita's starvation mitigation)


class AllocationRequest:
    """A scheduler's bandwidth-division instructions for one round.

    A ``__slots__`` class (historically a dataclass): one request is built
    per reallocation round, and the engine touches its fields on every
    allocation.  Construction, equality, and repr mirror the dataclass.
    """

    __slots__ = ("mode", "priorities", "num_classes", "utilization", "weight_mode")

    def __init__(
        self,
        mode: AllocationMode = AllocationMode.MAXMIN,
        priorities: Optional[Dict[int, int]] = None,
        num_classes: int = DEFAULT_NUM_CLASSES,
        utilization: float = DEFAULT_UTILIZATION,
        weight_mode: str = "inverse_wait",
    ) -> None:
        self.mode = mode
        #: flow id -> priority class, 0 = highest.  Ignored for MAXMIN.
        self.priorities: Dict[int, int] = {} if priorities is None else priorities
        self.num_classes = num_classes
        #: Utilisation parameter for the WRR waiting-time model.
        self.utilization = utilization
        #: "inverse_wait" (default) or "literal"; see :mod:`...bandwidth.wrr`.
        self.weight_mode = weight_mode
        if not 1 <= self.num_classes <= MAX_SWITCH_CLASSES:
            raise SchedulerError(
                f"num_classes must be in [1, {MAX_SWITCH_CLASSES}], "
                f"got {self.num_classes}"
            )

    def _astuple(self) -> Tuple[object, ...]:
        return (
            self.mode,
            self.priorities,
            self.num_classes,
            self.utilization,
            self.weight_mode,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not AllocationRequest:
            return NotImplemented
        assert isinstance(other, AllocationRequest)
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:
        return (
            f"AllocationRequest(mode={self.mode!r}, "
            f"priorities={self.priorities!r}, "
            f"num_classes={self.num_classes!r}, "
            f"utilization={self.utilization!r}, "
            f"weight_mode={self.weight_mode!r})"
        )

    def params_key(self) -> Tuple[object, ...]:
        """Everything but the priority map, as a cache-invalidation key.

        The incremental engine discards its cached rates (and, when
        ``num_classes`` changes, its per-class memberships) whenever two
        consecutive requests disagree on this key.
        """
        return (
            self.mode,
            self.num_classes,
            self.utilization,
            self.weight_mode,
        )


def dispatch_allocation(
    request: AllocationRequest,
    flow_routes: Mapping[int, Route],
    capacities: Sequence[float],
) -> Dict[int, float]:
    """Compute per-flow rates for ``request`` over the given routes."""
    if request.mode is AllocationMode.MAXMIN:
        return allocate_maxmin(flow_routes, list(capacities))
    if request.mode is AllocationMode.SPQ:
        return allocate_spq(
            flow_routes, request.priorities, capacities, request.num_classes
        )
    if request.mode is AllocationMode.WRR:
        return allocate_wrr(
            flow_routes,
            request.priorities,
            capacities,
            request.num_classes,
            utilization=request.utilization,
            weight_mode=request.weight_mode,
        )
    raise SchedulerError(f"unknown allocation mode {request.mode!r}")
