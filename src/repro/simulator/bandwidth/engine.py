"""Incremental allocation engine: membership caching across epochs.

The flow-level simulator reallocates rates after every event batch.  The
policy logic is cheap; what dominates wall-clock is rebuilding the per-link
membership structures (``link_members`` / ``counts``) inside every
water-fill call — arXiv:1603.07981 measures exactly this recomputation cost
as the bottleneck of flow-level coflow simulators.

:class:`AllocationState` keeps those structures alive across allocation
epochs:

* the runtime feeds it **structural deltas** (flow added on release, flow
  removed on completion) instead of a fresh route map every round;
* **priority deltas** move flows between per-class memberships — either the
  precise changed-flow set a policy reports through
  :meth:`repro.schedulers.base.SchedulerPolicy.consume_priority_delta`, or
  a full diff against the previous round's priority map;
* when neither structure nor priorities nor request parameters changed, the
  previous rate vector is returned as-is (**cache hit**) without touching
  numpy at all.

Full membership rebuilds only happen when the class layout itself is
invalidated (first priority-mode allocation, or ``num_classes`` changed).
:class:`EngineStats` counts all of this; the benchmarks assert ≥2× fewer
rebuilds than the legacy from-scratch path at bit-identical JCT output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.simulator.bandwidth.maxmin import (
    LinkMembership,
    Route,
    water_fill_membership,
)
from repro.simulator.bandwidth.request import AllocationMode, AllocationRequest
from repro.simulator.bandwidth.spq import allocate_spq_memberships
from repro.simulator.bandwidth.wrr import allocate_wrr_memberships
from repro.simulator.hotpath import hot_path
from repro.simulator.units import BytesPerSec


@dataclass
class EngineStats:
    """Counters describing how much work the incremental engine avoided."""

    #: total :meth:`AllocationState.allocate` calls
    allocations: int = 0
    #: allocations served straight from the cached rate vector
    cache_hits: int = 0
    #: from-scratch class-membership rebuilds (mode/num_classes invalidation)
    full_rebuilds: int = 0
    #: incremental membership row updates (flow add / remove / class move)
    delta_updates: int = 0
    #: reallocation epochs the runtime skipped via the dirty flag
    epochs_skipped: int = 0
    #: capacity revocations/restorations applied by fault injection
    capacity_revocations: int = 0

    def snapshot(self) -> "EngineStats":
        return EngineStats(
            allocations=self.allocations,
            cache_hits=self.cache_hits,
            full_rebuilds=self.full_rebuilds,
            delta_updates=self.delta_updates,
            epochs_skipped=self.epochs_skipped,
            capacity_revocations=self.capacity_revocations,
        )


class AllocationState:
    """Persistent allocation state for one simulation run.

    Owns the global flow membership, the per-class memberships (built
    lazily on the first SPQ/WRR request), the effective class of every
    active flow, and the last computed rate vector.

    Invalidation rules:

    * flow add/remove marks the structure dirty (cache miss) but only
      touches the changed rows;
    * a priority change moves the flow between class memberships (delta
      update);
    * a change of allocation mode parameters (``num_classes``) discards
      and rebuilds the class memberships (full rebuild);
    * anything else — identical active set, priorities, and request
      parameters — is a cache hit returning the previous rates.
    """

    def __init__(self, capacities: Sequence[BytesPerSec]) -> None:
        self._caps: npt.NDArray[np.float64] = np.asarray(capacities, dtype=float)
        self.all_flows = LinkMembership(len(self._caps))
        self._class_members: Optional[List[LinkMembership]] = None
        self._num_classes: Optional[int] = None
        #: effective (clamped) class per flow, valid when class members exist
        self._class_of: Dict[int, int] = {}
        self._priorities: Dict[int, int] = {}
        self._params: Optional[Tuple[object, ...]] = None
        self._structure_dirty = True
        self._last_rates: Dict[int, BytesPerSec] = {}
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """Capture the complete engine state for a checkpoint.

        Returns a shallow ``__dict__`` copy: the capacity vector, the
        live memberships, class layout, priority map, cached rate
        vector, and stats.  The payload is intended to be serialized
        (pickled) immediately as part of one simulator-wide object
        graph — the inner containers are shared with the live engine
        until that happens, exactly like the scheduler contract.
        """
        return dict(self.__dict__)

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state`."""
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Read-only views (consumed by the runtime invariant auditor)
    # ------------------------------------------------------------------
    @property
    def class_members(self) -> Optional[List[LinkMembership]]:
        """Per-class memberships, or None before the first classed request."""
        return self._class_members

    @property
    def num_classes(self) -> Optional[int]:
        """Class count the memberships were built for."""
        return self._num_classes

    @property
    def class_of(self) -> Dict[int, int]:
        """Effective class per flow; treat as read-only."""
        return self._class_of

    # ------------------------------------------------------------------
    # Structural deltas (fed by the runtime as events are applied)
    # ------------------------------------------------------------------
    @hot_path
    def add_flow(self, flow_id: int, route: Route) -> None:
        """A flow became active (coflow released)."""
        self.all_flows.add(flow_id, route)
        if self._class_members is not None:
            assert self._num_classes is not None
            # Class unknown until the next request; park it in the lowest
            # class (the default for flows absent from a priority map) and
            # let the priority diff move it if the policy says otherwise.
            cls = self._num_classes - 1
            self._class_members[cls].add(flow_id, route)
            self._class_of[flow_id] = cls
        self._structure_dirty = True
        self.stats.delta_updates += 1

    @hot_path
    def remove_flow(self, flow_id: int) -> None:
        """A flow finished (all bytes delivered)."""
        self.all_flows.remove(flow_id)
        if self._class_members is not None:
            self._class_members[self._class_of.pop(flow_id)].remove(flow_id)
        self._priorities.pop(flow_id, None)
        self._structure_dirty = True
        self.stats.delta_updates += 1

    @hot_path
    def update_route(self, flow_id: int, route: Route) -> None:
        """A live flow moved to a new route (fault-driven reroute).

        Unlike remove+add, the flow's cached class assignment survives —
        essential for policies that report precise priority deltas, which
        would otherwise never re-report the unchanged class and leave the
        flow misfiled in the lowest class.
        """
        self.all_flows.remove(flow_id)
        self.all_flows.add(flow_id, route)
        if self._class_members is not None:
            cls = self._class_of[flow_id]
            self._class_members[cls].remove(flow_id)
            self._class_members[cls].add(flow_id, route)
        self._structure_dirty = True
        self.stats.delta_updates += 1

    @hot_path
    def set_capacity(self, link_id: int, capacity: BytesPerSec) -> None:
        """Revoke or restore one link's capacity (fault injection).

        Only the capacity vector entry changes — the link memberships,
        class layout, and priority map all stay valid, so this
        invalidates the rate cache for the affected link's next
        allocation without triggering any membership rebuild.
        ``capacity=0.0`` models a downed link (the water-fill gives its
        members zero share); the original capacity restores it.
        """
        if not 0 <= link_id < len(self._caps):
            raise IndexError(
                f"link {link_id} out of range (num_links={len(self._caps)})"
            )
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._caps[link_id] = capacity
        self._structure_dirty = True
        self.stats.capacity_revocations += 1

    def capacity_of(self, link_id: int) -> BytesPerSec:
        """The engine's current (possibly revoked) capacity for a link."""
        return float(self._caps[link_id])

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    @hot_path
    def allocate(
        self,
        request: AllocationRequest,
        priority_delta: Optional[FrozenSet[int]] = None,
    ) -> Dict[int, BytesPerSec]:
        """Rates for ``request`` over the currently active flows.

        ``priority_delta`` is the policy-reported set of flows whose class
        changed since the last round (``None`` = unknown, do a full diff).
        The returned dict is the engine's cache — callers must not mutate
        it.
        """
        self.stats.allocations += 1
        params = request.params_key()
        params_changed = params != self._params
        needs_classes = request.mode is not AllocationMode.MAXMIN

        if not self._structure_dirty and not params_changed:
            if self._unchanged_priorities(request, priority_delta, needs_classes):
                self.stats.cache_hits += 1
                return self._last_rates

        if needs_classes:
            if self._class_members is None or self._num_classes != request.num_classes:
                self._rebuild_class_members(request)
            else:
                self._apply_priority_deltas(request, priority_delta)

        rates = self._compute(request)
        self._params = params
        self._priorities = dict(request.priorities)
        self._structure_dirty = False
        self._last_rates = rates
        return rates

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _unchanged_priorities(
        self,
        request: AllocationRequest,
        priority_delta: Optional[FrozenSet[int]],
        needs_classes: bool,
    ) -> bool:
        if not needs_classes:
            return True  # MAXMIN ignores priorities entirely
        if priority_delta is not None:
            return not priority_delta
        return request.priorities == self._priorities

    def _effective_class(self, request: AllocationRequest, flow_id: int) -> int:
        cls = request.priorities.get(flow_id, request.num_classes - 1)
        return min(max(cls, 0), request.num_classes - 1)

    def _rebuild_class_members(self, request: AllocationRequest) -> None:
        """Discard and rebuild the per-class memberships from scratch."""
        grouped: List[Dict[int, Route]] = [
            dict() for _ in range(request.num_classes)
        ]
        self._class_of = {}
        for flow_id, route in self.all_flows.routes.items():
            cls = self._effective_class(request, flow_id)
            grouped[cls][flow_id] = route
            self._class_of[flow_id] = cls
        self._class_members = [
            LinkMembership.from_routes(group, len(self._caps))
            for group in grouped
        ]
        self._num_classes = request.num_classes
        self.stats.full_rebuilds += 1

    def _apply_priority_deltas(
        self,
        request: AllocationRequest,
        priority_delta: Optional[FrozenSet[int]],
    ) -> None:
        """Move re-classed flows between class memberships."""
        assert self._class_members is not None
        candidates = (
            priority_delta
            if priority_delta is not None
            else self.all_flows.routes.keys()
        )
        # Deterministic application order: class-membership insertion order
        # must not depend on set iteration order (SIM003).
        for flow_id in sorted(candidates):
            route = self.all_flows.routes.get(flow_id)
            if route is None:  # reported but already finished
                continue
            cls = self._effective_class(request, flow_id)
            old = self._class_of[flow_id]
            if cls != old:
                self._class_members[old].remove(flow_id)
                self._class_members[cls].add(flow_id, route)
                self._class_of[flow_id] = cls
                self.stats.delta_updates += 1

    def _compute(self, request: AllocationRequest) -> Dict[int, BytesPerSec]:
        if request.mode is AllocationMode.MAXMIN:
            return water_fill_membership(self.all_flows, self._caps.copy())
        assert self._class_members is not None
        if request.mode is AllocationMode.SPQ:
            return allocate_spq_memberships(self._class_members, self._caps.copy())
        return allocate_wrr_memberships(
            self._class_members,
            self.all_flows,
            self._caps,
            utilization=request.utilization,
            weight_mode=request.weight_mode,
        )
