"""Engine-on vs engine-off parity: identical JCTs, fewer rebuilds.

The incremental allocation engine is a pure optimisation — for every
scheduling policy it must produce the same per-job completion times as
the legacy full-rebuild path, while rebuilding link memberships far less
often.
"""

import pytest

from repro.experiments.common import ScenarioConfig, build_jobs
from repro.schedulers.registry import make_scheduler
from repro.simulator.bandwidth.maxmin import (
    membership_rebuilds,
    reset_membership_rebuilds,
)
from repro.simulator.observability import allocation_counters
from repro.simulator.runtime import simulate
from repro.simulator.topology.fattree import FatTreeTopology

CONFIG = ScenarioConfig(name="parity", num_jobs=10, fattree_k=4, seed=7)


def _run(scheduler_name, use_engine):
    topology = FatTreeTopology(k=CONFIG.fattree_k)
    jobs = build_jobs(CONFIG, topology.num_hosts)
    reset_membership_rebuilds()
    result = simulate(
        topology, make_scheduler(scheduler_name), jobs, use_engine=use_engine
    )
    return result, membership_rebuilds()


@pytest.mark.parametrize(
    "scheduler_name", ["pfs", "baraat", "stream", "aalo", "gurita", "gurita+"]
)
def test_engine_matches_legacy_jcts(scheduler_name):
    legacy, legacy_rebuilds = _run(scheduler_name, use_engine=False)
    engine, engine_rebuilds = _run(scheduler_name, use_engine=True)
    assert legacy.all_done and engine.all_done
    legacy_jcts = {job.job_id: job.completion_time() for job in legacy.jobs}
    engine_jcts = {job.job_id: job.completion_time() for job in engine.jobs}
    assert engine_jcts.keys() == legacy_jcts.keys()
    for job_id, jct in legacy_jcts.items():
        assert engine_jcts[job_id] == pytest.approx(jct, abs=1e-9)
    # The optimisation actually optimises: far fewer membership rebuilds.
    assert engine_rebuilds * 2 <= legacy_rebuilds
    # Bookkeeping surfaces through the result (epochs with no active
    # flows return before the engine is consulted, hence <=).
    assert engine.engine_stats is not None
    assert 0 < engine.engine_stats.allocations <= engine.reallocations
    assert legacy.engine_stats is None


def test_counters_condense_into_observability_snapshot():
    result, _rebuilds = _run("gurita", use_engine=True)
    counters = allocation_counters(result)
    assert counters.reallocations == result.reallocations
    assert counters.rows_updated > 0
    assert 0.0 <= counters.skip_fraction <= 1.0
