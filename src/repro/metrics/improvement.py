"""The paper's primary comparison metric: the improvement factor.

::

    improvement = JCT(compared scheme) / JCT(Gurita)

Greater than one means Gurita is faster; less than one, slower (paper §V).
Improvement can be computed over the whole run or per Table-1 category.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import ReproError
from repro.metrics.jct import average_jct_by_category
from repro.simulator.runtime import SimulationResult


def improvement_factor(baseline_jct: float, gurita_jct: float) -> float:
    """``baseline / gurita`` — > 1 means Gurita wins."""
    if baseline_jct < 0 or gurita_jct <= 0:
        raise ReproError(
            f"invalid JCTs for improvement: baseline={baseline_jct}, "
            f"gurita={gurita_jct}"
        )
    return baseline_jct / gurita_jct


def overall_improvement(
    baseline: SimulationResult, gurita: SimulationResult
) -> float:
    """Average-JCT improvement of ``gurita`` over ``baseline``."""
    return improvement_factor(baseline.average_jct(), gurita.average_jct())


def per_category_improvement(
    baseline: SimulationResult, gurita: SimulationResult
) -> Dict[int, float]:
    """Improvement per Table-1 category present in both runs."""
    base = average_jct_by_category(baseline)
    ours = average_jct_by_category(gurita)
    return {
        category: improvement_factor(base[category], ours[category])
        for category in sorted(set(base) & set(ours))
    }


def improvement_table(
    baselines: Mapping[str, SimulationResult],
    gurita: SimulationResult,
) -> Dict[str, float]:
    """Overall improvement of Gurita against several named baselines."""
    return {
        name: overall_improvement(result, gurita)
        for name, result in baselines.items()
    }
