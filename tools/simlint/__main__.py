"""Command-line entry point: ``python -m tools.simlint [paths...]``.

Exit codes: 0 = clean, 1 = findings (or baseline drift), 2 = usage /
parse error.

``--deep`` adds the whole-program SIM101-SIM106 analysis (cross-module
taint tracking + worker purity) on top of the per-file rules;
``--perf`` adds the hot-closure SIM201-SIM207 performance rules driven
by the hot-path registry (``tools/simlint/hotpaths.py``);
``--units`` adds the dimensional-analysis + streaming-discipline rules
(SIM301-SIM308) seeded from the ``repro.simulator.units`` annotations;
``--all`` runs every layer at once;
``--baseline`` subtracts a committed JSON baseline so CI fails only on
*new* findings or on *stale* entries (baseline drift);
``--write-baseline`` refreshes that snapshot.  All requested layers run
in one pass — each file is parsed exactly once — and report one merged,
(path, line, rule)-sorted stream.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from tools.simlint.baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineError,
    apply_baseline,
    baseline_from_findings,
    load_baseline,
    save_baseline,
)
from tools.simlint.dataflow import DEEP_RULES, DEEP_RULES_BY_CODE
from tools.simlint.findings import Finding
from tools.simlint.perfrules import (
    DEFAULT_PERF_BASELINE_PATH,
    PERF_RULES,
    PERF_RULES_BY_CODE,
)
from tools.simlint.rules import ALL_RULES, RULES_BY_CODE
from tools.simlint.runner import (
    FINDING_ORDER,
    LintReport,
    SimlintUsageError,
    lint_paths_layers,
)
from tools.simlint.units import (
    ALL_UNITS_RULES,
    ALL_UNITS_RULES_BY_CODE,
    DEFAULT_UNITS_BASELINE_PATH,
)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Sentinel for ``--baseline`` / ``--write-baseline`` with no FILE: the
#: default file depends on the layers in play (deep vs perf-only).
_AUTO_BASELINE = "__auto__"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "Simulator-aware static analysis for the Gurita reproduction "
            "(determinism and conservation failure classes)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help=(
            "run the whole-program analyzer (SIM101-SIM106: cross-module "
            "determinism taint + run_grid worker purity) in addition to "
            "the per-file rules"
        ),
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help=(
            "run the hot-closure performance rules (SIM201-SIM207: "
            "logging, allocation, numpy scalar access, __slots__, "
            "attribute chains, control indirection, closure escapes) "
            "driven by the registry in tools/simlint/hotpaths.py"
        ),
    )
    parser.add_argument(
        "--units",
        action="store_true",
        help=(
            "run the dimensional-analysis and streaming-discipline rules "
            "(SIM301-SIM308: mixed-unit arithmetic/comparison, unit "
            "mismatched or erased sinks, generator materialization, "
            "hot-loop accumulation, units-registry drift) seeded from "
            "the repro.simulator.units annotations"
        ),
    )
    parser.add_argument(
        "--all",
        action="store_true",
        dest="all_layers",
        help="run every layer (per-file + --deep + --perf + --units) in one pass",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=_AUTO_BASELINE,
        metavar="FILE",
        help=(
            "subtract a committed JSON baseline; exit 1 on new findings "
            "OR stale entries (drift). With no FILE, uses the default "
            f"file of each requested layer ({DEFAULT_BASELINE_PATH}, "
            f"{DEFAULT_PERF_BASELINE_PATH}, {DEFAULT_UNITS_BASELINE_PATH}) "
            "merged"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        nargs="?",
        const=_AUTO_BASELINE,
        metavar="FILE",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    return parser


def _split_codes(raw: Optional[str]) -> List[str]:
    if not raw:
        return []
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def _filtered_report(
    paths: Sequence[str],
    deep: bool,
    perf: bool,
    units: bool,
    select: List[str],
    ignore: List[str],
) -> LintReport:
    known = set(RULES_BY_CODE)
    if deep:
        known |= set(DEEP_RULES_BY_CODE)
    if perf:
        known |= set(PERF_RULES_BY_CODE)
    if units:
        known |= set(ALL_UNITS_RULES_BY_CODE)
    for code in select + ignore:
        if code not in known:
            raise SimlintUsageError(
                f"unknown rule code {code!r}; known: {sorted(known)}"
            )
    rules = tuple(
        rule
        for rule in ALL_RULES
        if (not select or rule.code in select) and rule.code not in ignore
    )
    report = lint_paths_layers(paths, rules=rules, deep=deep, perf=perf, units=units)
    if select or ignore:
        report.findings = [
            f
            for f in report.findings
            if (not select or f.code in select) and f.code not in ignore
        ]
    return report


def _render_baseline_outcome(
    report: LintReport,
    new_findings: List[Finding],
    stale_renders: List[str],
    matched: int,
    as_json: bool,
) -> str:
    if as_json:
        return json.dumps(
            {
                "version": 1,
                "files_checked": report.files_checked,
                "suppressed": report.suppressed,
                "baseline_matched": matched,
                "new_findings": [f.to_dict() for f in new_findings],
                "stale_baseline_entries": stale_renders,
            },
            indent=2,
            sort_keys=True,
        )
    lines = [finding.render() for finding in new_findings]
    lines.extend(stale_renders)
    verdict = (
        "clean"
        if not new_findings and not stale_renders
        else f"{len(new_findings)} new finding(s), {len(stale_renders)} stale "
        "baseline entr(y/ies)"
    )
    lines.append(
        f"simlint: {verdict} ({report.files_checked} files, "
        f"{matched} baselined, {report.suppressed} suppressed by pragma)"
    )
    return "\n".join(lines)


def _default_layer_baselines(deep: bool, perf: bool, units: bool) -> List[str]:
    """Default baseline files for the requested layers, in load order."""
    paths: List[str] = []
    if deep:
        paths.append(DEFAULT_BASELINE_PATH)
    if perf:
        paths.append(DEFAULT_PERF_BASELINE_PATH)
    if units:
        paths.append(DEFAULT_UNITS_BASELINE_PATH)
    return paths or [DEFAULT_BASELINE_PATH]


def _resolve_baseline_paths(
    raw: Optional[str], deep: bool, perf: bool, units: bool
) -> Optional[List[str]]:
    """Files to subtract under ``--baseline`` (merged when several layers)."""
    if raw is None:
        return None
    if raw != _AUTO_BASELINE:
        return [raw]
    return _default_layer_baselines(deep, perf, units)


def _resolve_write_path(
    raw: Optional[str], deep: bool, perf: bool, units: bool
) -> Optional[str]:
    """The single file ``--write-baseline`` refreshes.

    A multi-layer auto write would have to split findings across files;
    keep the historical behavior instead: the deep default unless
    exactly one non-deep layer is selected.
    """
    if raw != _AUTO_BASELINE:
        return raw
    if units and not deep and not perf:
        return DEFAULT_UNITS_BASELINE_PATH
    if perf and not deep and not units:
        return DEFAULT_PERF_BASELINE_PATH
    return DEFAULT_BASELINE_PATH


def _load_merged_baseline(paths: Sequence[str]) -> dict:
    """Load and merge one baseline document per requested layer."""
    merged: dict = {"version": 1, "entries": []}
    for path in paths:
        document = load_baseline(path)
        merged["entries"].extend(document["entries"])  # type: ignore[union-attr]
    return merged


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.all_layers:
        args.deep = args.perf = args.units = True
    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(rule.scopes) if rule.scopes else "all files"
            print(f"{rule.code}  [{scope}]")
            print(f"    {rule.description}")
        for deep_rule in DEEP_RULES:
            print(f"{deep_rule.code}  [whole-program, --deep]")
            print(f"    {deep_rule.description}")
        for perf_rule in PERF_RULES:
            print(f"{perf_rule.code}  [hot closure, --perf]")
            print(f"    {perf_rule.description}")
        for units_rule in ALL_UNITS_RULES:
            print(f"{units_rule.code}  [dimensional/streaming, --units]")
            print(f"    {units_rule.description}")
        return EXIT_CLEAN

    baseline_paths = _resolve_baseline_paths(
        args.baseline, args.deep, args.perf, args.units
    )
    write_baseline_path = _resolve_write_path(
        args.write_baseline, args.deep, args.perf, args.units
    )

    try:
        report = _filtered_report(
            args.paths,
            deep=args.deep,
            perf=args.perf,
            units=args.units,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore),
        )
    except SimlintUsageError as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    report.findings.sort(key=FINDING_ORDER)

    if write_baseline_path:
        path = save_baseline(
            baseline_from_findings(report.findings), write_baseline_path
        )
        entries = baseline_from_findings(report.findings)["entries"]
        print(
            f"simlint: wrote baseline with {len(entries)} entr(y/ies) "
            f"covering {len(report.findings)} finding(s) to {path}"
        )
        return EXIT_CLEAN

    if baseline_paths:
        try:
            document = _load_merged_baseline(baseline_paths)
        except BaselineError as exc:
            print(f"simlint: error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        outcome = apply_baseline(report.findings, document)
        print(
            _render_baseline_outcome(
                report,
                outcome.new_findings,
                [entry.render() for entry in outcome.stale],
                outcome.matched,
                as_json=args.json,
            )
        )
        return EXIT_CLEAN if outcome.clean else EXIT_FINDINGS

    print(report.render_json() if args.json else report.render_human())
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
