"""Unit tests for JCT lower bounds."""

import pytest

from repro.jobs import chain_job, single_stage_job
from repro.schedulers.pfs import PerFlowFairSharing
from repro.simulator.runtime import simulate
from repro.simulator.topology.bigswitch import BigSwitchTopology
from repro.theory.lowerbound import (
    coflow_service_bound,
    job_critical_path_bound,
    job_lower_bound,
    job_port_bound,
    mean_optimality_gap,
    optimality_gaps,
)

GB = 1e9


class TestCoflowBound:
    def test_single_flow(self, ids):
        job = single_stage_job([(0, 1, 2.0 * GB)], ids=ids)
        assert coflow_service_bound(job.coflows[0], 1.0 * GB) == pytest.approx(2.0)

    def test_port_fan_in_dominates(self, ids):
        # Two 1 GB flows into the same receiver: the port must move 2 GB.
        job = single_stage_job([(0, 2, 1.0 * GB), (1, 2, 1.0 * GB)], ids=ids)
        assert coflow_service_bound(job.coflows[0], 1.0 * GB) == pytest.approx(2.0)

    def test_largest_flow_dominates_when_spread(self, ids):
        job = single_stage_job([(0, 2, 3.0 * GB), (1, 3, 1.0 * GB)], ids=ids)
        assert coflow_service_bound(job.coflows[0], 1.0 * GB) == pytest.approx(3.0)

    def test_rate_validation(self, ids):
        job = single_stage_job([(0, 1, 1.0)], ids=ids)
        with pytest.raises(ValueError):
            coflow_service_bound(job.coflows[0], 0.0)


class TestJobBounds:
    def test_chain_bound_sums_stages(self, ids):
        job = chain_job(
            [[(0, 1, 1.0 * GB)], [(1, 2, 2.0 * GB)]], ids=ids
        )
        assert job_critical_path_bound(job, 1.0 * GB) == pytest.approx(3.0)

    def test_port_bound_accumulates_across_stages(self, ids):
        # Host 1 receives 1 GB in stage 1 and sends 2 GB in stage 2;
        # its uplink must carry 2 GB, its downlink 1 GB.
        job = chain_job(
            [[(0, 1, 1.0 * GB)], [(1, 2, 2.0 * GB)]], ids=ids
        )
        assert job_port_bound(job, 1.0 * GB) == pytest.approx(2.0)

    def test_combined_bound_takes_max(self, ids):
        job = chain_job([[(0, 1, 1.0 * GB)], [(1, 2, 2.0 * GB)]], ids=ids)
        assert job_lower_bound(job, 1.0 * GB) == pytest.approx(3.0)


class TestGaps:
    def test_measured_jct_never_beats_bound(self, ids):
        jobs = [
            chain_job([[(0, 1, 0.5 * GB)], [(1, 2, 1.0 * GB)]], ids=ids),
            single_stage_job([(0, 3, 2.0 * GB)], ids=ids),
            single_stage_job([(2, 3, 0.3 * GB)], arrival_time=0.1, ids=ids),
        ]
        topo = BigSwitchTopology(num_hosts=6, link_capacity=1.0 * GB)
        result = simulate(topo, PerFlowFairSharing(), jobs)
        gaps = optimality_gaps(result, 1.0 * GB)
        assert set(gaps) == {job.job_id for job in jobs}
        assert all(gap >= 1.0 - 1e-9 for gap in gaps.values())
        assert mean_optimality_gap(result, 1.0 * GB) >= 1.0 - 1e-9

    def test_uncontended_job_achieves_its_bound(self, ids):
        job = chain_job([[(0, 1, 1.0 * GB)], [(1, 2, 2.0 * GB)]], ids=ids)
        topo = BigSwitchTopology(num_hosts=4, link_capacity=1.0 * GB)
        result = simulate(topo, PerFlowFairSharing(), [job])
        gap = optimality_gaps(result, 1.0 * GB)[job.job_id]
        assert gap == pytest.approx(1.0, rel=1e-6)
