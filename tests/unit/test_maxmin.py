"""Unit tests for max-min fair water-filling."""

import numpy as np
import pytest

from repro.simulator.bandwidth.maxmin import (
    LinkMembership,
    allocate_maxmin,
    water_fill,
    water_fill_membership,
)


class TestBasics:
    def test_empty_input(self):
        assert allocate_maxmin({}, [10.0]) == {}

    def test_single_flow_takes_bottleneck(self):
        rates = allocate_maxmin({1: (0, 1)}, [10.0, 4.0])
        assert rates[1] == pytest.approx(4.0)

    def test_equal_split_on_shared_link(self):
        rates = allocate_maxmin({1: (0,), 2: (0,), 3: (0,)}, [9.0])
        assert all(rates[f] == pytest.approx(3.0) for f in (1, 2, 3))

    def test_classic_three_flow_example(self):
        # Flows: A on link0 only, B on link0+link1, C on link1 only.
        # link0 cap 10, link1 cap 4: B bottlenecked at 2 (link1 split),
        # then A gets the remaining 8 of link0, C gets 2.
        rates = allocate_maxmin(
            {1: (0,), 2: (0, 1), 3: (1,)}, [10.0, 4.0]
        )
        assert rates[2] == pytest.approx(2.0)
        assert rates[3] == pytest.approx(2.0)
        assert rates[1] == pytest.approx(8.0)

    def test_disjoint_flows_each_get_full_capacity(self):
        rates = allocate_maxmin({1: (0,), 2: (1,)}, [5.0, 7.0])
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(7.0)


class TestMaxMinProperties:
    def test_no_link_oversubscribed(self):
        flows = {i: (i % 3, 3 + i % 2) for i in range(12)}
        caps = [6.0, 4.0, 9.0, 5.0, 7.0]
        rates = allocate_maxmin(flows, caps)
        usage = [0.0] * len(caps)
        for flow_id, route in flows.items():
            for link in route:
                usage[link] += rates[flow_id]
        for link, cap in enumerate(caps):
            assert usage[link] <= cap + 1e-6

    def test_work_conserving_on_bottlenecks(self):
        # Every flow crosses link 0; link 0 must be saturated.
        flows = {i: (0,) for i in range(5)}
        rates = allocate_maxmin(flows, [10.0])
        assert sum(rates.values()) == pytest.approx(10.0)

    def test_water_fill_mutates_residual(self):
        residual = np.array([10.0, 10.0])
        water_fill({1: (0,)}, residual)
        assert residual[0] == pytest.approx(0.0)
        assert residual[1] == pytest.approx(10.0)

    def test_layering_respects_prior_allocation(self):
        residual = np.array([10.0])
        first = water_fill({1: (0,)}, residual)
        second = water_fill({2: (0,)}, residual)
        assert first[1] == pytest.approx(10.0)
        assert second[2] == pytest.approx(0.0)

    def test_zero_capacity_gives_zero_rates(self):
        rates = allocate_maxmin({1: (0,), 2: (0,)}, [0.0])
        assert rates[1] == 0.0 and rates[2] == 0.0


class TestEdgeCases:
    def test_zero_capacity_link_does_not_block_others(self):
        # Flow 1 crosses the dead link, flow 2 a healthy one: the dead
        # link's zero share must freeze only its own flows.
        rates = allocate_maxmin({1: (0,), 2: (1,)}, [0.0, 8.0])
        assert rates[1] == pytest.approx(0.0)
        assert rates[2] == pytest.approx(8.0)

    def test_zero_capacity_on_shared_route(self):
        # A flow crossing one dead and one live link gets nothing, and the
        # live link's capacity goes to the other flow.
        rates = allocate_maxmin({1: (0, 1), 2: (1,)}, [0.0, 6.0])
        assert rates[1] == pytest.approx(0.0)
        assert rates[2] == pytest.approx(6.0)

    def test_empty_route_flow_gets_zero(self):
        # A flow traversing no links cannot be rate-limited by any
        # bottleneck; the guard assigns it zero instead of spinning.
        rates = allocate_maxmin({1: ()}, [5.0])
        assert rates == {1: 0.0}

    def test_empty_route_flow_among_normal_flows(self):
        rates = allocate_maxmin({1: (0,), 2: ()}, [5.0])
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == 0.0

    def test_list_residual_write_back_mutation(self):
        # Plain-list residuals are converted to an array internally and
        # written back via slice assignment so the caller sees the layered
        # allocation.
        residual = [10.0, 4.0]
        rates = water_fill({1: (0,), 2: (1,)}, residual)
        assert isinstance(residual, list)
        assert residual == [0.0, 0.0]
        assert rates[1] == pytest.approx(10.0)
        assert rates[2] == pytest.approx(4.0)

    def test_list_residual_layering(self):
        residual = [9.0]
        first = water_fill({1: (0,)}, residual)
        second = water_fill({2: (0,)}, residual)
        assert first[1] == pytest.approx(9.0)
        assert second[2] == pytest.approx(0.0)
        assert residual == [0.0]

    def test_list_residual_untouched_when_no_flows(self):
        residual = [3.0]
        assert water_fill({}, residual) == {}
        assert residual == [3.0]

    def test_defensive_no_contended_link_branch(self):
        # All flows have empty routes: every share is infinite, which
        # exercises the "remaining flows traverse no contended link"
        # guard.
        rates = allocate_maxmin({1: (), 2: ()}, [5.0])
        assert rates == {1: 0.0, 2: 0.0}

    def test_defensive_no_newly_frozen_branch(self):
        # Craft an inconsistent membership (counts claim a flow on link 0
        # but the member table is empty) to drive the "should be
        # impossible" spin guard: the survivors are frozen at the
        # bottleneck share instead of looping forever.
        membership = LinkMembership(1)
        membership.routes[1] = (0,)
        membership.counts[0] = 1
        rates = water_fill_membership(membership, np.array([6.0]))
        assert rates == {1: 6.0}
