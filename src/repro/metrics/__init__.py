"""Metrics: JCT/CCT statistics and the paper's improvement factor."""

from repro.metrics.improvement import (
    improvement_factor,
    improvement_table,
    overall_improvement,
    per_category_improvement,
)
from repro.metrics.jct import (
    JctSummary,
    all_categories,
    average_jct_by_category,
    categories_present,
    cct_summary,
    jct_by_category,
    jct_summary,
)
from repro.metrics.report import (
    format_bar_chart,
    format_category_table,
    format_improvement_row,
    format_jct_table,
    format_series,
)
from repro.metrics.serialize import (
    comparison_to_dict,
    load_json,
    result_to_dict,
    save_json,
)

__all__ = [
    "JctSummary",
    "all_categories",
    "average_jct_by_category",
    "categories_present",
    "cct_summary",
    "comparison_to_dict",
    "format_bar_chart",
    "format_category_table",
    "format_improvement_row",
    "format_jct_table",
    "format_series",
    "improvement_factor",
    "improvement_table",
    "jct_by_category",
    "jct_summary",
    "load_json",
    "result_to_dict",
    "save_json",
    "overall_improvement",
    "per_category_improvement",
]
