"""Parallel engine: cache-reuse smoke (run twice, second run ~free).

Not a paper figure — an engineering acceptance bench for the experiment
engine: a grid executed against an empty on-disk cache pays full
simulation cost; the immediate re-run must answer every unit from the
cache (100% hits) and finish at least 5× faster, with bit-identical
JCTs.  CI runs this as part of the ``parallel-parity`` job.
"""

from _util import bench_jobs

from repro.experiments.common import ScenarioConfig
from repro.experiments.parallel import grid_of, run_grid


def test_cache_reuse_smoke(tmp_path, run_once):
    config = ScenarioConfig(num_jobs=bench_jobs(10), fattree_k=4)
    units = grid_of(
        [config], seeds=(1, 2, 3, 4, 5, 6), schedulers=("pfs", "gurita")
    )
    cache_dir = tmp_path / "grid-cache"

    cold = run_grid(units, cache_dir=cache_dir)
    warm = run_once(run_grid, units, cache_dir=cache_dir)

    assert cold.stats.cache_hits == 0
    assert warm.stats.cache_hits == warm.stats.total_units == len(units)
    cold_jcts = [r.average_jcts() for r in cold.scenario_results()]
    warm_jcts = [r.average_jcts() for r in warm.scenario_results()]
    assert cold_jcts == warm_jcts

    speedup = cold.stats.elapsed_seconds / max(warm.stats.elapsed_seconds, 1e-9)
    print(
        f"\nCACHE  cold {cold.stats.elapsed_seconds:.2f}s -> warm "
        f"{warm.stats.elapsed_seconds:.3f}s ({speedup:.0f}x, "
        f"{warm.stats.cache_hits}/{warm.stats.total_units} hits)"
    )
    assert speedup >= 5.0
