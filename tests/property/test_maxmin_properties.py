"""Property-based tests for max-min fairness (the allocator's contract)."""

from hypothesis import given, settings, strategies as st

from repro.simulator.bandwidth.maxmin import allocate_maxmin
from repro.simulator.bandwidth.spq import allocate_spq
from repro.simulator.bandwidth.wrr import allocate_wrr

NUM_LINKS = 6


@st.composite
def allocation_problems(draw):
    """Random (flow_routes, capacities) with up to 12 flows on 6 links."""
    num_flows = draw(st.integers(min_value=1, max_value=12))
    flow_routes = {}
    for flow_id in range(num_flows):
        length = draw(st.integers(min_value=1, max_value=3))
        route = draw(
            st.lists(
                st.integers(min_value=0, max_value=NUM_LINKS - 1),
                min_size=length,
                max_size=length,
                unique=True,
            )
        )
        flow_routes[flow_id] = tuple(route)
    capacities = draw(
        st.lists(
            st.floats(min_value=0.5, max_value=100.0),
            min_size=NUM_LINKS,
            max_size=NUM_LINKS,
        )
    )
    return flow_routes, capacities


def link_usage(flow_routes, rates):
    usage = [0.0] * NUM_LINKS
    for flow_id, route in flow_routes.items():
        for link in route:
            usage[link] += rates[flow_id]
    return usage


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_maxmin_never_oversubscribes(problem):
    flow_routes, capacities = problem
    rates = allocate_maxmin(flow_routes, capacities)
    for link, used in enumerate(link_usage(flow_routes, rates)):
        assert used <= capacities[link] * (1 + 1e-6) + 1e-6


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_maxmin_rates_non_negative_and_complete(problem):
    flow_routes, capacities = problem
    rates = allocate_maxmin(flow_routes, capacities)
    assert set(rates) == set(flow_routes)
    assert all(rate >= 0.0 for rate in rates.values())


@given(allocation_problems())
@settings(max_examples=200, deadline=None)
def test_maxmin_saturates_each_flows_bottleneck(problem):
    """Max-min optimality: every flow has at least one saturated link
    (else its rate could be raised, contradicting max-min)."""
    flow_routes, capacities = problem
    rates = allocate_maxmin(flow_routes, capacities)
    usage = link_usage(flow_routes, rates)
    for flow_id, route in flow_routes.items():
        assert any(
            usage[link] >= capacities[link] * (1 - 1e-6) - 1e-6
            for link in route
        ), f"flow {flow_id} has slack on every link"


@given(allocation_problems())
@settings(max_examples=150, deadline=None)
def test_maxmin_bottleneck_fairness(problem):
    """Bertsekas-Gallager characterisation: every flow has a bottleneck
    link — a saturated link on which no other flow gets a *higher* rate.
    (If every one of a flow's saturated links carried a faster flow, the
    slower flow could be raised at the faster one's expense.)"""
    flow_routes, capacities = problem
    rates = allocate_maxmin(flow_routes, capacities)
    usage = link_usage(flow_routes, rates)
    for flow_id, route in flow_routes.items():
        has_bottleneck = False
        for link in route:
            if usage[link] < capacities[link] * (1 - 1e-6) - 1e-6:
                continue  # not saturated
            sharers = [f for f, r in flow_routes.items() if link in r]
            if all(rates[other] <= rates[flow_id] + 1e-6 for other in sharers):
                has_bottleneck = True
                break
        assert has_bottleneck, f"flow {flow_id} lacks a bottleneck link"


@given(allocation_problems(), st.integers(min_value=2, max_value=4))
@settings(max_examples=150, deadline=None)
def test_spq_dominance(problem, num_classes):
    """Raising a flow to the top class never reduces its rate."""
    flow_routes, capacities = problem
    flow_id = min(flow_routes)
    low = {f: (1 if f == flow_id else 0) for f in flow_routes}
    high = {f: (0 if f == flow_id else 1) for f in flow_routes}
    rate_low = allocate_spq(flow_routes, low, capacities, num_classes)[flow_id]
    rate_high = allocate_spq(flow_routes, high, capacities, num_classes)[flow_id]
    assert rate_high >= rate_low - 1e-6


@given(allocation_problems())
@settings(max_examples=150, deadline=None)
def test_wrr_no_starvation_and_capacity(problem):
    flow_routes, capacities = problem
    priorities = {f: f % 4 for f in flow_routes}
    rates = allocate_wrr(flow_routes, priorities, capacities, num_classes=4)
    for link, used in enumerate(link_usage(flow_routes, rates)):
        assert used <= capacities[link] * (1 + 1e-6) + 1e-3
    # Starvation mitigation: every flow makes progress.
    assert all(rate > 0.0 for rate in rates.values())
