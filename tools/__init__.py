"""Developer tooling for the Gurita reproduction (not shipped with the library)."""
