"""Unit tests for JCT lower bounds."""

import pytest

from repro.jobs import JobBuilder, chain_job, single_stage_job
from repro.schedulers.pfs import PerFlowFairSharing
from repro.simulator.runtime import simulate
from repro.simulator.topology.bigswitch import BigSwitchTopology
from repro.theory.lowerbound import (
    coflow_earliest_starts,
    coflow_service_bound,
    job_critical_path_bound,
    job_lower_bound,
    job_port_bound,
    job_precedence_port_bound,
    job_single_stage_lower_bound,
    mean_optimality_gap,
    optimality_gaps,
)
from repro.workloads.tpcds import RELATIVE_VOLUMES, query42_shape

GB = 1e9


class TestCoflowBound:
    def test_single_flow(self, ids):
        job = single_stage_job([(0, 1, 2.0 * GB)], ids=ids)
        assert coflow_service_bound(job.coflows[0], 1.0 * GB) == pytest.approx(2.0)

    def test_port_fan_in_dominates(self, ids):
        # Two 1 GB flows into the same receiver: the port must move 2 GB.
        job = single_stage_job([(0, 2, 1.0 * GB), (1, 2, 1.0 * GB)], ids=ids)
        assert coflow_service_bound(job.coflows[0], 1.0 * GB) == pytest.approx(2.0)

    def test_largest_flow_dominates_when_spread(self, ids):
        job = single_stage_job([(0, 2, 3.0 * GB), (1, 3, 1.0 * GB)], ids=ids)
        assert coflow_service_bound(job.coflows[0], 1.0 * GB) == pytest.approx(3.0)

    def test_rate_validation(self, ids):
        job = single_stage_job([(0, 1, 1.0)], ids=ids)
        with pytest.raises(ValueError):
            coflow_service_bound(job.coflows[0], 0.0)


class TestJobBounds:
    def test_chain_bound_sums_stages(self, ids):
        job = chain_job(
            [[(0, 1, 1.0 * GB)], [(1, 2, 2.0 * GB)]], ids=ids
        )
        assert job_critical_path_bound(job, 1.0 * GB) == pytest.approx(3.0)

    def test_port_bound_accumulates_across_stages(self, ids):
        # Host 1 receives 1 GB in stage 1 and sends 2 GB in stage 2;
        # its uplink must carry 2 GB, its downlink 1 GB.
        job = chain_job(
            [[(0, 1, 1.0 * GB)], [(1, 2, 2.0 * GB)]], ids=ids
        )
        assert job_port_bound(job, 1.0 * GB) == pytest.approx(2.0)

    def test_combined_bound_takes_max(self, ids):
        job = chain_job([[(0, 1, 1.0 * GB)], [(1, 2, 2.0 * GB)]], ids=ids)
        assert job_lower_bound(job, 1.0 * GB) == pytest.approx(3.0)


class TestPrecedencePortBound:
    def test_earliest_starts_follow_heaviest_chain(self, diamond_job):
        starts = coflow_earliest_starts(diamond_job, 1.0)
        names = diamond_job.coflow_ids
        assert starts[names["leaf"]] == pytest.approx(0.0)
        assert starts[names["left"]] == pytest.approx(100.0)
        assert starts[names["right"]] == pytest.approx(100.0)
        # The root waits for the heavier branch: 100 (leaf) + 75 (right).
        assert starts[names["root"]] == pytest.approx(175.0)

    def test_dominates_plain_port_bound(self, diamond_job):
        assert job_precedence_port_bound(diamond_job, 1.0) >= job_port_bound(
            diamond_job, 1.0
        )

    def test_tightens_diamond_beyond_legacy_bound(self, diamond_job):
        # Host 1 must send both siblings (50 + 75 bytes) and neither can
        # start before the leaf's 100 bytes land: 100 + 125 = 225.  The
        # legacy bound sees only max(critical path 200, port load 125).
        assert job_precedence_port_bound(diamond_job, 1.0) == pytest.approx(225.0)
        assert job_single_stage_lower_bound(diamond_job, 1.0) == pytest.approx(200.0)
        assert job_lower_bound(diamond_job, 1.0) == pytest.approx(225.0)

    def test_rate_validation(self, diamond_job):
        with pytest.raises(ValueError):
            job_precedence_port_bound(diamond_job, 0.0)


class TestQuery42Regression:
    """Pin old-vs-new bound on the TPC-DS query-42 DAG.

    Every positive-earliest-start coflow of the q42 tree (both joins, the
    aggregate, the sort) lies on one chain, so the precedence-port term
    collapses onto max(critical path, port) there — the tightened bound
    must *equal* the historical one, and either side moving is a
    regression (a weakened term or an unsound tightening).
    """

    @pytest.fixture
    def q42_job(self, ids):
        # One flow per query node, every shuffle landing on reducer host
        # 7 — the fan-in placement where the port terms are the tightest.
        shape = query42_shape()
        deps_of = {node: [] for node in range(shape.num_nodes)}
        for src, dst in shape.edges:
            deps_of[dst].append(src)
        builder = JobBuilder(arrival_time=0.0, ids=ids)
        coflow_ids = {}
        for node in range(shape.num_nodes):
            coflow_ids[node] = builder.add_coflow(
                [(node, 7, RELATIVE_VOLUMES[node] * GB)],
                depends_on=[coflow_ids[dep] for dep in deps_of[node]],
            )
        return builder.build()

    def test_pinned_old_and_new_bounds(self, q42_job):
        # Critical path: store_sales scan -> join -> join -> agg -> sort.
        assert job_critical_path_bound(q42_job, GB) == pytest.approx(1.66)
        # Reducer ingress moves every stage's bytes: sum(RELATIVE_VOLUMES).
        assert job_port_bound(q42_job, GB) == pytest.approx(1.73)
        legacy = job_single_stage_lower_bound(q42_job, GB)
        tightened = job_lower_bound(q42_job, GB)
        assert legacy == pytest.approx(1.73)
        assert tightened == pytest.approx(1.73)
        assert tightened >= legacy

    def test_tightened_never_below_legacy(self, q42_job, diamond_job):
        for job in (q42_job, diamond_job):
            assert job_lower_bound(job, GB) >= job_single_stage_lower_bound(
                job, GB
            )


class TestGaps:
    def test_measured_jct_never_beats_bound(self, ids):
        jobs = [
            chain_job([[(0, 1, 0.5 * GB)], [(1, 2, 1.0 * GB)]], ids=ids),
            single_stage_job([(0, 3, 2.0 * GB)], ids=ids),
            single_stage_job([(2, 3, 0.3 * GB)], arrival_time=0.1, ids=ids),
        ]
        topo = BigSwitchTopology(num_hosts=6, link_capacity=1.0 * GB)
        result = simulate(topo, PerFlowFairSharing(), jobs)
        gaps = optimality_gaps(result, 1.0 * GB)
        assert set(gaps) == {job.job_id for job in jobs}
        assert all(gap >= 1.0 - 1e-9 for gap in gaps.values())
        assert mean_optimality_gap(result, 1.0 * GB) >= 1.0 - 1e-9

    def test_uncontended_job_achieves_its_bound(self, ids):
        job = chain_job([[(0, 1, 1.0 * GB)], [(1, 2, 2.0 * GB)]], ids=ids)
        topo = BigSwitchTopology(num_hosts=4, link_capacity=1.0 * GB)
        result = simulate(topo, PerFlowFairSharing(), [job])
        gap = optimality_gaps(result, 1.0 * GB)[job.job_id]
        assert gap == pytest.approx(1.0, rel=1e-6)
