"""Head-receiver (HR) coordination — Gurita's decentralized control plane.

Every job designates its first-invoked receiver as *head receiver*.  Peer
receivers report locally observable state (open connections, bytes received
per flow) every δ seconds; the HR folds the reports into per-coflow
blocking-effect estimates Ψ̈ (eq. 3), sums them into the per-stage job
effect Ψ̈_J(s), and maps that onto a priority class via the exponentially
spaced demotion thresholds.  The decision travels back to receivers, which
signal senders through the TCP ACK reserved field; senders stamp DSCP bits.

In the simulator all of that collapses into :meth:`HeadReceiver.decide`,
invoked by the Gurita policy at each δ-spaced update event — the *timing*
(information lag of up to δ) is what is faithfully modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.blocking import job_stage_psi, psi_from_observation
from repro.core.config import GuritaConfig
from repro.core.critical_path import AvaCriticalPathEstimator
from repro.core.receiver import CoflowObservation
from repro.jobs.coflow import Coflow
from repro.jobs.job import Job


@dataclass
class CoflowDecision:
    """One coordination round's verdict for a running coflow."""

    coflow_id: int
    stage: int
    psi: float  #: estimated coflow blocking effect Ψ̈ (after rule-4 bonus)
    stage_psi: float  #: job per-stage blocking effect Ψ̈_J(s)
    priority_class: int  #: demotion-threshold class of Ψ̈_J(s)
    on_critical_path: bool


class HeadReceiver:
    """Aggregates receiver observations for one job and decides priorities."""

    def __init__(self, job: Job, config: GuritaConfig) -> None:
        self.job = job
        self.config = config
        #: host the HR role currently lives on — the paper designates the
        #: job's first-invoked receiver; a failover election moves it.
        self.hr_host: int = self._first_receiver_host()

    def _first_receiver_host(self) -> int:
        """The first-invoked receiver: dst of the job's first flow."""
        for coflow in self.job.coflows:
            for flow in coflow.flows:
                return flow.dst
        raise ValueError(f"job {self.job.job_id} has no flows")

    def receiver_hosts(self) -> List[int]:
        """Every receiver host participating in this job, sorted."""
        return sorted({
            flow.dst for coflow in self.job.coflows for flow in coflow.flows
        })

    def elect_new_head(self, crashed_hosts: frozenset) -> Optional[int]:
        """Failover: peers elect the lowest-numbered alive receiver host.

        Deterministic by construction (min over a static candidate set),
        so every peer independently converges on the same new HR — no
        coordination protocol is needed.  Returns ``None`` when every
        receiver host of the job is down (the job cannot coordinate at
        all until a recovery).
        """
        for host in self.receiver_hosts():
            if host not in crashed_hosts:
                self.hr_host = host
                return host
        return None

    def decide(
        self,
        estimator: AvaCriticalPathEstimator,
        observations: Optional[Mapping[int, CoflowObservation]] = None,
    ) -> List[CoflowDecision]:
        """Run one coordination round over the job's running coflows.

        Completed flows are excluded automatically (the HR removes finished
        receivers' flows from consideration) because Ψ̈ is computed from
        *running* coflows only.  With ``observations`` supplied (the merged
        per-receiver flow-table reports of the observation plane), Ψ̈ is
        computed from those; otherwise from the coflows' own observable
        counters — the two are numerically equivalent.
        """
        running = self.job.running_coflows()
        if not running:
            return []

        psis: Dict[int, float] = {}
        critical: Dict[int, bool] = {}
        for coflow in running:
            observation = (
                observations.get(coflow.coflow_id)
                if observations is not None
                else None
            )
            if observation is not None:
                psi = psi_from_observation(
                    observation.open_connections,
                    observation.max_flow_bytes,
                    observation.mean_flow_bytes,
                    completed_stages=coflow.stage - 1,
                    beta_floor=self.config.beta_floor,
                )
                observed_max = observation.max_flow_bytes
            else:
                # One pass over the coflow's flows yields Ψ̈ *and* the
                # critical-path estimator's input (the properties would
                # walk the flow list four times per coflow per round).
                width, observed_max, observed_mean = coflow.observed_stats()
                psi = psi_from_observation(
                    width,
                    observed_max,
                    observed_mean,
                    completed_stages=coflow.stage - 1,
                    beta_floor=self.config.beta_floor,
                )
            estimator.observe(observed_max)
            flagged = False
            if self.config.critical_path_bonus > 0:
                flagged = estimator.is_critical(
                    self.job.job_id,
                    coflow.coflow_id,
                    observed_max,
                )
                if flagged:
                    # Rule 4: a marginal discount so critical-path coflows
                    # edge ahead of peers with comparable blocking effect.
                    psi *= 1.0 - self.config.critical_path_bonus
            psis[coflow.coflow_id] = psi
            critical[coflow.coflow_id] = flagged

        stage_totals: Dict[int, float] = {}
        by_stage: Dict[int, List[Coflow]] = {}
        for coflow in running:
            by_stage.setdefault(coflow.stage, []).append(coflow)
        for stage, coflows in by_stage.items():
            stage_totals[stage] = job_stage_psi(
                psis[c.coflow_id] for c in coflows
            )

        decisions: List[CoflowDecision] = []
        for coflow in running:
            stage_psi = stage_totals[coflow.stage]
            decisions.append(
                CoflowDecision(
                    coflow_id=coflow.coflow_id,
                    stage=coflow.stage,
                    psi=psis[coflow.coflow_id],
                    stage_psi=stage_psi,
                    priority_class=self.config.thresholds.class_of(stage_psi),
                    on_critical_path=critical[coflow.coflow_id],
                )
            )
        return decisions
