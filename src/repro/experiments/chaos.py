"""Chaos experiments: scheduler robustness under injected faults.

A chaos run replays one scenario twice-or-more on byte-identical
workloads — once on the perfect fabric (the baseline) and once per
requested fault profile — and reports how gracefully each scheduling
policy degrades: the JCT inflation relative to the baseline, plus the
fault-handling counters (reroutes, restarts, recovery times, HR
staleness) of every faulted run.

Determinism contract: the fault timeline of each faulted run is a pure
function of ``(fault seed, profile name, topology, horizon)`` — see
:mod:`repro.simulator.faults` — so a chaos report is bit-identical
across repetitions, across ``parallel=N`` settings, and across cache
hits vs misses.  The differential suite asserts exactly that.

Usage::

    report = run_chaos(ScenarioConfig(num_jobs=40), profiles=("link-flap",))
    print(format_degradation_table(report))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError
from repro.experiments.common import ScenarioConfig, ScenarioResult
from repro.experiments.parallel import (
    GridReport,
    ProgressHook,
    WorkUnit,
    run_grid,
)
from repro.simulator.faults import CANNED_PROFILES
from repro.simulator.observability import fault_counters

#: The baseline's key in every per-profile mapping of a chaos report.
BASELINE = "baseline"


@dataclass
class ChaosReport:
    """One scenario's baseline-vs-faulted comparison, per profile."""

    config: ScenarioConfig
    profiles: Tuple[str, ...]
    #: profile name -> that profile's scenario result (all schedulers);
    #: the perfect-fabric run sits under :data:`BASELINE`
    outcomes: Dict[str, ScenarioResult] = field(default_factory=dict)
    #: the grid engine's execution report (cache hits, retries, timing)
    grid: Optional[GridReport] = None

    @property
    def baseline(self) -> ScenarioResult:
        return self.outcomes[BASELINE]

    def average_jcts(self, profile: str) -> Dict[str, float]:
        """Average JCT per scheduler under ``profile``."""
        return self.outcomes[profile].average_jcts()

    def degradation(self, profile: str) -> Dict[str, float]:
        """JCT inflation per scheduler: faulted avg JCT / baseline avg JCT.

        1.0 means the policy fully absorbed the faults; 2.0 means jobs
        took twice as long on average.  Values below 1.0 are possible in
        principle (a fault can accidentally relieve contention).
        """
        base = self.baseline.average_jcts()
        faulted = self.outcomes[profile].average_jcts()
        return {
            name: faulted[name] / base[name] if base[name] > 0 else 0.0
            for name in sorted(faulted)
        }

    def fault_counters(self, profile: str) -> Dict[str, Dict[str, float]]:
        """Per-scheduler fault-injection counters under ``profile``."""
        outcome = self.outcomes[profile]
        return {
            name: fault_counters(result)
            for name, result in sorted(outcome.results.items())
        }


def chaos_configs(
    config: ScenarioConfig,
    profiles: Sequence[str] = CANNED_PROFILES,
    intensity: float = 1.0,
    fault_seed: int = 0,
) -> List[ScenarioConfig]:
    """The scenario list of a chaos run: baseline first, then one per profile.

    Each faulted config differs from the baseline only in its fault
    fields, so every run replays a byte-identical workload — the JCT
    deltas measure the faults, nothing else.
    """
    if not profiles:
        raise ExperimentError("chaos run needs at least one fault profile")
    baseline = config.with_overrides(
        name=f"{config.name}@{BASELINE}",
        fault_profile="",
        fault_intensity=1.0,
        fault_seed=0,
    )
    configs = [baseline]
    for profile in profiles:
        configs.append(
            config.with_overrides(
                name=f"{config.name}@{profile}",
                fault_profile=profile,
                fault_intensity=intensity,
                fault_seed=fault_seed,
            )
        )
    return configs


def run_chaos(
    config: ScenarioConfig,
    profiles: Sequence[str] = CANNED_PROFILES,
    intensity: float = 1.0,
    fault_seed: int = 0,
    parallel: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressHook] = None,
) -> ChaosReport:
    """Run the chaos comparison for one scenario.

    The baseline and every profile run are independent work units, so
    they fan out across ``parallel`` workers and reuse the on-disk
    result cache exactly like figure grids do; results are bit-identical
    to the serial run.  ``fault_seed=0`` derives the fault streams from
    the workload seed (the default coupling); pin a nonzero value to
    vary faults while holding the workload fixed.
    """
    profiles = tuple(profiles)
    configs = chaos_configs(
        config, profiles, intensity=intensity, fault_seed=fault_seed
    )
    units = [WorkUnit(config=c) for c in configs]
    grid = run_grid(  # simlint: ignore[SIM106] (default worker bumps the benchmark rebuild counter; write-only instrumentation)
        units, parallel=parallel, cache_dir=cache_dir, progress=progress
    )
    results = grid.scenario_results()
    report = ChaosReport(config=config, profiles=profiles, grid=grid)
    report.outcomes[BASELINE] = results[0]
    for profile, outcome in zip(profiles, results[1:]):
        report.outcomes[profile] = outcome
    return report
