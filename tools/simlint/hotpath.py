"""Hot-closure computation for ``simlint --perf``.

Bridges the two halves of the hot-path contract — the ``@hot_path``
marker in :mod:`repro.simulator.hotpath` and the registry in
:mod:`tools.simlint.hotpaths` — on top of the PR-4 callgraph:

* resolve which registered functions exist in the analyzed project;
* cross-check decorator vs registry (drift is SIM207);
* walk every call site inside registered functions and report calls
  that escape into unregistered project functions (SIM207) unless the
  line carries a ``# simlint: hot-ok[reason]`` acknowledgment.

The SIM201-SIM206 content rules in :mod:`tools.simlint.perfrules` run
over the ``functions`` list this module produces.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from tools.simlint.callgraph import (
    FunctionInfo,
    ModuleInfo,
    Project,
    dotted_name,
)
from tools.simlint.findings import Finding
from tools.simlint.hotpaths import REGISTRY, HotPathRegistry

#: Terminal name of the in-source marker decorator
#: (``repro.simulator.hotpath.hot_path``).
HOT_PATH_DECORATOR = "hot_path"

REGISTRY_RULE_CODE = "SIM207"

_HOT_OK_RE = re.compile(r"#\s*simlint:\s*hot-ok\[(?P<reason>[^\]]*)\]")


class HotOkIndex:
    """Per-line ``# simlint: hot-ok[reason]`` acknowledgments of one file.

    The pragma acknowledges a call *out of* the hot closure as
    deliberately cold (a fault path, a once-per-run slow path).  A
    reason is mandatory: ``hot-ok[]`` does not acknowledge anything.
    """

    def __init__(self, source: str) -> None:
        self.reasons: Dict[int, str] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _HOT_OK_RE.search(text)
            if match is None:
                continue
            reason = match.group("reason").strip()
            if reason:
                self.reasons[lineno] = reason

    def acknowledged(self, line: int) -> bool:
        return line in self.reasons


@dataclass
class HotAnalysis:
    """The registered hot set as realised in one project."""

    #: Registered functions that exist in the project (roots + closure),
    #: sorted by full name — the SIM201-SIM206 rules iterate these.
    functions: List[FunctionInfo] = field(default_factory=list)
    #: SIM207 findings: closure escapes and registry drift.
    findings: List[Finding] = field(default_factory=list)
    #: Count of call sites acknowledged cold via hot-ok pragmas.
    acknowledged: int = 0


def local_types_for(
    func: FunctionInfo, mod: ModuleInfo, project: Project
) -> Dict[str, str]:
    """Parameter name -> full class name, from simple dotted annotations.

    Only plain dotted annotations that resolve to a project class count
    (``request: AllocationRequest``); subscripted or external annotations
    are skipped, matching the callgraph's best-effort resolution.
    """
    out: Dict[str, str] = {}
    args = func.node.args  # type: ignore[attr-defined]
    for arg in [*getattr(args, "posonlyargs", []), *args.args, *args.kwonlyargs]:
        if arg.annotation is None:
            continue
        parts = dotted_name(arg.annotation)
        if parts is None:
            continue
        resolved = project.resolve_dotted(".".join(parts), mod)
        if resolved is not None and resolved in project.classes:
            out[arg.arg] = resolved
    return out


def decorated_hot_functions(project: Project) -> Dict[str, FunctionInfo]:
    """Functions carrying the ``@hot_path`` marker, by full name."""
    out: Dict[str, FunctionInfo] = {}
    for func in project.functions.values():
        for decorator in getattr(func.node, "decorator_list", []):
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            parts = dotted_name(target)
            if parts is not None and parts[-1] == HOT_PATH_DECORATOR:
                out[func.full_name] = func
    return out


def _module_prefix_of(project: Project, full_name: str) -> Optional[ModuleInfo]:
    """The project module whose name prefixes ``full_name``, if any."""
    parts = full_name.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        mod = project.modules.get(".".join(parts[:cut]))
        if mod is not None:
            return mod
    return None


def _drift_findings(
    project: Project,
    registry: HotPathRegistry,
    decorated: Dict[str, FunctionInfo],
) -> List[Finding]:
    findings: List[Finding] = []
    registered = registry.registered()

    # Decorated in source but absent from the registry.
    for name in sorted(decorated):
        if name in registered:
            continue
        func = decorated[name]
        findings.append(
            Finding(
                path=project.module_for_function(func).path,
                line=func.lineno,
                col=getattr(func.node, "col_offset", 0),
                code=REGISTRY_RULE_CODE,
                message=(
                    f"'{name}' carries @hot_path but is missing from the "
                    "registry in tools/simlint/hotpaths.py (registry drift)"
                ),
            )
        )

    # Registered but stale or undecorated.  Partial lints (a single file
    # on the command line) skip entries whose module is not loaded.
    for name in sorted(registered):
        func = project.function_for(name)
        if func is None:
            mod = _module_prefix_of(project, name)
            if mod is not None:
                findings.append(
                    Finding(
                        path=mod.path,
                        line=1,
                        col=0,
                        code=REGISTRY_RULE_CODE,
                        message=(
                            f"registry entry '{name}' does not exist in "
                            f"module '{mod.name}' (stale registry entry)"
                        ),
                    )
                )
            continue
        if (
            name in registry.roots
            and func.module.startswith(registry.decorated_prefix)
            and name not in decorated
        ):
            findings.append(
                Finding(
                    path=project.module_for_function(func).path,
                    line=func.lineno,
                    col=getattr(func.node, "col_offset", 0),
                    code=REGISTRY_RULE_CODE,
                    message=(
                        f"registered hot-path root '{name}' lacks the "
                        "@hot_path marker at its definition (registry drift)"
                    ),
                )
            )
    return findings


def analyze_hot_paths(
    project: Project, registry: Optional[HotPathRegistry] = None
) -> HotAnalysis:
    """Resolve the registry against ``project`` and find SIM207 issues."""
    registry = REGISTRY if registry is None else registry
    registered = registry.registered()
    analysis = HotAnalysis()
    analysis.findings.extend(
        _drift_findings(project, registry, decorated_hot_functions(project))
    )

    present = {
        name: func
        for name in registered
        if (func := project.function_for(name)) is not None
    }
    analysis.functions = [present[name] for name in sorted(present)]

    hot_ok: Dict[str, HotOkIndex] = {}
    for name in sorted(present):
        func = present[name]
        mod = project.module_for_function(func)
        cls = project.class_for_function(func)
        locals_ = local_types_for(func, mod, project)
        index = hot_ok.get(mod.path)
        if index is None:
            index = hot_ok[mod.path] = HotOkIndex(mod.source)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            resolved = project.resolve_expr(
                node.func, mod, cls=cls, local_types=locals_
            )
            if resolved is None:
                continue
            callee = project.function_for(resolved)
            if callee is None or callee.full_name in registered:
                # Constructors (SIM204's job), externals, and registered
                # callees are not closure escapes.
                continue
            if index.acknowledged(node.lineno):
                analysis.acknowledged += 1
                continue
            analysis.findings.append(
                Finding(
                    path=mod.path,
                    line=node.lineno,
                    col=node.col_offset,
                    code=REGISTRY_RULE_CODE,
                    message=(
                        f"hot-path function '{func.qualname}' calls "
                        f"unregistered '{callee.full_name}'; register it in "
                        "tools/simlint/hotpaths.py or acknowledge the cold "
                        "call with '# simlint: hot-ok[reason]'"
                    ),
                )
            )
    return analysis
