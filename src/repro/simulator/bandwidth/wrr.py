"""SPQ emulation via Weighted Round Robin — Gurita's starvation mitigation.

Pure SPQ can starve low-priority traffic (paper §IV.B, "Starvation
Mitigation").  Gurita therefore *emulates* SPQ with WRR: each priority
class is guaranteed a bandwidth share derived from the average waiting time
that class would experience under true SPQ, so low classes keep trickling
while high classes still dominate.

Derivation (paper, after Kleinrock):  with per-class loads ``rho_k`` and
prefix sums ``sigma_k = rho_0 + ... + rho_k``, the mean SPQ waiting time of
class k is proportional to ``1 / ((1 - sigma_{k-1}) (1 - sigma_k))``.  A
class that would *wait longer* under SPQ is a *lower* priority class, so to
mimic SPQ's bandwidth ordering the WRR weight of class k is proportional to
the inverse waiting time::

    w_k  ∝  (1 - sigma_{k-1}) (1 - sigma_k)

normalized so that ``sum w_k = 1``.  (The paper's formula as printed reads
``w_k = W_k / sum W``, which would order weights backwards; we implement the
inverse-wait reading by default and keep the literal one available for
ablation via ``mode="literal"``.)
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np
import numpy.typing as npt

from repro.simulator.bandwidth.maxmin import (
    LinkMembership,
    Route,
    water_fill_membership,
)
from repro.simulator.bandwidth.spq import group_by_class

#: Total utilisation assumed when converting flow counts to loads; keeps
#: the queueing formula away from its 1/(1-rho) singularity.
DEFAULT_UTILIZATION = 0.9


def class_loads_from_counts(
    counts: Sequence[int],
    utilization: float = DEFAULT_UTILIZATION,
) -> List[float]:
    """Per-class loads ``rho_k`` proportional to active-flow counts.

    The paper reads per-queue arrival rates off the switches; the
    simulator's observable analogue is the number of active flows per
    class.  Loads are scaled to sum to ``utilization`` (< 1).
    """
    total = sum(counts)
    if total == 0:
        return [0.0] * len(counts)
    return [utilization * c / total for c in counts]


def spq_waiting_times(loads: Sequence[float]) -> List[float]:
    """Relative mean SPQ waiting time per class (nonpreemptive M/M/1).

    Only ratios matter for the WRR weights, so the residual-service
    numerator common to all classes is dropped.
    """
    waits: List[float] = []
    sigma_prev = 0.0
    for rho in loads:
        sigma = min(sigma_prev + rho, 0.999)
        denom = (1.0 - sigma_prev) * (1.0 - sigma)
        waits.append(1.0 / max(denom, 1e-9))
        sigma_prev = sigma
    return waits


def wrr_weights(loads: Sequence[float], mode: str = "inverse_wait") -> List[float]:
    """WRR weights per class from SPQ waiting times.

    ``mode="inverse_wait"`` (default): weight ∝ 1 / W_k — emulates SPQ's
    bandwidth ordering while guaranteeing every class a share.
    ``mode="literal"``: weight ∝ W_k — the paper's formula as printed
    (kept for ablation).
    """
    waits = spq_waiting_times(loads)
    if mode == "inverse_wait":
        raw = [1.0 / w for w in waits]
    elif mode == "literal":
        raw = list(waits)
    else:
        raise ValueError(f"unknown WRR weight mode {mode!r}")
    total = sum(raw)
    if total <= 0:
        return [1.0 / len(raw)] * len(raw)
    return [r / total for r in raw]


def allocate_wrr(
    flow_routes: Mapping[int, Route],
    priorities: Mapping[int, int],
    capacities: Sequence[float],
    num_classes: int,
    utilization: float = DEFAULT_UTILIZATION,
    weight_mode: str = "inverse_wait",
) -> Dict[int, float]:
    """Rates under WRR-emulated SPQ.

    Two passes keep the allocation work-conserving:

    1. every class water-fills within its guaranteed per-link budget
       ``w_k * capacity`` (so no class starves);
    2. leftover capacity is water-filled across *all* flows, their pass-1
       rates acting as a floor.
    """
    caps = np.array(capacities, dtype=float)
    groups = group_by_class(flow_routes, priorities, num_classes)
    class_members = [
        LinkMembership.from_routes(group, len(caps)) for group in groups
    ]
    all_flows = LinkMembership.from_routes(flow_routes, len(caps))
    return allocate_wrr_memberships(
        class_members,
        all_flows,
        caps,
        utilization=utilization,
        weight_mode=weight_mode,
    )


def allocate_wrr_memberships(
    class_members: Sequence[LinkMembership],
    all_flows: LinkMembership,
    capacities: npt.NDArray[np.float64],
    utilization: float = DEFAULT_UTILIZATION,
    weight_mode: str = "inverse_wait",
) -> Dict[int, float]:
    """WRR rates over prebuilt memberships (shared core; the engine's path).

    ``class_members`` mirror :func:`group_by_class`; ``all_flows`` is the
    union membership used by the work-conservation pass.  ``capacities`` is
    not mutated.
    """
    counts = [len(members) for members in class_members]
    weights = wrr_weights(
        class_loads_from_counts(counts, utilization), mode=weight_mode
    )

    # Redistribute the guaranteed share of empty classes to busy ones so the
    # guaranteed pass itself wastes nothing.
    busy_weight = sum(w for w, c in zip(weights, counts) if c > 0)
    rates: Dict[int, float] = {}
    caps = capacities
    consumed = np.zeros_like(caps)

    for cls, members in enumerate(class_members):
        if not len(members) or busy_weight <= 0:
            continue
        share = weights[cls] / busy_weight
        # Guaranteed budget for this class on every link.
        budget = caps * share
        class_rates = water_fill_membership(members, budget)
        rates.update(class_rates)
        # Unbuffered np.add.at applies the per-flow charges sequentially in
        # class_rates order — float-identical to the historical nested loop.
        route_arrays = members.route_arrays
        arrs = [route_arrays[flow_id] for flow_id in class_rates]  # simlint: ignore[SIM202] (per-class batch setup, bounded by num_classes)
        if arrs:
            lengths = np.fromiter(
                (a.size for a in arrs), dtype=np.intp, count=len(arrs)  # simlint: ignore[SIM202] (per-class batch setup, bounded by num_classes)
            )
            charges = np.repeat(
                np.fromiter(
                    class_rates.values(), dtype=np.float64, count=len(arrs)
                ),
                lengths,
            )
            np.add.at(consumed, np.concatenate(arrs), charges)

    # Work-conservation pass: hand out whatever is left to everyone.
    leftover = np.maximum(caps - consumed, 0.0)
    extra = water_fill_membership(all_flows, leftover)
    for flow_id, bonus in extra.items():
        rates[flow_id] = rates.get(flow_id, 0.0) + bonus
    return rates
