"""Validation of user-supplied workloads against a topology.

The builders guarantee structural consistency of a single job; this module
checks whole workloads before simulation — host ranges, id uniqueness,
arrival sanity — and reports *all* problems at once instead of failing on
the first (useful when importing external traces or hand-built job sets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.jobs.job import Job
from repro.simulator.topology.base import Topology


@dataclass
class ValidationReport:
    """Collected problems; empty means the workload is simulation-ready."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            from repro.errors import InvalidJobError

            raise InvalidJobError(
                "invalid workload: " + "; ".join(self.errors[:10])
                + (f" (+{len(self.errors) - 10} more)" if len(self.errors) > 10 else "")
            )


def validate_workload(
    jobs: Sequence[Job],
    topology: Topology = None,
    num_hosts: int = None,
) -> ValidationReport:
    """Check a workload; pass either a topology or a host count."""
    report = ValidationReport()
    if not jobs:
        report.errors.append("workload has no jobs")
        return report
    if topology is not None:
        num_hosts = topology.num_hosts
    job_ids = set()
    coflow_ids = set()
    flow_ids = set()
    for job in jobs:
        if job.job_id in job_ids:
            report.errors.append(f"duplicate job id {job.job_id}")
        job_ids.add(job.job_id)
        if job.arrival_time < 0:
            report.errors.append(f"job {job.job_id}: negative arrival time")
        if job.num_stages > 10:
            report.warnings.append(
                f"job {job.job_id}: {job.num_stages} stages "
                "(production jobs rarely exceed ten)"
            )
        for coflow in job.coflows:
            if coflow.coflow_id in coflow_ids:
                report.errors.append(
                    f"duplicate coflow id {coflow.coflow_id} "
                    f"(job {job.job_id})"
                )
            coflow_ids.add(coflow.coflow_id)
            for flow in coflow.flows:
                if flow.flow_id in flow_ids:
                    report.errors.append(
                        f"duplicate flow id {flow.flow_id} "
                        f"(coflow {coflow.coflow_id})"
                    )
                flow_ids.add(flow.flow_id)
                if num_hosts is not None:
                    for host, role in ((flow.src, "src"), (flow.dst, "dst")):
                        if not 0 <= host < num_hosts:
                            report.errors.append(
                                f"flow {flow.flow_id}: {role} host {host} "
                                f"outside 0..{num_hosts - 1}"
                            )
                if flow.size_bytes > 10e12:
                    report.warnings.append(
                        f"flow {flow.flow_id}: {flow.size_bytes / 1e12:.1f} TB "
                        "in a single flow (larger than any trace flow)"
                    )
    return report
