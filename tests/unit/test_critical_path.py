"""Unit tests for critical-path estimation (rule 4)."""

import pytest

from repro.core.critical_path import (
    AvaCriticalPathEstimator,
    clairvoyant_critical_set,
)
from repro.jobs import JobBuilder


class TestAvaEstimator:
    def test_average_tracks_observations(self):
        est = AvaCriticalPathEstimator()
        est.observe(10.0)
        est.observe(30.0)
        assert est.average == pytest.approx(20.0)

    def test_zero_observations_ignored(self):
        est = AvaCriticalPathEstimator()
        est.observe(0.0)
        est.observe(-5.0)
        assert est.average == 0.0

    def test_no_flag_before_any_observation(self):
        est = AvaCriticalPathEstimator()
        assert not est.is_critical(1, 1, 100.0)

    def test_flags_above_average(self):
        est = AvaCriticalPathEstimator()
        for value in (10.0, 10.0, 10.0):
            est.observe(value)
        assert est.is_critical(1, 1, 50.0)
        assert not est.is_critical(1, 2, 1.0)

    def test_flags_are_sticky(self):
        est = AvaCriticalPathEstimator()
        est.observe(10.0)
        assert est.is_critical(1, 1, 50.0)
        # Later, even below average, the mark persists.
        est.observe(1000.0)
        assert est.is_critical(1, 1, 50.0)

    def test_marks_capped_per_job(self):
        est = AvaCriticalPathEstimator(max_marks_per_job=2)
        est.observe(1.0)
        assert est.is_critical(1, 1, 10.0)
        assert est.is_critical(1, 2, 10.0)
        assert not est.is_critical(1, 3, 10.0)
        # Another job has its own budget.
        assert est.is_critical(2, 9, 10.0)

    def test_forget_job_frees_budget(self):
        est = AvaCriticalPathEstimator(max_marks_per_job=1)
        est.observe(1.0)
        assert est.is_critical(1, 1, 10.0)
        est.forget_job(1)
        assert est.is_critical(1, 2, 10.0)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            AvaCriticalPathEstimator(max_marks_per_job=0)


class TestClairvoyant:
    def test_heavy_branch_selected(self, ids):
        builder = JobBuilder(ids=ids)
        leaf = builder.add_coflow([(0, 1, 10.0)])
        heavy = builder.add_coflow([(1, 2, 100.0)], depends_on=[leaf])
        light = builder.add_coflow([(1, 3, 1.0)], depends_on=[leaf])
        root = builder.add_coflow([(2, 3, 5.0)], depends_on=[heavy, light])
        job = builder.build()
        critical = clairvoyant_critical_set(job)
        assert critical == {leaf, heavy, root}
