"""Unit tests for allocation requests, dispatch, and the error hierarchy."""

import pytest

from repro import errors
from repro.errors import ReproError, SchedulerError
from repro.simulator.bandwidth.request import (
    MAX_SWITCH_CLASSES,
    AllocationMode,
    AllocationRequest,
    dispatch_allocation,
)


class TestAllocationRequest:
    def test_defaults(self):
        request = AllocationRequest()
        assert request.mode is AllocationMode.MAXMIN
        assert request.num_classes == 4
        assert request.priorities == {}

    def test_class_count_bounds(self):
        AllocationRequest(num_classes=1)
        AllocationRequest(num_classes=MAX_SWITCH_CLASSES)
        with pytest.raises(SchedulerError):
            AllocationRequest(num_classes=0)
        with pytest.raises(SchedulerError):
            AllocationRequest(num_classes=MAX_SWITCH_CLASSES + 1)

    def test_dispatch_each_mode(self):
        flow_routes = {1: (0,), 2: (0,)}
        capacities = [10.0]
        for mode in AllocationMode:
            request = AllocationRequest(
                mode=mode, priorities={1: 0, 2: 1}, num_classes=2
            )
            rates = dispatch_allocation(request, flow_routes, capacities)
            assert set(rates) == {1, 2}
            assert sum(rates.values()) <= 10.0 + 1e-6

    def test_maxmin_ignores_priorities(self):
        request = AllocationRequest(
            mode=AllocationMode.MAXMIN, priorities={1: 0, 2: 3}
        )
        rates = dispatch_allocation(request, {1: (0,), 2: (0,)}, [10.0])
        assert rates[1] == pytest.approx(rates[2])


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not ReproError:
                    assert issubclass(obj, ReproError) or obj is ReproError

    def test_trace_error_is_workload_error(self):
        assert issubclass(errors.TraceFormatError, errors.WorkloadError)

    def test_dag_cycle_is_invalid_job(self):
        assert issubclass(errors.DagCycleError, errors.InvalidJobError)


class TestCliFigure:
    def test_figure_fig8_tiny(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "fig8.json"
        code = main(
            ["figure", "fig8", "--jobs", "3", "--out", str(out_path)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "fig8-fb-tao" in printed
        assert out_path.exists()
