"""Workloads: Table-1 categories, trace tooling, DAG structures, arrivals."""

from repro.workloads.bursty import (
    BURST_INTERVAL,
    bursty_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.workloads.categories import (
    CATEGORY_LABELS,
    NUM_CATEGORIES,
    category_bounds,
    category_label,
    category_of,
    group_by_category,
)
from repro.workloads.fbtao import tao_shape, tao_volumes
from repro.workloads.fbtrace import (
    FB_TRACE_DURATION,
    FB_TRACE_MACHINES,
    TraceCoflow,
    parse_trace,
    synthesize_trace,
    write_trace,
)
from repro.workloads.generator import (
    STRUCTURES,
    jobs_from_trace,
    remap_specs,
    replicate_coflow,
    synthesize_workload,
)
from repro.workloads.shapes import (
    DagShape,
    chain,
    inverted_v,
    multi_root,
    parallel_chains,
    sample_production_shape,
    single,
    tree,
    w_shape,
)
from repro.workloads.stats import (
    Distribution,
    TraceStats,
    WorkloadStats,
    format_trace_stats,
    trace_stats,
    workload_stats,
)
from repro.workloads.tpcds import query42_shape, query42_volumes

__all__ = [
    "BURST_INTERVAL",
    "CATEGORY_LABELS",
    "DagShape",
    "Distribution",
    "TraceStats",
    "WorkloadStats",
    "FB_TRACE_DURATION",
    "FB_TRACE_MACHINES",
    "NUM_CATEGORIES",
    "STRUCTURES",
    "TraceCoflow",
    "bursty_arrivals",
    "category_bounds",
    "category_label",
    "category_of",
    "chain",
    "group_by_category",
    "inverted_v",
    "jobs_from_trace",
    "multi_root",
    "parallel_chains",
    "parse_trace",
    "poisson_arrivals",
    "query42_shape",
    "query42_volumes",
    "remap_specs",
    "replicate_coflow",
    "sample_production_shape",
    "single",
    "synthesize_trace",
    "synthesize_workload",
    "tao_shape",
    "tao_volumes",
    "tree",
    "trace_stats",
    "format_trace_stats",
    "workload_stats",
    "uniform_arrivals",
    "w_shape",
    "write_trace",
]
