"""Unit tests for the Job lifecycle and dependency releases."""

import pytest

from repro.errors import InvalidJobError
from repro.jobs import IdAllocator, JobBuilder, chain_job, single_stage_job
from repro.jobs.job import JobState


class TestConstruction:
    def test_arrival_must_be_non_negative(self, ids):
        with pytest.raises(InvalidJobError):
            single_stage_job([(0, 1, 5.0)], arrival_time=-1.0, ids=ids)

    def test_stages_assigned_from_dag(self, diamond_job):
        stages = {
            name: diamond_job.coflow(cid).stage
            for name, cid in diamond_job.coflow_ids.items()
        }
        assert stages == {"leaf": 1, "left": 2, "right": 2, "root": 3}
        assert diamond_job.num_stages == 3

    def test_total_bytes_sums_all_stages(self, diamond_job):
        assert diamond_job.total_bytes == pytest.approx(250.0)

    def test_stage_bytes(self, diamond_job):
        assert diamond_job.stage_bytes(1) == pytest.approx(100.0)
        assert diamond_job.stage_bytes(2) == pytest.approx(125.0)
        assert diamond_job.stage_bytes(3) == pytest.approx(25.0)


class TestLifecycle:
    def test_arrive_releases_only_leaves(self, diamond_job):
        released = diamond_job.arrive(0.0)
        assert [c.coflow_id for c in released] == [
            diamond_job.coflow_ids["leaf"]
        ]
        assert diamond_job.state is JobState.RUNNING

    def test_double_arrival_rejected(self, diamond_job):
        diamond_job.arrive(0.0)
        with pytest.raises(InvalidJobError):
            diamond_job.arrive(1.0)

    def _finish_coflow(self, job, coflow_id, now):
        coflow = job.coflow(coflow_id)
        for flow in coflow.flows:
            flow.finish(now)
        assert coflow.maybe_complete(now)

    def test_dependents_release_when_all_dependencies_done(self, diamond_job):
        names = diamond_job.coflow_ids
        for coflow in diamond_job.arrive(0.0):
            coflow.release(0.0)
        self._finish_coflow(diamond_job, names["leaf"], 1.0)
        released = diamond_job.releasable_after(names["leaf"])
        assert sorted(c.coflow_id for c in released) == sorted(
            [names["left"], names["right"]]
        )
        for coflow in released:
            coflow.release(1.0)
        # Root waits for both left and right.
        self._finish_coflow(diamond_job, names["left"], 2.0)
        assert diamond_job.releasable_after(names["left"]) == []
        self._finish_coflow(diamond_job, names["right"], 3.0)
        root_release = diamond_job.releasable_after(names["right"])
        assert [c.coflow_id for c in root_release] == [names["root"]]

    def test_completed_stages_counts_prefix(self, diamond_job):
        names = diamond_job.coflow_ids
        for coflow in diamond_job.arrive(0.0):
            coflow.release(0.0)
        assert diamond_job.completed_stages == 0
        self._finish_coflow(diamond_job, names["leaf"], 1.0)
        assert diamond_job.completed_stages == 1

    def test_job_completes_with_last_coflow(self, diamond_job):
        names = diamond_job.coflow_ids
        for coflow in diamond_job.arrive(0.0):
            coflow.release(0.0)
        self._finish_coflow(diamond_job, names["leaf"], 1.0)
        for coflow in diamond_job.releasable_after(names["leaf"]):
            coflow.release(1.0)
        self._finish_coflow(diamond_job, names["left"], 2.0)
        self._finish_coflow(diamond_job, names["right"], 2.5)
        for coflow in diamond_job.releasable_after(names["right"]):
            coflow.release(2.5)
        assert not diamond_job.maybe_complete(2.5)
        self._finish_coflow(diamond_job, names["root"], 4.0)
        assert diamond_job.maybe_complete(4.0)
        assert diamond_job.completion_time() == pytest.approx(4.0)


class TestBuilders:
    def test_chain_job_builds_linear_stages(self, ids):
        job = chain_job(
            [[(0, 1, 10.0)], [(1, 2, 5.0)], [(2, 3, 1.0)]], ids=ids
        )
        assert job.num_stages == 3
        assert [c.stage for c in job.coflows] == [1, 2, 3]

    def test_single_stage_job(self, ids):
        job = single_stage_job([(0, 1, 1.0), (2, 3, 2.0)], ids=ids)
        assert job.num_stages == 1
        assert job.coflows[0].width == 2

    def test_builder_rejects_unknown_dependency(self, ids):
        builder = JobBuilder(ids=ids)
        with pytest.raises(InvalidJobError):
            builder.add_coflow([(0, 1, 1.0)], depends_on=[999])

    def test_builder_rejects_empty_coflow(self, ids):
        builder = JobBuilder(ids=ids)
        with pytest.raises(InvalidJobError):
            builder.add_coflow([])

    def test_id_allocator_keeps_ids_globally_unique(self):
        ids = IdAllocator()
        job_a = single_stage_job([(0, 1, 1.0)], ids=ids)
        job_b = single_stage_job([(0, 1, 1.0)], ids=ids)
        assert job_a.job_id != job_b.job_id
        flows_a = {f.flow_id for c in job_a.coflows for f in c.flows}
        flows_b = {f.flow_id for c in job_b.coflows for f in c.flows}
        assert not flows_a & flows_b
