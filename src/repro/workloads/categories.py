"""Table 1 of the paper: seven categories of multi-stage job size.

=====  ===============
 I      6 MB – 80 MB
 II     81 MB – 800 MB
 III    801 MB – 8 GB
 IV     8 GB – 10 GB
 V      10 GB – 100 GB
 VI     100 GB – 1 TB
 VII    > 1 TB
=====  ===============

Categories are indexed 1..7 and keyed on a job's total bytes sent across
all stages.  Jobs below 6 MB fall into category I (the table's floor is the
smallest job in the Facebook trace).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Tuple

MB = 1e6
GB = 1e9
TB = 1e12

#: Upper bound of categories I..VI; VII is unbounded.
CATEGORY_UPPER_BOUNDS: Tuple[float, ...] = (
    80 * MB,
    800 * MB,
    8 * GB,
    10 * GB,
    100 * GB,
    1 * TB,
)

CATEGORY_LABELS: Tuple[str, ...] = ("I", "II", "III", "IV", "V", "VI", "VII")

NUM_CATEGORIES = len(CATEGORY_LABELS)


def category_of(total_bytes: float) -> int:
    """Category (1..7) for a job's total bytes sent."""
    if total_bytes < 0:
        raise ValueError(f"total_bytes must be non-negative, got {total_bytes}")
    return bisect_left(CATEGORY_UPPER_BOUNDS, total_bytes) + 1


def category_label(category: int) -> str:
    """Roman-numeral label of a category index (1..7)."""
    if not 1 <= category <= NUM_CATEGORIES:
        raise ValueError(f"category must be in 1..{NUM_CATEGORIES}, got {category}")
    return CATEGORY_LABELS[category - 1]


def category_bounds(category: int) -> Tuple[float, float]:
    """(inclusive lower, exclusive upper) byte bounds; VII's upper is inf."""
    if not 1 <= category <= NUM_CATEGORIES:
        raise ValueError(f"category must be in 1..{NUM_CATEGORIES}, got {category}")
    lower = 0.0 if category == 1 else CATEGORY_UPPER_BOUNDS[category - 2]
    upper = (
        float("inf")
        if category == NUM_CATEGORIES
        else CATEGORY_UPPER_BOUNDS[category - 1]
    )
    return lower, upper


def group_by_category(total_bytes: Iterable[Tuple[int, float]]) -> Dict[int, List[int]]:
    """Group (job_id, total_bytes) pairs into {category: [job ids]}."""
    groups: Dict[int, List[int]] = {}
    for job_id, size in total_bytes:
        groups.setdefault(category_of(size), []).append(job_id)
    return groups
