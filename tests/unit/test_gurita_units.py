"""Unit tests for Gurita's configuration, HR decisions, and GuritaPlus."""

import pytest

from repro.core.config import GuritaConfig
from repro.core.critical_path import AvaCriticalPathEstimator
from repro.core.gurita import GuritaScheduler
from repro.core.gurita_plus import GuritaPlusScheduler
from repro.core.head_receiver import HeadReceiver
from repro.core.starvation import build_request
from repro.errors import SchedulerError
from repro.jobs import JobBuilder
from repro.simulator.bandwidth.request import AllocationMode


class _FakeContext:
    """Just enough SchedulerContext for driving hooks directly."""

    def __init__(self, job):
        self._job = job

    def job(self, job_id):
        assert job_id == self._job.job_id
        return self._job

    def coflow(self, coflow_id):
        return self._job.coflow(coflow_id)


class TestConfig:
    def test_defaults_follow_paper(self):
        config = GuritaConfig()
        assert config.num_classes == 4  # evaluation uses four queues
        assert config.update_interval == pytest.approx(8e-3)
        assert config.beta_floor == pytest.approx(0.1)
        assert config.starvation_mitigation is True

    def test_threshold_object_built(self):
        config = GuritaConfig(num_classes=8, psi_first=1e6, psi_base=4.0)
        assert config.thresholds.num_classes == 8
        assert config.thresholds.class_of(0.5e6) == 0

    def test_validation(self):
        with pytest.raises(SchedulerError):
            GuritaConfig(critical_path_bonus=1.0)
        with pytest.raises(SchedulerError):
            GuritaConfig(beta_floor=0.0)
        with pytest.raises(SchedulerError):
            GuritaConfig(update_interval=0.0)


class TestStarvationRequest:
    def test_wrr_when_mitigation_on(self):
        request = build_request(GuritaConfig(), {1: 0})
        assert request.mode is AllocationMode.WRR

    def test_spq_when_mitigation_off(self):
        request = build_request(
            GuritaConfig(starvation_mitigation=False), {1: 0}
        )
        assert request.mode is AllocationMode.SPQ


def _two_stage_job(ids, first_sizes, second_sizes):
    builder = JobBuilder(ids=ids)
    first = builder.add_coflow([(i, 50 + i, s) for i, s in enumerate(first_sizes)])
    second = builder.add_coflow(
        [(i, 60 + i, s) for i, s in enumerate(second_sizes)],
        depends_on=[first],
    )
    return builder.build(), first, second


class TestHeadReceiver:
    def test_no_decisions_before_release(self, ids):
        job, _f, _s = _two_stage_job(ids, [100.0], [10.0])
        hr = HeadReceiver(job, GuritaConfig())
        assert hr.decide(AvaCriticalPathEstimator()) == []

    def test_decides_for_running_stage_only(self, ids):
        job, first, _second = _two_stage_job(ids, [100.0], [10.0])
        for coflow in job.arrive(0.0):
            coflow.release(0.0)
        hr = HeadReceiver(job, GuritaConfig())
        decisions = hr.decide(AvaCriticalPathEstimator())
        assert [d.coflow_id for d in decisions] == [first]
        assert decisions[0].stage == 1

    def test_heavier_observation_demotes(self, ids):
        config = GuritaConfig(psi_first=100.0, psi_base=10.0)
        job, first, _second = _two_stage_job(
            ids, [1000.0, 10.0, 10.0], [1.0]
        )
        for coflow in job.arrive(0.0):
            coflow.release(0.0)
        coflow = job.coflow(first)
        hr = HeadReceiver(job, config)
        # Nothing observed: psi 0 -> top class.
        assert hr.decide(AvaCriticalPathEstimator())[0].priority_class == 0
        # One elephant flow races ahead: beta ~ 1, width 3, lmax 600.
        coflow.flows[0].rate = 100.0
        coflow.flows[0].advance(6.0)
        decision = hr.decide(AvaCriticalPathEstimator())[0]
        assert decision.psi > 100.0
        assert decision.priority_class >= 1

    def test_stage_psi_sums_parallel_coflows(self, ids):
        builder = JobBuilder(ids=ids)
        a = builder.add_coflow([(0, 1, 100.0)])
        b = builder.add_coflow([(2, 3, 100.0)])
        job = builder.build()
        for coflow in job.arrive(0.0):
            coflow.release(0.0)
        for coflow in job.coflows:
            coflow.flows[0].rate = 10.0
            coflow.flows[0].advance(1.0)
        hr = HeadReceiver(job, GuritaConfig(critical_path_bonus=0.0))
        decisions = hr.decide(AvaCriticalPathEstimator())
        assert len(decisions) == 2
        total = sum(d.psi for d in decisions)
        for decision in decisions:
            assert decision.stage_psi == pytest.approx(total)


class TestGuritaHooks:
    def test_new_coflows_start_at_top_priority(self, ids):
        scheduler = GuritaScheduler()
        job, first, _second = _two_stage_job(ids, [100.0], [10.0])
        scheduler.on_job_arrival(job, 0.0)
        released = job.arrive(0.0)
        for coflow in released:
            coflow.release(0.0)
            scheduler.on_coflow_release(coflow, 0.0)
        flow = job.coflow(first).flows[0]
        request = scheduler.allocation([flow], 0.0)
        assert request.priorities[flow.flow_id] == 0

    def test_promotion_does_not_touch_inflight_flows(self, ids):
        scheduler = GuritaScheduler()
        job, first, _second = _two_stage_job(ids, [100.0], [10.0])
        scheduler.on_job_arrival(job, 0.0)
        scheduler.context = _FakeContext(job)
        for coflow in job.arrive(0.0):
            coflow.release(0.0)
            scheduler.on_coflow_release(coflow, 0.0)
        # Demote then attempt to promote.
        assert scheduler._apply_decision(first, 2) is True
        flow_id = job.coflow(first).flows[0].flow_id
        assert scheduler._flow_class[flow_id] == 2
        assert scheduler._apply_decision(first, 0) is False
        # In-flight flow keeps its old (demoted) priority.
        assert scheduler._flow_class[flow_id] == 2
        # But the coflow-level class for future flows improved.
        assert scheduler._coflow_class[first] == 0

    def test_released_flows_inherit_demoted_job_class(self, ids):
        """Regression (§IV.B demotion rule): a coflow released while its
        job is demoted must inherit the job's current class, not reset to
        class 0 and cut the line until the next δ-round."""
        scheduler = GuritaScheduler()
        builder = JobBuilder(ids=ids)
        a = builder.add_coflow([(0, 1, 100.0)])
        blocker = builder.add_coflow([(2, 3, 5000.0)])
        after_a = builder.add_coflow([(4, 5, 10.0)], depends_on=[a])
        job = builder.build()
        scheduler.on_job_arrival(job, 0.0)
        scheduler.context = _FakeContext(job)
        for coflow in job.arrive(0.0):
            coflow.release(0.0)
            scheduler.on_coflow_release(coflow, 0.0)
        # The δ-round demotes the heavy running stage (mirrors on_update's
        # bookkeeping: apply the decision, then record the job class).
        scheduler._apply_decision(blocker, 2)
        scheduler._job_class[job.job_id] = 2
        # Coflow a completes; after_a releases while blocker still runs.
        for flow in job.coflow(a).flows:
            flow.rate = 1.0
            flow.advance(100.0)
            flow.finish(100.0)
        scheduler.on_coflow_finish(job.coflow(a), 100.0)
        released = job.coflow(after_a)
        released.release(100.0)
        scheduler.on_coflow_release(released, 100.0)
        assert scheduler._coflow_class[after_a] == 2
        for flow in released.flows:
            assert scheduler._flow_class[flow.flow_id] == 2
            request = scheduler.allocation([flow], 100.0)
            assert request.priorities[flow.flow_id] == 2

    def test_job_class_resets_when_demoted_stage_finishes(self, ids):
        """Stage sensitivity: once the demoted stage completes, the job's
        class is recomputed from the still-running stages, so the next
        stage starts back at the top queue (unlike Aalo's accumulation)."""
        scheduler = GuritaScheduler()
        job, first, second = _two_stage_job(ids, [100.0], [10.0])
        scheduler.on_job_arrival(job, 0.0)
        scheduler.context = _FakeContext(job)
        for coflow in job.arrive(0.0):
            coflow.release(0.0)
            scheduler.on_coflow_release(coflow, 0.0)
        scheduler._apply_decision(first, 3)
        scheduler._job_class[job.job_id] = 3
        for flow in job.coflow(first).flows:
            flow.rate = 1.0
            flow.advance(100.0)
            flow.finish(100.0)
        scheduler.on_coflow_finish(job.coflow(first), 100.0)
        assert scheduler._job_class[job.job_id] == 0
        released = job.coflow(second)
        released.release(100.0)
        scheduler.on_coflow_release(released, 100.0)
        for flow in released.flows:
            assert scheduler._flow_class[flow.flow_id] == 0

    def test_priority_delta_reporting(self, ids):
        """Gurita reports the exact changed-flow set for the incremental
        engine, and the accumulator clears on consumption."""
        scheduler = GuritaScheduler()
        assert scheduler.reports_priority_deltas is True
        job, first, _second = _two_stage_job(ids, [100.0], [10.0])
        scheduler.on_job_arrival(job, 0.0)
        scheduler.context = _FakeContext(job)
        for coflow in job.arrive(0.0):
            coflow.release(0.0)
            scheduler.on_coflow_release(coflow, 0.0)
        flow_ids = {f.flow_id for f in job.coflow(first).flows}
        assert scheduler.consume_priority_delta() == frozenset(flow_ids)
        assert scheduler.consume_priority_delta() == frozenset()
        scheduler._apply_decision(first, 2)
        assert scheduler.consume_priority_delta() == frozenset(flow_ids)


class TestGuritaPlus:
    def test_no_periodic_updates(self):
        assert GuritaPlusScheduler().update_interval is None

    def test_critical_sets_tracked_per_job(self, ids):
        scheduler = GuritaPlusScheduler()
        job, first, second = _two_stage_job(ids, [100.0], [10.0])
        scheduler.on_job_arrival(job, 0.0)
        assert scheduler._critical_sets[job.job_id] == {first, second}
        scheduler.on_job_finish(job, 1.0)
        assert job.job_id not in scheduler._critical_sets
