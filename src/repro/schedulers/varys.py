"""Varys-style SEBF — the clairvoyant coflow scheduler (related work [4]).

Varys schedules coflows Smallest-Effective-Bottleneck-First: the coflow
whose slowest remaining flow clears first goes first.  It needs flow sizes
up front ("assumes that job size and structure are known ahead of time,
limiting use in practice" — paper §Related Work), so the paper compares
against its non-clairvoyant successor Aalo instead; SEBF is included here
as the classic clairvoyant reference point and for extension studies.

The effective bottleneck is evaluated on *remaining* bytes, so a coflow's
priority improves as it drains — the coflow analogue of SRPT.
"""

from __future__ import annotations

from typing import Dict, List

from repro.jobs.flow import Flow
from repro.schedulers.base import SchedulerPolicy
from repro.simulator.bandwidth.request import (
    MAX_SWITCH_CLASSES,
    AllocationMode,
    AllocationRequest,
)


class SebfScheduler(SchedulerPolicy):
    """Smallest Effective Bottleneck First over remaining flow volumes."""

    name = "sebf"

    def __init__(self, num_classes: int = MAX_SWITCH_CLASSES) -> None:
        super().__init__()
        self.num_classes = num_classes

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        bottleneck: Dict[int, float] = {}
        for flow in active_flows:
            coflow_id = flow.coflow_id
            bottleneck[coflow_id] = max(
                bottleneck.get(coflow_id, 0.0), flow.remaining_bytes
            )
        ranked = sorted(bottleneck, key=lambda cid: (bottleneck[cid], cid))
        coflow_class = {
            coflow_id: min(rank, self.num_classes - 1)
            for rank, coflow_id in enumerate(ranked)
        }
        return AllocationRequest(
            mode=AllocationMode.SPQ,
            priorities={
                flow.flow_id: coflow_class[flow.coflow_id]
                for flow in active_flows
            },
            num_classes=self.num_classes,
        )
