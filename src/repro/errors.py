"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidJobError(ReproError):
    """A job, coflow, or flow definition is structurally invalid."""


class DagCycleError(InvalidJobError):
    """The coflow dependency graph of a job contains a cycle."""


class TopologyError(ReproError):
    """A network topology is invalid or a lookup into it failed."""


class RoutingError(ReproError):
    """No route could be computed between two hosts."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class SchedulerError(ReproError):
    """A scheduling policy was misused or misconfigured."""


class WorkloadError(ReproError):
    """A workload description or trace file is invalid."""


class TraceFormatError(WorkloadError):
    """A coflow trace file does not conform to the expected format."""
