"""Gurita: the paper's multi-stage coflow scheduler and its oracle variant."""

from repro.core.blocking import (
    beta,
    blocking_effect,
    coflow_psi_clairvoyant,
    coflow_psi_estimated,
    gamma_clairvoyant,
    gamma_estimated,
    job_stage_psi,
    psi_from_observation,
)
from repro.core.config import GuritaConfig
from repro.core.critical_path import (
    AvaCriticalPathEstimator,
    clairvoyant_critical_set,
)
from repro.core.flowtable import (
    CoflowStats,
    FlowRecord,
    FlowTable,
    five_tuple_for_flow,
    hash_five_tuple,
    jenkins_one_at_a_time,
)
from repro.core.gurita import GuritaScheduler
from repro.core.gurita_plus import GuritaPlusScheduler
from repro.core.head_receiver import CoflowDecision, HeadReceiver
from repro.core.receiver import (
    CoflowObservation,
    ObservationPlane,
    ReceiverAgent,
    ReceiverReport,
)

__all__ = [
    "AvaCriticalPathEstimator",
    "CoflowDecision",
    "CoflowObservation",
    "CoflowStats",
    "FlowRecord",
    "FlowTable",
    "GuritaConfig",
    "GuritaPlusScheduler",
    "GuritaScheduler",
    "HeadReceiver",
    "ObservationPlane",
    "ReceiverAgent",
    "ReceiverReport",
    "beta",
    "blocking_effect",
    "clairvoyant_critical_set",
    "coflow_psi_clairvoyant",
    "coflow_psi_estimated",
    "five_tuple_for_flow",
    "hash_five_tuple",
    "jenkins_one_at_a_time",
    "gamma_clairvoyant",
    "gamma_estimated",
    "job_stage_psi",
    "psi_from_observation",
]
