"""Command-line interface: run scenarios, figures, and trace tooling.

Examples::

    python -m repro info
    python -m repro scenario --structure tpcds --jobs 40 --arrival bursty
    python -m repro figure fig5 --jobs 40 --out fig5.json
    python -m repro trace --synthesize 200 --out /tmp/trace.txt
    python -m repro trace --stats /tmp/trace.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.experiments.common import ScenarioConfig, run_scenario
from repro.experiments.figures import (
    figure5_configs,
    figure6_config,
    figure7_config,
    figure8_config,
)
from repro.metrics.report import (
    format_category_table,
    format_improvement_row,
    format_jct_table,
)
from repro.metrics.serialize import comparison_to_dict, save_json
from repro.schedulers.registry import available_schedulers
from repro.workloads.fbtrace import parse_trace, synthesize_trace, write_trace
from repro.workloads.stats import format_trace_stats, trace_stats


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gurita (ICDCS 2019) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library, schedulers, and topology info")

    scenario = sub.add_parser("scenario", help="run one scenario")
    scenario.add_argument("--structure", default="fb-tao")
    scenario.add_argument("--jobs", type=int, default=40)
    scenario.add_argument(
        "--arrival", default="uniform",
        choices=["uniform", "poisson", "bursty", "simultaneous"],
    )
    scenario.add_argument("--seed", type=int, default=42)
    scenario.add_argument("--load", type=float, default=1.5)
    scenario.add_argument("--fattree-k", type=int, default=8)
    scenario.add_argument(
        "--schedulers",
        default="pfs,baraat,stream,aalo,gurita",
        help="comma-separated policy names",
    )
    scenario.add_argument("--out", help="write results JSON here")

    figure = sub.add_parser("figure", help="reproduce one paper figure")
    figure.add_argument(
        "name", choices=["fig5", "fig6", "fig7", "fig8"],
    )
    figure.add_argument("--structure", default="fb-tao")
    figure.add_argument("--jobs", type=int, default=None)
    figure.add_argument("--out", help="write results JSON here")

    trace = sub.add_parser("trace", help="trace tooling")
    trace.add_argument("--synthesize", type=int, metavar="N")
    trace.add_argument("--machines", type=int, default=3000)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", help="trace output path")
    trace.add_argument("--stats", metavar="PATH", help="summarise a trace file")

    return parser


def cmd_info() -> int:
    from repro.simulator.topology.fattree import FatTreeTopology

    print(f"repro {__version__} — Gurita (ICDCS 2019) reproduction")
    print(f"schedulers: {', '.join(available_schedulers())}")
    for k in (4, 8, 48):
        topo = FatTreeTopology(k=k)
        print(
            f"fattree k={k}: {topo.num_hosts} hosts, "
            f"{topo.num_switches} switches, {topo.num_links} directed links"
        )
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        name="cli",
        structure=args.structure,
        num_jobs=args.jobs,
        arrival_mode=args.arrival,
        seed=args.seed,
        offered_load=args.load,
        fattree_k=args.fattree_k,
    )
    schedulers = tuple(name.strip() for name in args.schedulers.split(","))
    outcome = run_scenario(config, schedulers=schedulers)
    print(format_jct_table(outcome.average_jcts()))
    # Surfaced when the run was invariant-checked (REPRO_INVARIANTS=1|strict).
    for name, result in outcome.results.items():
        if result.invariant_report is not None:
            print(f"{name}: {result.invariant_report.summary()}")
    if "gurita" in outcome.results and len(outcome.results) > 1:
        print()
        print(format_improvement_row("vs gurita", outcome.improvements_over()))
        print()
        print(
            format_category_table(
                outcome.category_improvements_over(),
                title="per-category improvement of gurita:",
            )
        )
    if args.out:
        path = save_json(comparison_to_dict(outcome.results), args.out)
        print(f"\nwrote {path}")
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    if args.name == "fig5":
        configs = figure5_configs(num_jobs=args.jobs or 40)
    elif args.name == "fig6":
        configs = [figure6_config(args.structure, num_jobs=args.jobs or 70)]
    elif args.name == "fig7":
        configs = [figure7_config(args.structure, num_jobs=args.jobs or 60)]
    else:
        configs = [figure8_config(args.structure, num_jobs=args.jobs or 70)]
    records = {}
    for config in configs:
        outcome = run_scenario(config)
        records[config.name] = comparison_to_dict(outcome.results)
        reference = "gurita" if "gurita" in outcome.results else None
        print(f"== {config.name}")
        print(format_jct_table(outcome.average_jcts()))
        if reference and len(outcome.results) > 1:
            print(
                format_category_table(
                    outcome.category_improvements_over(reference),
                    title=f"per-category improvement of {reference}:",
                )
            )
        print()
    if args.out:
        path = save_json(records, args.out)
        print(f"wrote {path}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    if args.stats:
        _machines, trace = parse_trace(args.stats)
        print(format_trace_stats(trace_stats(trace)))
        return 0
    if args.synthesize:
        trace = synthesize_trace(
            args.synthesize, num_machines=args.machines, seed=args.seed
        )
        print(format_trace_stats(trace_stats(trace)))
        if args.out:
            write_trace(args.out, trace, num_machines=args.machines)
            print(f"wrote {args.out}")
        return 0
    print("trace: pass --synthesize N or --stats PATH", file=sys.stderr)
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return cmd_info()
    if args.command == "scenario":
        return cmd_scenario(args)
    if args.command == "figure":
        return cmd_figure(args)
    if args.command == "trace":
        return cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
