"""Unit tests for the theory toolkit: Johnson, FFS-MJ, COSP, worked examples."""

import pytest

from repro.errors import ReproError
from repro.theory import (
    FIG2_PAPER_STAGE_AWARE_AVERAGE,
    FIG2_PAPER_TBS_AVERAGE,
    FIG4_PAPER_BLOCKING_AVERAGE,
    FIG4_PAPER_LEAST_BLOCKING_AVERAGE,
    CospJob,
    TwoMachineJob,
    brute_force_best,
    brute_force_best_order,
    brute_force_worst,
    figure2_averages,
    figure2_schedules,
    figure4_averages,
    figure4_instance,
    flow_shop_completion_times,
    flow_shop_makespan,
    johnson_order,
    permutation_completion_times,
    schedule_by_order,
    single_stage_instance,
    smallest_max_work_first,
    total_completion_time,
)
from repro.theory.examples import (
    FIG2_PAPER_STAGE_AWARE_JCTS,
    FIG2_PAPER_TBS_JCTS,
)


class TestJohnson:
    def test_textbook_instance(self):
        jobs = [
            TwoMachineJob(0, 3, 6),
            TwoMachineJob(1, 5, 2),
            TwoMachineJob(2, 1, 2),
        ]
        order = [j.job_id for j in johnson_order(jobs)]
        assert order == [2, 0, 1]

    def test_optimal_among_all_permutations(self):
        import itertools

        jobs = [
            TwoMachineJob(0, 4.0, 3.0),
            TwoMachineJob(1, 1.0, 2.0),
            TwoMachineJob(2, 5.0, 4.0),
            TwoMachineJob(3, 2.0, 6.0),
        ]
        best = min(
            flow_shop_makespan(perm)
            for perm in itertools.permutations(jobs)
        )
        assert flow_shop_makespan(johnson_order(jobs)) == pytest.approx(best)

    def test_completion_times_monotone(self):
        jobs = [TwoMachineJob(i, 1.0, 1.0) for i in range(4)]
        times = [t for _j, t in flow_shop_completion_times(jobs)]
        assert times == sorted(times)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TwoMachineJob(0, -1.0, 1.0)


class TestWorkedExamples:
    def test_figure2_matches_paper_exactly(self):
        tbs_avg, stage_avg = figure2_averages()
        assert tbs_avg == pytest.approx(FIG2_PAPER_TBS_AVERAGE)
        assert stage_avg == pytest.approx(FIG2_PAPER_STAGE_AWARE_AVERAGE)

    def test_figure2_per_job_jcts(self):
        schedules = figure2_schedules()
        assert schedules["tbs"].job_completion == pytest.approx(
            FIG2_PAPER_TBS_JCTS
        )
        assert schedules["stage-aware"].job_completion == pytest.approx(
            FIG2_PAPER_STAGE_AWARE_JCTS
        )

    def test_figure4_matches_paper_exactly(self):
        blocking, least = figure4_averages()
        assert blocking == pytest.approx(FIG4_PAPER_BLOCKING_AVERAGE)
        assert least == pytest.approx(FIG4_PAPER_LEAST_BLOCKING_AVERAGE)

    def test_figure4_least_blocking_is_brute_force_optimal(self):
        best = brute_force_best(figure4_instance())
        assert best.average_jct == pytest.approx(
            FIG4_PAPER_LEAST_BLOCKING_AVERAGE
        )


class TestExactSolver:
    def test_single_machine_sjf_is_optimal(self):
        instance = single_stage_instance([[3.0], [1.0], [2.0]])
        best = brute_force_best(instance)
        assert best.order == (1, 2, 0)  # shortest first
        assert best.total_jct == pytest.approx(1 + 3 + 6)

    def test_worst_is_reverse_sjf_on_single_machine(self):
        instance = single_stage_instance([[3.0], [1.0], [2.0]])
        worst = brute_force_worst(instance)
        assert worst.total_jct >= brute_force_best(instance).total_jct

    def test_order_must_cover_jobs(self):
        instance = single_stage_instance([[1.0], [2.0]])
        with pytest.raises(ReproError):
            schedule_by_order(instance, (0,))

    def test_brute_force_size_guard(self):
        instance = single_stage_instance([[1.0]] * 9)
        with pytest.raises(ReproError):
            brute_force_best(instance)

    def test_parallel_machines_used(self):
        instance = single_stage_instance([[4.0, 4.0]], machines=2)
        schedule = schedule_by_order(instance, (0,))
        assert schedule.makespan == pytest.approx(4.0)


class TestCosp:
    def test_permutation_completion(self):
        jobs = [CospJob(0, (2.0, 1.0)), CospJob(1, (1.0, 3.0))]
        completion = permutation_completion_times(jobs, (0, 1))
        assert completion[0] == pytest.approx(2.0)
        assert completion[1] == pytest.approx(4.0)

    def test_sebf_heuristic_close_to_optimal(self):
        jobs = [
            CospJob(0, (5.0, 1.0)),
            CospJob(1, (1.0, 1.0)),
            CospJob(2, (2.0, 4.0)),
        ]
        heuristic = total_completion_time(jobs, smallest_max_work_first(jobs))
        _best_order, best = brute_force_best_order(jobs)
        assert heuristic <= best * 1.5

    def test_brute_force_guard(self):
        jobs = [CospJob(i, (1.0,)) for i in range(9)]
        with pytest.raises(ReproError):
            brute_force_best_order(jobs)

    def test_mismatched_machine_counts_rejected(self):
        jobs = [CospJob(0, (1.0,)), CospJob(1, (1.0, 2.0))]
        with pytest.raises(ReproError):
            permutation_completion_times(jobs, (0, 1))
