"""Unit tests for runtime internals: epochs, ticks, counters, results."""

import math

import pytest

from repro.errors import SimulationError
from repro.jobs import single_stage_job
from repro.schedulers.pfs import PerFlowFairSharing
from repro.simulator.events import EventKind
from repro.simulator.runtime import CoflowSimulation, SimulationResult
from repro.simulator.topology.bigswitch import BigSwitchTopology

GB = 1e9


def make_sim(jobs):
    return CoflowSimulation(
        BigSwitchTopology(num_hosts=6, link_capacity=1.0 * GB),
        PerFlowFairSharing(),
        jobs,
    )


class TestJobBytesCounter:
    def test_counter_matches_ground_truth(self, ids):
        jobs = [
            single_stage_job([(0, 1, 0.5 * GB)], ids=ids),
            single_stage_job([(0, 2, 1.5 * GB)], arrival_time=0.2, ids=ids),
        ]
        sim = make_sim(jobs)
        sim.run()
        for job in jobs:
            assert sim._job_bytes[job.job_id] == pytest.approx(
                job.total_bytes, rel=1e-6
            )

    def test_counter_consistent_mid_run(self, ids):
        job = single_stage_job([(0, 1, 10.0 * GB)], ids=ids)
        sim = make_sim([job])
        sim.run(until=2.0)
        assert sim._job_bytes[job.job_id] == pytest.approx(
            job.bytes_sent, rel=1e-6
        )


class TestTimeTick:
    def test_tick_positive_and_scales_with_clock(self, ids):
        sim = make_sim([single_stage_job([(0, 1, 1.0)], ids=ids)])
        tick_at_zero = sim._time_tick()
        assert tick_at_zero > 0
        sim._now = 1e6
        assert sim._time_tick() > tick_at_zero
        assert sim._time_tick() >= math.ulp(1e6)

    def test_sub_resolution_flows_complete(self, ids):
        """A flow whose service time is below the clock's float resolution
        must still finish (regression test for the completion livelock)."""
        big = single_stage_job([(0, 1, 100.0 * GB)], ids=ids)
        # Tiny flow arriving late: remaining/rate << ulp(now).
        tiny = single_stage_job(
            [(2, 3, 2e-5 * GB)], arrival_time=50.0, ids=ids
        )
        sim = make_sim([big, tiny])
        result = sim.run()
        assert result.all_done
        assert result.events_processed < 10_000  # no livelock spin

    def test_time_never_goes_backwards(self, ids):
        sim = make_sim([single_stage_job([(0, 1, 1.0)], ids=ids)])
        sim._now = 5.0
        with pytest.raises(SimulationError):
            sim._advance_to(4.0)


class TestEpochInvalidation:
    def test_stale_completion_events_are_noops(self, ids):
        job = single_stage_job([(0, 1, 1.0 * GB)], ids=ids)
        sim = make_sim([job])
        # Schedule a bogus stale completion before running.
        sim._queue.push(0.5, EventKind.FLOW_COMPLETION, epoch=-1)
        result = sim.run()
        assert result.all_done
        assert job.completion_time() == pytest.approx(1.0, rel=1e-6)


class TestSimulationResult:
    def _completed_result(self, ids):
        job = single_stage_job([(0, 1, 1.0 * GB)], ids=ids)
        return make_sim([job]).run(), job

    def test_result_fields(self, ids):
        result, job = self._completed_result(ids)
        assert result.scheduler_name == "pfs"
        assert result.makespan == pytest.approx(1.0, rel=1e-6)
        assert result.all_done
        assert result.average_cct() == pytest.approx(1.0, rel=1e-6)

    def test_coflow_completion_times(self, ids):
        result, job = self._completed_result(ids)
        ccts = result.coflow_completion_times()
        assert set(ccts) == {c.coflow_id for c in job.coflows}

    def test_average_jct_requires_completions(self):
        result = SimulationResult(
            jobs=[], makespan=0.0, events_processed=0, reallocations=0,
            scheduler_name="x",
        )
        with pytest.raises(SimulationError):
            result.average_jct()


class _CountingPFS(PerFlowFairSharing):
    """PFS with an observable coordination-round counter."""

    def __init__(self, interval):
        super().__init__()
        self.update_interval = interval
        self.updates = 0

    def on_update(self, now):
        self.updates += 1
        return False


class TestZeroIntervalUpdates:
    def _run(self, interval, ids):
        scheduler = _CountingPFS(interval)
        jobs = [
            single_stage_job([(0, 1, 0.5 * GB)], ids=ids),
            single_stage_job([(0, 2, 1.0 * GB)], arrival_time=0.25, ids=ids),
        ]
        sim = CoflowSimulation(
            BigSwitchTopology(num_hosts=6, link_capacity=1.0 * GB),
            scheduler,
            jobs,
        )
        return sim.run(), scheduler

    def test_zero_interval_runs_a_round_every_batch(self, ids):
        """Regression: δ = 0.0 used to be truthiness-gated and silently
        disabled coordination rounds; it must mean "after every batch"."""
        result, scheduler = self._run(0.0, ids)
        assert result.all_done
        # Arrivals and completions each trigger a round: at least four.
        assert scheduler.updates >= 4

    def test_none_interval_disables_rounds(self, ids):
        result, scheduler = self._run(None, ids)
        assert result.all_done
        assert scheduler.updates == 0

    def test_positive_interval_is_event_scheduled(self, ids):
        result, scheduler = self._run(0.25, ids)
        assert result.all_done
        # Rounds fire at 0.25s spacing while jobs are in flight (~1.75s),
        # not once per event batch.
        assert 4 <= scheduler.updates <= 10

    def test_zero_interval_terminates_without_jobs_pending(self, ids):
        result, scheduler = self._run(0.0, ids)
        assert result.all_done  # no post-completion spin
        assert result.events_processed < 10_000


class TestBatchTolerance:
    def _reallocations(self, second_arrival, ids):
        jobs = [
            single_stage_job([(0, 1, 1.0 * GB)], arrival_time=1.0, ids=ids),
            single_stage_job(
                [(2, 3, 1.0 * GB)], arrival_time=second_arrival, ids=ids
            ),
        ]
        return make_sim(jobs).run()

    def test_near_coincident_arrivals_batch_together(self, ids):
        """Arrivals closer than the float-resolution tick must coalesce
        into one allocation epoch, same as exactly-equal timestamps."""
        exact = self._reallocations(1.0, ids)
        near = self._reallocations(1.0 + 4 * math.ulp(1.0), ids)
        assert near.reallocations == exact.reallocations
        assert near.all_done and exact.all_done

    def test_separated_arrivals_cost_an_extra_epoch(self, ids):
        batched = self._reallocations(1.0 + 4 * math.ulp(1.0), ids)
        split = self._reallocations(1.5, ids)
        assert split.reallocations > batched.reallocations


class TestEpochSkipping:
    def test_unchanged_rounds_skip_reallocation(self, ids):
        """A coordination round that reports no priority changes must not
        recompute rates; the dirty flag records a skipped epoch instead."""
        scheduler = _CountingPFS(0.1)
        job = single_stage_job([(0, 1, 1.0 * GB)], ids=ids)
        sim = CoflowSimulation(
            BigSwitchTopology(num_hosts=4, link_capacity=1.0 * GB),
            scheduler,
            [job],
        )
        result = sim.run()
        assert result.all_done
        assert scheduler.updates >= 8
        # Every pure-update batch was skipped (arrival + completion still
        # reallocate).
        assert result.epochs_skipped >= scheduler.updates - 2
        assert result.reallocations <= 3


class TestMaxEventsGuard:
    def test_runaway_simulation_raises(self, ids):
        job = single_stage_job([(0, 1, 1000.0 * GB)], ids=ids)
        sim = CoflowSimulation(
            BigSwitchTopology(num_hosts=4, link_capacity=1.0 * GB),
            PerFlowFairSharing(),
            [job],
            max_events=1,
        )
        with pytest.raises(SimulationError):
            sim.run()
