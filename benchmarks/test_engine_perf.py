"""Incremental allocation engine: rebuild savings at identical JCTs.

The engine's acceptance bench: across the scalability workloads it must
perform at least 2x fewer full link-membership rebuilds than the legacy
path, while every per-job completion time matches to 1e-9.  The smoke
variant is small enough for a CI minute.
"""

import time

from _util import bench_jobs

from repro.experiments.common import ScenarioConfig, build_jobs
from repro.experiments.figures import figure5_configs, figure6_config
from repro.schedulers.registry import make_scheduler
from repro.simulator.bandwidth.maxmin import (
    membership_rebuilds,
    reset_membership_rebuilds,
)
from repro.simulator.observability import allocation_counters
from repro.simulator.runtime import simulate
from repro.simulator.topology.fattree import FatTreeTopology

JCT_TOLERANCE = 1e-9


def _run_both(config, scheduler_name):
    """One workload through the legacy and engine paths; return both."""
    outcome = {}
    for use_engine in (False, True):
        topology = FatTreeTopology(k=config.fattree_k)
        jobs = build_jobs(config, topology.num_hosts)
        reset_membership_rebuilds()
        start = time.perf_counter()
        result = simulate(
            topology, make_scheduler(scheduler_name), jobs, use_engine=use_engine
        )
        elapsed = time.perf_counter() - start
        outcome[use_engine] = (result, membership_rebuilds(), elapsed)
    return outcome


def _assert_jct_parity(legacy_result, engine_result):
    legacy = {j.job_id: j.completion_time() for j in legacy_result.jobs}
    engine = {j.job_id: j.completion_time() for j in engine_result.jobs}
    assert engine.keys() == legacy.keys()
    worst = max(abs(engine[j] - legacy[j]) for j in legacy)
    assert worst <= JCT_TOLERANCE, f"JCT divergence {worst:.3e}"
    return worst


def _report_row(label, outcome):
    (legacy_result, legacy_rebuilds, legacy_s) = outcome[False]
    (engine_result, engine_rebuilds, engine_s) = outcome[True]
    worst = _assert_jct_parity(legacy_result, engine_result)
    counters = allocation_counters(engine_result)
    ratio = legacy_rebuilds / engine_rebuilds if engine_rebuilds else float("inf")
    print(
        f"  {label:24s} rebuilds {legacy_rebuilds:5d} -> {engine_rebuilds:3d} "
        f"({ratio:5.1f}x)  skip {counters.skip_fraction:4.0%}  "
        f"cache-hits {counters.cache_hits:4d}  rows {counters.rows_updated:5d}  "
        f"{legacy_s:5.2f}s -> {engine_s:5.2f}s  maxdiff {worst:.1e}"
    )
    return legacy_rebuilds, engine_rebuilds


def test_engine_smoke(run_once):
    """CI-sized check: >=2x fewer rebuilds, identical JCTs, under a minute."""

    def experiment():
        config = ScenarioConfig(
            name="engine-smoke", num_jobs=12, fattree_k=4, seed=11
        )
        return {
            name: _run_both(config, name) for name in ("pfs", "gurita")
        }

    outcomes = run_once(experiment)
    print("\nENGINE SMOKE  incremental vs full-rebuild allocation:")
    for name, outcome in outcomes.items():
        legacy_rebuilds, engine_rebuilds = _report_row(name, outcome)
        assert engine_rebuilds * 2 <= legacy_rebuilds


def test_engine_rebuild_savings_scalability(run_once):
    """The acceptance criterion on the scalability workloads."""

    def experiment():
        rows = {}
        for k, jobs_count in ((4, 20), (8, bench_jobs(40))):
            config = ScenarioConfig(
                name=f"engine-k{k}", num_jobs=jobs_count, fattree_k=k, seed=3
            )
            rows[f"k={k} jobs={jobs_count}"] = _run_both(config, "gurita")
        return rows

    rows = run_once(experiment)
    print("\nENGINE SCALABILITY  rebuild savings (gurita policy):")
    for label, outcome in rows.items():
        legacy_rebuilds, engine_rebuilds = _report_row(label, outcome)
        assert engine_rebuilds * 2 <= legacy_rebuilds


def test_engine_parity_on_paper_workloads(run_once):
    """Figures 5 and 6 workloads: engine JCTs match to 1e-9 everywhere."""

    def experiment():
        configs = [
            c.with_overrides(num_jobs=bench_jobs(24))
            for c in figure5_configs(seed=42)
        ] + [figure6_config("fb-tao", num_jobs=bench_jobs(30), seed=42)]
        rows = {}
        for config in configs:
            small = config.with_overrides(fattree_k=4)
            rows[config.name] = _run_both(small, "gurita")
        return rows

    rows = run_once(experiment)
    print("\nENGINE PARITY  paper workloads (gurita policy):")
    total_legacy = total_engine = 0
    for label, outcome in rows.items():
        legacy_rebuilds, engine_rebuilds = _report_row(label, outcome)
        total_legacy += legacy_rebuilds
        total_engine += engine_rebuilds
    assert total_engine * 2 <= total_legacy
