"""Integration tests for the experiment harness (tiny configurations)."""

import pytest

from repro.core.config import GuritaConfig
from repro.experiments import (
    ScenarioConfig,
    build_jobs,
    figure5_configs,
    figure6_config,
    figure7_config,
    figure8_config,
    run_gurita_variant,
    run_scenario,
    run_variants,
    starvation_variants,
    summarize,
)

TINY = dict(num_jobs=6, fattree_k=4, seed=5)


class TestScenario:
    def test_identical_workloads_across_policies(self):
        config = ScenarioConfig(**TINY)
        jobs_a = build_jobs(config, num_hosts=16)
        jobs_b = build_jobs(config, num_hosts=16)
        assert [j.total_bytes for j in jobs_a] == [j.total_bytes for j in jobs_b]
        assert [j.arrival_time for j in jobs_a] == [
            j.arrival_time for j in jobs_b
        ]

    def test_run_scenario_covers_requested_schedulers(self):
        config = ScenarioConfig(**TINY)
        outcome = run_scenario(config, schedulers=("pfs", "gurita"))
        assert set(outcome.results) == {"pfs", "gurita"}
        assert all(r.all_done for r in outcome.results.values())

    def test_improvements_relative_to_reference(self):
        config = ScenarioConfig(**TINY)
        outcome = run_scenario(config, schedulers=("pfs", "gurita"))
        factors = outcome.improvements_over("gurita")
        assert set(factors) == {"pfs"}
        assert factors["pfs"] == pytest.approx(
            outcome.results["pfs"].average_jct()
            / outcome.results["gurita"].average_jct()
        )

    def test_category_improvements_shape(self):
        config = ScenarioConfig(**TINY)
        outcome = run_scenario(config, schedulers=("pfs", "gurita"))
        table = outcome.category_improvements_over("gurita")
        assert "pfs" in table
        assert all(1 <= cat <= 7 for cat in table["pfs"])

    def test_with_overrides(self):
        config = ScenarioConfig().with_overrides(num_jobs=3, seed=9)
        assert config.num_jobs == 3 and config.seed == 9


class TestFigureConfigs:
    def test_figure5_has_four_scenarios(self):
        configs = figure5_configs(num_jobs=4)
        assert [c.name for c in configs] == ["FB-t", "CD-t", "FB-b", "CD-b"]
        assert {c.structure for c in configs} == {"fb-tao", "tpcds"}
        assert {c.arrival_mode for c in configs} == {"uniform", "bursty"}

    def test_figure6_and_7_structures(self):
        assert figure6_config("tpcds").structure == "tpcds"
        assert figure7_config("fb-tao").arrival_mode == "bursty"

    def test_figure7_full_scale_matches_paper(self):
        config = figure7_config("fb-tao", full_scale=True)
        assert config.fattree_k == 48
        assert config.num_jobs == 10_000

    def test_figure8_compares_gurita_to_oracle(self):
        assert figure8_config("fb-tao").schedulers == ("gurita", "gurita+")


class TestAblationHarness:
    def test_variant_runner(self):
        scenario = ScenarioConfig(**TINY)
        result = run_gurita_variant(scenario, GuritaConfig(num_classes=2))
        assert result.all_done

    def test_run_variants_and_summary(self):
        scenario = ScenarioConfig(**TINY)
        results = run_variants(scenario, starvation_variants())
        ranked = summarize(results)
        assert len(ranked) == 2
        assert ranked[0][1] <= ranked[1][1]
