"""Table 1 — the seven job-size categories.

Table 1 is the paper's bucketing of jobs by total bytes (6MB-80MB ...
>1TB).  This bench verifies the synthesized Facebook-like workload
actually spans the table — every per-category figure depends on it — and
prints the category census for the benchmark seed.
"""

from _util import bench_jobs

from repro.workloads.categories import (
    category_bounds,
    category_label,
    category_of,
)
from repro.workloads.generator import synthesize_workload


def test_table1_category_coverage(run_once):
    def census():
        jobs = synthesize_workload(
            num_jobs=max(bench_jobs(300), 200), num_hosts=128, seed=42
        )
        counts = {}
        for job in jobs:
            counts[category_of(job.total_bytes)] = (
                counts.get(category_of(job.total_bytes), 0) + 1
            )
        return counts

    counts = run_once(census)
    print("\nTABLE1  category census of the synthesized trace:")
    total = sum(counts.values())
    for category in sorted(counts):
        low, high = category_bounds(category)
        label = category_label(category)
        bound_text = (
            f"{low / 1e6:>8.0f}MB - {high / 1e6:>10.0f}MB"
            if high != float("inf")
            else f"{'> 1TB':>23s}"
        )
        print(
            f"  {label:>4s}  {bound_text}   {counts[category]:4d} jobs "
            f"({100.0 * counts[category] / total:4.1f}%)"
        )
    # The mixture must populate the small, middle, and elephant regimes.
    assert counts.get(1, 0) > 0 and counts.get(2, 0) > 0
    assert counts.get(3, 0) > 0
    assert sum(counts.get(cat, 0) for cat in (5, 6, 7)) > 0
    # Small jobs dominate by count (the trace's heavy tail is in bytes).
    assert counts[1] > total * 0.3
