"""The paper's worked examples (Figures 2 and 4) as FFS-MJ instances.

Figure 2 — why stage-agnostic TBS hurts: job A transmits 10, 1, 1, 1 units
over four dependent stages; single-stage jobs B, C, D transmit 2 units
each.  The paper reports average JCT 6.25 under TBS-SJF (scenario 1,
JCTs 19/2/2/2) versus 5.5 under per-stage scheduling (scenario 2,
JCTs 13/3/3/3).  The two scenarios are reconstructed here on the resource
layouts that realise the paper's exact arithmetic:

* scenario 1: one shared machine; B, C, D arrive at t = 0, 2, 4 and, being
  smaller by total bytes, all precede A — A waits out all six units;
* scenario 2: A's four stages each use their own machine; B, C, D arrive
  at t = 10, 11, 12 sharing the machine of A's stage i+1/i+2/i+3 — the
  stage-aware scheduler lets A's tiny late stages (1 unit < 2 units) run
  first, so A never stalls and B, C, D each wait one unit.

Figure 4 — Johnson's blocking insight: jobs A, B, C, D all carry 6 units.
A has three 2-unit coflows, each blocking one of B, C, D (which have two
3-unit coflows, one on a shared machine and one on a private machine).
Scheduling A first yields average JCT 4.25; letting the less-blocking
B, C, D go first yields 3.50 — exactly the paper's numbers.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.theory.exact import Schedule, schedule_by_order
from repro.theory.ffs import (
    FfsCoflow,
    FfsInstance,
    FfsJob,
    FfsOperation,
    chain_instance,
)

#: Figure 2 stage sizes: A is the 4-stage chain, B/C/D are single-stage.
FIG2_STAGE_SIZES = ((10.0, 1.0, 1.0, 1.0), (2.0,), (2.0,), (2.0,))

#: The averages the paper reports for Figure 2's two scenarios.
FIG2_PAPER_TBS_AVERAGE = 6.25
FIG2_PAPER_STAGE_AWARE_AVERAGE = 5.5

#: The per-job JCTs the paper reports for Figure 2.
FIG2_PAPER_TBS_JCTS = {0: 19.0, 1: 2.0, 2: 2.0, 3: 2.0}
FIG2_PAPER_STAGE_AWARE_JCTS = {0: 13.0, 1: 3.0, 2: 3.0, 3: 3.0}

#: The averages the paper reports for Figure 4's two scenarios.
FIG4_PAPER_BLOCKING_AVERAGE = 4.25
FIG4_PAPER_LEAST_BLOCKING_AVERAGE = 3.50


def figure2_tbs_instance() -> FfsInstance:
    """Scenario 1: one shared machine, B/C/D arriving at 0, 2, 4."""
    return chain_instance(
        FIG2_STAGE_SIZES,
        machines=1,
        release_times=(0.0, 0.0, 2.0, 4.0),
    )


def figure2_stage_aware_instance() -> FfsInstance:
    """Scenario 2: A's stages on machines 0..3; B/C/D share 1/2/3."""
    return chain_instance(
        FIG2_STAGE_SIZES,
        machines=1,
        release_times=(0.0, 10.0, 11.0, 12.0),
        layers_per_job=((0, 1, 2, 3), (1,), (2,), (3,)),
    )


def figure2_schedules() -> Dict[str, Schedule]:
    """Both scenarios, scheduled under their respective priority orders.

    Scenario 1 ranks by total bytes (B, C, D before A); scenario 2 ranks
    per stage, where A's active stage is always the smallest transfer on
    its machine, so A effectively leads.
    """
    return {
        "tbs": schedule_by_order(figure2_tbs_instance(), (1, 2, 3, 0)),
        "stage-aware": schedule_by_order(
            figure2_stage_aware_instance(), (0, 1, 2, 3)
        ),
    }


def figure2_averages() -> Tuple[float, float]:
    """(TBS average, stage-aware average) — the paper's 6.25 vs 5.5."""
    schedules = figure2_schedules()
    return (
        schedules["tbs"].average_jct,
        schedules["stage-aware"].average_jct,
    )


def figure4_instance() -> FfsInstance:
    """Figure 4 reconstructed on six unit-rate machines.

    Machines 0..2 are shared: A places one 2-unit coflow on each; B, C, D
    each place one 3-unit operation on their shared machine (0, 1, 2
    respectively) and one on a private machine (3, 4, 5).  All jobs carry
    6 units total, so TBS cannot tell them apart — blocking structure can.
    """
    job_a = FfsJob(
        job_id=0,
        coflows=tuple(
            FfsCoflow(coflow_id=i, operations=(FfsOperation(2.0, layer=i),))
            for i in range(3)
        ),
    )
    others = []
    for index in range(3):
        others.append(
            FfsJob(
                job_id=index + 1,
                coflows=(
                    FfsCoflow(
                        coflow_id=0,
                        operations=(
                            FfsOperation(3.0, layer=index),
                            FfsOperation(3.0, layer=index + 3),
                        ),
                    ),
                ),
            )
        )
    return FfsInstance(
        jobs=(job_a, *others),
        machines_per_layer={layer: 1 for layer in range(6)},
    )


def figure4_schedules() -> Dict[str, Schedule]:
    """Scenario 1 (A blocks everyone) vs scenario 2 (least blocking first)."""
    instance = figure4_instance()
    return {
        "blocking-first": schedule_by_order(instance, (0, 1, 2, 3)),
        "least-blocking-first": schedule_by_order(instance, (1, 2, 3, 0)),
    }


def figure4_averages() -> Tuple[float, float]:
    """(blocking-first average, least-blocking-first average) = (4.25, 3.5)."""
    schedules = figure4_schedules()
    return (
        schedules["blocking-first"].average_jct,
        schedules["least-blocking-first"].average_jct,
    )
