#!/usr/bin/env python3
"""Extending the library: write and evaluate your own scheduling policy.

Implements "SEBF-lite" — Varys-style Smallest Effective Bottleneck First,
ranking running coflows by their largest remaining flow — as a ~30-line
subclass of SchedulerPolicy, then races it against Gurita and PFS on the
same workload.  Use this as a template for your own policies: override the
hooks you need and return an AllocationRequest.

Run:  python examples/custom_scheduler.py
"""

from typing import List

from repro import FatTreeTopology, make_scheduler, simulate, synthesize_workload
from repro.jobs import Flow
from repro.schedulers.base import SchedulerPolicy
from repro.simulator.bandwidth.request import AllocationMode, AllocationRequest


class SebfLite(SchedulerPolicy):
    """Smallest Effective Bottleneck First (clairvoyant, coflow-level).

    Ranks running coflows by the remaining bytes of their largest flow —
    the coflow whose bottleneck clears soonest goes first — and maps the
    rank onto the switch priority queues.  This is the scheduling core of
    Varys, one of the TBS-family systems the paper discusses.
    """

    name = "sebf-lite"

    def __init__(self, num_classes: int = 8) -> None:
        super().__init__()
        self.num_classes = num_classes

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        assert self.context is not None
        bottleneck = {}
        for flow in active_flows:
            cid = flow.coflow_id
            bottleneck[cid] = max(bottleneck.get(cid, 0.0), flow.remaining_bytes)
        ranked = sorted(bottleneck, key=lambda cid: (bottleneck[cid], cid))
        coflow_class = {
            cid: min(rank, self.num_classes - 1)
            for rank, cid in enumerate(ranked)
        }
        return AllocationRequest(
            mode=AllocationMode.SPQ,
            priorities={
                f.flow_id: coflow_class[f.coflow_id] for f in active_flows
            },
            num_classes=self.num_classes,
        )


def main() -> None:
    contenders = [SebfLite(), make_scheduler("gurita"), make_scheduler("pfs")]
    print("Racing sebf-lite vs gurita vs pfs on an identical workload...\n")
    results = {}
    for scheduler in contenders:
        topology = FatTreeTopology(k=8)
        jobs = synthesize_workload(
            num_jobs=30, num_hosts=topology.num_hosts, structure="tpcds", seed=21
        )
        results[scheduler.name] = simulate(topology, scheduler, jobs)

    for name, result in sorted(
        results.items(), key=lambda kv: kv[1].average_jct()
    ):
        print(f"  {name:10s} average JCT {result.average_jct():8.4f}s")
    print(
        "\nNote: sebf-lite is clairvoyant (it reads remaining flow sizes), "
        "yet stage-aware Gurita stays competitive without any such oracle."
    )


if __name__ == "__main__":
    main()
