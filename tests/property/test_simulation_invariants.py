"""Property-based end-to-end tests: simulator invariants on random workloads.

These run full simulations on randomly generated multi-stage workloads and
check the physical invariants that must hold regardless of the policy:
dependency order, conservation of volume, completeness, determinism.
"""

from hypothesis import given, settings, strategies as st

from repro.jobs import IdAllocator, JobBuilder
from repro.schedulers.registry import make_scheduler
from repro.simulator.runtime import simulate
from repro.simulator.topology.bigswitch import BigSwitchTopology

HOSTS = 6
POLICIES = ["pfs", "baraat", "stream", "aalo", "gurita", "gurita+"]


@st.composite
def workloads(draw):
    """1-4 jobs, each a small random DAG of coflows with tiny flows."""
    ids = IdAllocator()
    num_jobs = draw(st.integers(min_value=1, max_value=4))
    jobs = []
    for _ in range(num_jobs):
        arrival = draw(st.floats(min_value=0.0, max_value=0.5))
        builder = JobBuilder(arrival_time=arrival, ids=ids)
        num_coflows = draw(st.integers(min_value=1, max_value=4))
        added = []
        for index in range(num_coflows):
            num_flows = draw(st.integers(min_value=1, max_value=3))
            specs = []
            for _f in range(num_flows):
                src = draw(st.integers(min_value=0, max_value=HOSTS - 1))
                dst = draw(st.integers(min_value=0, max_value=HOSTS - 1))
                if dst == src:
                    dst = (dst + 1) % HOSTS
                size = draw(st.floats(min_value=1e5, max_value=5e8))
                specs.append((src, dst, size))
            max_deps = min(2, index)
            num_deps = draw(st.integers(min_value=0, max_value=max_deps))
            deps = draw(
                st.lists(
                    st.sampled_from(added) if added else st.nothing(),
                    min_size=num_deps,
                    max_size=num_deps,
                    unique=True,
                )
            ) if added and num_deps else []
            added.append(builder.add_coflow(specs, depends_on=deps))
        jobs.append(builder.build())
    return jobs


def rebuild(jobs_blueprint):
    """Deep-copy a workload by reconstructing it (jobs are mutable)."""
    ids = IdAllocator()
    out = []
    for job in jobs_blueprint:
        builder = JobBuilder(arrival_time=job.arrival_time, ids=ids)
        mapping = {}
        for cid in job.dag.topological_order():
            coflow = job.coflow(cid)
            specs = [(f.src, f.dst, f.size_bytes) for f in coflow.flows]
            deps = [mapping[d] for d in job.dag.dependencies_of(cid)]
            mapping[cid] = builder.add_coflow(specs, depends_on=deps)
        out.append(builder.build())
    return out


@given(workloads(), st.sampled_from(POLICIES))
@settings(max_examples=60, deadline=None)
def test_everything_completes_in_dependency_order(blueprint, policy):
    jobs = rebuild(blueprint)
    topology = BigSwitchTopology(num_hosts=HOSTS, link_capacity=1e9)
    result = simulate(topology, make_scheduler(policy), jobs)
    assert result.all_done
    for job in result.jobs:
        assert job.completion_time() is not None
        assert job.completion_time() >= 0.0
        for coflow in job.coflows:
            # Released only after every dependency completed.
            for dep in job.dag.dependencies_of(coflow.coflow_id):
                dep_coflow = job.coflow(dep)
                assert dep_coflow.finish_time <= coflow.release_time + 1e-9
            # Flows fully drained, finish after start.
            for flow in coflow.flows:
                assert flow.remaining_bytes == 0.0
                assert flow.finish_time >= flow.start_time
            assert coflow.finish_time >= coflow.release_time
        # Job completion equals its last coflow's completion.
        assert job.finish_time == max(c.finish_time for c in job.coflows)


@given(workloads(), st.sampled_from(POLICIES))
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic(blueprint, policy):
    topology = BigSwitchTopology(num_hosts=HOSTS, link_capacity=1e9)
    first = simulate(topology, make_scheduler(policy), rebuild(blueprint))
    second = simulate(topology, make_scheduler(policy), rebuild(blueprint))
    assert first.job_completion_times() == second.job_completion_times()
    assert first.events_processed == second.events_processed


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_jct_lower_bound_service_time(blueprint):
    """No policy can beat the volume/bandwidth lower bound: a job's JCT is
    at least its critical path's serial service time at line rate."""
    from repro.jobs.paths import critical_path

    jobs = rebuild(blueprint)
    topology = BigSwitchTopology(num_hosts=HOSTS, link_capacity=1e9)
    result = simulate(topology, make_scheduler("pfs"), jobs)
    for job in result.jobs:
        def stage_time(coflow_id):
            return job.coflow(coflow_id).max_flow_bytes / 1e9

        _path, bound = critical_path(job.dag, stage_time)
        assert job.completion_time() >= bound * (1 - 1e-9)
