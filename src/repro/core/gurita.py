"""Gurita — Least Blocking Effect First scheduling of multi-stage jobs.

This is the practical scheduler of paper §IV.B ("from concept to
practice"): no central controller, no prior knowledge of job structure or
flow sizes.  Per job, a head receiver aggregates receiver-side observations
every δ seconds and demotes coflows through exponentially spaced priority
thresholds according to the *estimated per-stage blocking effect* Ψ̈_J(s)
(Algorithm 1, LBEF).

Priority-change semantics follow the paper's TCP-reordering rule:

* a **newly released flow** starts at the highest priority (job information
  is unknown a priori) unless its job was already demoted, in which case it
  inherits the job's current class;
* a **demotion** (new class worse than old) applies immediately to all
  existing flows of the coflow;
* a **promotion** (new class better) applies only to flows released later —
  in-flight flows keep transmitting at their old priority, so packets never
  overtake within a flow.

Enforcement uses WRR-emulated SPQ by default (starvation mitigation);
see :mod:`repro.core.starvation`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.core.config import GuritaConfig
from repro.core.critical_path import AvaCriticalPathEstimator
from repro.core.head_receiver import HeadReceiver
from repro.core.receiver import ObservationPlane
from repro.core.starvation import build_request
from repro.jobs.coflow import Coflow, CoflowState
from repro.jobs.flow import Flow
from repro.jobs.job import Job
from repro.schedulers.base import SchedulerPolicy
from repro.simulator.bandwidth.request import AllocationRequest


class GuritaScheduler(SchedulerPolicy):
    """The paper's contribution: decentralized LBEF over estimated Ψ̈."""

    name = "gurita"
    #: release/demotion class changes are noted precisely, so the
    #: incremental engine moves only the affected flows between classes.
    reports_priority_deltas = True

    def __init__(self, config: Optional[GuritaConfig] = None) -> None:
        super().__init__()
        self.config = config if config is not None else GuritaConfig()
        self.update_interval = self.config.update_interval
        self._estimator = AvaCriticalPathEstimator(
            max_marks_per_job=self.config.critical_path_marks
        )
        #: deployment-shaped per-receiver flow tables (optional path)
        self._plane = ObservationPlane() if self.config.use_flow_tables else None
        self._head_receivers: Dict[int, HeadReceiver] = {}
        #: class newly released flows of a coflow will receive
        self._coflow_class: Dict[int, int] = {}
        #: latest decided class per job (worst across its running stages)
        self._job_class: Dict[int, int] = {}
        #: sticky per-flow class (set at release, demoted by updates)
        self._flow_class: Dict[int, int] = {}
        #: degraded-operation state (fault injection)
        self._crashed_hosts: FrozenSet[int] = frozenset()
        #: consecutive δ-rounds each job's HR has been unreachable
        self._hr_down_rounds: Dict[int, int] = {}
        #: last round whose HR sync actually reached the receivers
        self._last_sync_time: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def on_job_arrival(self, job: Job, now: float) -> None:
        self._head_receivers[job.job_id] = HeadReceiver(job, self.config)
        self._job_class[job.job_id] = 0

    def on_coflow_release(self, coflow: Coflow, now: float) -> None:
        # "Newly-arriving flows of a coflow are automatically assigned the
        # highest priority and are allowed to transmit at that priority
        # until a threshold is exceeded or an update is received from HR"
        # (paper §IV.B) — *unless* the HR already demoted the job, in which
        # case new flows inherit the job's current class (the demotion
        # rule; starting over at the top queue would let every new stage of
        # an already-demoted job cut the line until the next δ-round).
        # This is still stage-sensitive: the next δ-round re-evaluates the
        # stage's own blocking effect and promotes future flows if light.
        inherited = self._job_class.get(coflow.job_id, 0)
        self._coflow_class[coflow.coflow_id] = inherited
        for flow in coflow.flows:
            self._flow_class[flow.flow_id] = inherited
            self._note_priority_change(flow.flow_id)
        if self._plane is not None:
            self._plane.on_coflow_release(coflow)

    def on_flow_finish(self, flow: Flow, now: float) -> None:
        self._flow_class.pop(flow.flow_id, None)
        if self._plane is not None:
            self._plane.on_flow_finish(flow)

    def on_coflow_finish(self, coflow: Coflow, now: float) -> None:
        self._coflow_class.pop(coflow.coflow_id, None)
        if self._plane is not None:
            self._plane.on_coflow_finish(coflow)
        # Keep the job class honest: it is the worst class across *running*
        # stages, so a finished stage's demotion must not leak into stages
        # released after it (that would reintroduce Aalo's history
        # punishment and break the paper's stage-sensitivity claim).
        if coflow.job_id in self._job_class:
            assert self.context is not None
            self._job_class[coflow.job_id] = max(
                (
                    self._coflow_class[c.coflow_id]
                    for c in self.context.job(coflow.job_id).coflows
                    if c.coflow_id in self._coflow_class
                ),
                default=0,
            )

    def on_job_finish(self, job: Job, now: float) -> None:
        # HR excludes completed jobs from all further rounds.
        self._head_receivers.pop(job.job_id, None)
        self._job_class.pop(job.job_id, None)
        self._estimator.forget_job(job.job_id)

    # ------------------------------------------------------------------
    # The δ-spaced coordination round
    # ------------------------------------------------------------------
    def on_update(self, now: float) -> bool:
        assert self.context is not None
        self._last_sync_time = now
        changed = False
        for job_id, head_receiver in self._head_receivers.items():
            if not self._hr_reachable(job_id, head_receiver):
                # HR host crashed and the failover quorum has not been
                # reached: this job's receivers keep their stale classes
                # (local scheduling continues; no blocking).
                continue
            observations = None
            if self._plane is not None:
                running = [
                    coflow
                    for coflow in head_receiver.job.coflows
                    if coflow.state is CoflowState.RUNNING
                ]
                self._plane.sync_bytes(
                    flow for coflow in running for flow in coflow.flows
                )
                observations = self._plane.observe_coflows(
                    coflow.coflow_id for coflow in running
                )
            decisions = head_receiver.decide(self._estimator, observations)
            if not decisions:
                continue
            self._job_class[job_id] = max(d.priority_class for d in decisions)
            for decision in decisions:
                changed = (
                    self._apply_decision(decision.coflow_id, decision.priority_class)
                    or changed
                )
        return changed

    def _hr_reachable(self, job_id: int, head_receiver: HeadReceiver) -> bool:
        """Is the job's HR alive (electing a stand-in when it is not)?

        A crashed HR host is tolerated for ``hr_failover_rounds`` δ-rounds
        (the job's receivers schedule on stale Ψ̈ meanwhile); then the
        peers elect the lowest-numbered alive receiver host as the new HR
        and coordination resumes.
        """
        if head_receiver.hr_host not in self._crashed_hosts:
            self._hr_down_rounds.pop(job_id, None)
            return True
        rounds = self._hr_down_rounds.get(job_id, 0) + 1
        self._hr_down_rounds[job_id] = rounds
        if rounds < self.config.hr_failover_rounds:
            return False
        elected = head_receiver.elect_new_head(self._crashed_hosts)
        if elected is None:
            return False  # every receiver host is down; retry next round
        self._hr_down_rounds.pop(job_id, None)
        return True

    # ------------------------------------------------------------------
    # Degraded operation (fault injection)
    # ------------------------------------------------------------------
    def on_sync_degraded(self, now: float) -> bool:
        """An HR sync was dropped or delayed.

        Receivers continue on their stale Ψ̈-derived classes (never
        block).  With ``stale_psi_bound`` configured and exceeded, they
        stop trusting the stale view entirely and fall back to the local
        no-information prior — every flow back at the highest priority,
        exactly how newly released flows are treated before their first
        HR update.
        """
        bound = self.config.stale_psi_bound
        if bound is None:
            return False
        last = self._last_sync_time
        if last is not None and now - last <= bound:
            return False
        changed = False
        for flow_id in sorted(self._flow_class):
            if self._flow_class[flow_id] != 0:
                self._flow_class[flow_id] = 0
                self._note_priority_change(flow_id)
                changed = True
        for coflow_id in self._coflow_class:
            self._coflow_class[coflow_id] = 0
        for job_id in self._job_class:
            self._job_class[job_id] = 0
        return changed

    def on_hosts_changed(self, crashed: FrozenSet[int], now: float) -> None:
        self._crashed_hosts = crashed
        # Recoveries may have brought original HR hosts back; reachability
        # (and any pending election) is re-evaluated at the next δ-round.

    def on_flow_restart(self, flow: Flow, now: float) -> None:
        """Restart-from-zero: the receiver's byte accounting starts over."""
        if self._plane is not None:
            self._plane.on_flow_restart(flow)

    def _apply_decision(self, coflow_id: int, new_class: int) -> bool:
        """Demotions hit existing flows; promotions only future ones.

        Returns True if any in-flight flow's priority actually changed.
        """
        assert self.context is not None
        old_class = self._coflow_class.get(coflow_id, 0)
        self._coflow_class[coflow_id] = new_class
        changed = False
        if new_class > old_class:
            for flow in self.context.coflow(coflow_id).flows:
                if flow.is_active and self._flow_class.get(flow.flow_id, 0) < new_class:
                    self._flow_class[flow.flow_id] = new_class
                    self._note_priority_change(flow.flow_id)
                    changed = True
        return changed

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        priorities = {
            flow.flow_id: self._flow_class.get(flow.flow_id, 0)
            for flow in active_flows
        }
        return build_request(self.config, priorities)
