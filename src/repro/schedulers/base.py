"""Scheduling-policy interface.

A :class:`SchedulerPolicy` observes the lifecycle of jobs/coflows/flows via
hooks and, whenever the runtime reallocates bandwidth, answers with an
:class:`~repro.simulator.bandwidth.request.AllocationRequest` (allocation
mode + per-flow priority classes).  Policies never touch rates directly —
that separation mirrors the paper's deployment story, where schedulers only
set DSCP bits and switches enforce them.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, FrozenSet, List, Optional, Set

from repro.jobs.coflow import Coflow
from repro.jobs.flow import Flow
from repro.jobs.job import Job
from repro.schedulers.context import SchedulerContext
from repro.simulator.bandwidth.request import AllocationRequest

__all__ = ["SchedulerContext", "SchedulerPolicy"]


class SchedulerPolicy(abc.ABC):
    """Base class for all scheduling policies.

    Subclasses override the hooks they care about; every hook has a no-op
    default.  ``update_interval`` (seconds), when set, makes the runtime
    call :meth:`on_update` periodically — this models coordination rounds
    such as Gurita's head-receiver updates (interval δ) or Aalo's
    coordinator epochs.
    """

    #: Human-readable policy name (used in reports and benchmarks).
    name: str = "base"
    #: Seconds between periodic :meth:`on_update` calls; None disables
    #: them, 0.0 means a coordination round after *every* event batch.
    update_interval: Optional[float] = None
    #: Set True by subclasses that report precise per-flow priority deltas
    #: via :meth:`_note_priority_change`; the incremental allocation engine
    #: then moves only the reported flows between priority classes instead
    #: of diffing the full priority map each round.
    reports_priority_deltas: bool = False

    def __init__(self) -> None:
        self.context: Optional[SchedulerContext] = None
        self._priority_delta: Set[int] = set()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, context: SchedulerContext) -> None:
        """Called once by the runtime before the simulation starts."""
        self.context = context

    # ------------------------------------------------------------------
    # Priority-delta reporting (consumed by the incremental engine)
    # ------------------------------------------------------------------
    def _note_priority_change(self, flow_id: int) -> None:
        """Record that ``flow_id``'s priority class changed (or was first
        assigned) since the last allocation round.

        Only meaningful for subclasses with ``reports_priority_deltas``
        set; a policy that opts in MUST note *every* class change it makes,
        or the engine will reuse stale class memberships.
        """
        self._priority_delta.add(flow_id)

    def consume_priority_delta(self) -> Optional[FrozenSet[int]]:
        """Flows whose priority class changed since the last call.

        Returns ``None`` when the policy does not track deltas (the engine
        falls back to a full diff of the priority map), otherwise the —
        possibly empty — changed-flow set.  Calling this clears the
        accumulator; the runtime consumes it once per reallocation.
        """
        if not self.reports_priority_deltas:
            self._priority_delta.clear()
            return None
        delta = frozenset(self._priority_delta)
        self._priority_delta.clear()
        return delta

    # ------------------------------------------------------------------
    # Checkpoint contract
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Capture the policy's complete mutable state for a checkpoint.

        The default covers every policy in the tree: a shallow copy of
        ``__dict__`` (policies keep all mutable state in instance
        attributes — priority maps, virtual clocks, head-receiver
        tables, the bound context).  The payload is pickled as part of
        one simulator-wide object graph, so references into shared
        runtime structures (the context's job/coflow/flow dicts) are
        preserved as *references*, not copies.

        Override only if the policy holds unpicklable state; the parity
        suite asserts restore-then-run is bit-identical for every
        registered scheduler.
        """
        return {"class": type(self).__name__, "attrs": dict(self.__dict__)}

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot_state` (same concrete class only)."""
        from repro.errors import CheckpointError

        if state.get("class") != type(self).__name__:
            raise CheckpointError(
                f"scheduler snapshot is for {state.get('class')!r}, "
                f"cannot restore into {type(self).__name__!r}"
            )
        self.__dict__.update(state["attrs"])

    # ------------------------------------------------------------------
    # Lifecycle hooks (all optional)
    # ------------------------------------------------------------------
    def on_job_arrival(self, job: Job, now: float) -> None:
        """A job arrived; its leaf coflows are about to be released."""

    def on_coflow_release(self, coflow: Coflow, now: float) -> None:
        """A coflow's dependencies completed; its flows just became active."""

    def on_flow_finish(self, flow: Flow, now: float) -> None:
        """A flow delivered its last byte."""

    def on_coflow_finish(self, coflow: Coflow, now: float) -> None:
        """Every flow of the coflow completed."""

    def on_job_finish(self, job: Job, now: float) -> None:
        """Every coflow of the job completed."""

    def on_update(self, now: float) -> Optional[bool]:
        """Periodic coordination round (only if ``update_interval`` set).

        May return ``False`` to tell the runtime that no priority changed,
        letting it skip the (expensive) rate recomputation; returning
        ``True`` or ``None`` forces a reallocation.
        """
        return None

    # ------------------------------------------------------------------
    # Degraded-operation hooks (fault injection; all optional)
    # ------------------------------------------------------------------
    def on_sync_degraded(self, now: float) -> Optional[bool]:
        """A coordination round was dropped or delayed by a fault.

        Called *instead of* :meth:`on_update` for that round.  The default
        — do nothing — is the paper's graceful-degradation baseline:
        receivers keep scheduling on their last-synced (stale) priority
        view rather than blocking.  Policies with a staleness bound may
        adjust priorities locally and return ``True`` to force a
        reallocation; ``False``/``None`` skip it.
        """
        return False

    def on_hosts_changed(self, crashed: FrozenSet[int], now: float) -> None:
        """The set of crashed hosts changed (a crash or a recovery).

        ``crashed`` is the complete current set, not a delta.  Policies
        with host-resident components (e.g. Gurita's head receivers) use
        this to trigger failover elections.
        """

    def on_flow_restart(self, flow: Flow, now: float) -> None:
        """A host crash aborted ``flow`` under the restart-from-zero
        policy: its delivered bytes were discarded.  Policies keeping
        receiver-side byte accounting must reset it here."""

    # ------------------------------------------------------------------
    # The one mandatory method
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        """Return the bandwidth-division instructions for this round."""
