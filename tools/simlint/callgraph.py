"""Whole-program module/function/call-graph model for ``simlint --deep``.

The per-file rules (SIM001-SIM006) are statement-local; the deep analyzer
needs to see *across* files: which module a name was imported from, which
function a call resolves to, and which class an attribute holds.  This
module builds that picture:

* :class:`ModuleInfo` — one parsed file with its import table, functions
  (including methods), classes, and module-level globals;
* :class:`Project` — every module under the linted roots, with name
  resolution that follows ``from x import y`` chains across modules
  (including package ``__init__`` re-exports) and a best-effort call
  resolver used by both the taint engine and the worker-purity rule.

Resolution is *textual*: a resolved target is a dotted string such as
``repro.experiments.parallel.run_grid`` or ``time.perf_counter``.  Names
that resolve outside the project (stdlib, third-party) keep their dotted
form, which is exactly what the taint source tables match against.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Constructors whose module-level result is a mutable container.
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "extend",
        "insert",
        "sort",
        "reverse",
    }
)


def dotted_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def module_name_for(path: Path) -> str:
    """Dotted module name, found by walking up through ``__init__.py``."""
    if path.name == "__init__.py":
        parts: List[str] = []
        parent = path.parent
    else:
        parts = [path.stem]
        parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # a bare __init__.py with no package parent
        parts = [path.parent.name]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    module: str
    qualname: str  #: ``"run_grid"`` or ``"EventQueue.push"``
    node: ast.AST  #: FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  #: enclosing class name, if a method

    @property
    def full_name(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    @property
    def params(self) -> List[str]:
        args = self.node.args  # type: ignore[attr-defined]
        names = [a.arg for a in getattr(args, "posonlyargs", [])]
        names += [a.arg for a in args.args]
        names += [a.arg for a in args.kwonlyargs]
        return names

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ClassInfo:
    """One class definition with its methods and inferred attribute types."""

    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> full class name, inferred from ``self.x = Ctor()``
    #: assignments and annotated class-body fields.
    attr_types: Dict[str, str] = field(default_factory=dict)
    base_names: Tuple[str, ...] = ()

    @property
    def full_name(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """One parsed source file and its name-resolution tables."""

    name: str
    path: str
    source: str
    tree: ast.Module
    #: local name -> dotted import target ("np" -> "numpy",
    #: "run_grid" -> "repro.experiments.parallel.run_grid")
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level names bound to mutable containers -> lineno
    mutable_globals: Dict[str, int] = field(default_factory=dict)
    #: every module-level assigned name (constants included)
    global_names: Set[str] = field(default_factory=set)


def _collect_imports(module: str, tree: ast.Module, is_package: bool) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname:
                    imports[item.asname] = item.name
                else:
                    root = item.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                components = module.split(".")
                if not is_package:
                    components = components[:-1]
                drop = node.level - 1
                if drop:
                    components = components[: len(components) - drop]
                base = ".".join(components)
                target = f"{base}.{node.module}" if node.module else base
            else:
                target = node.module or ""
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                imports[local] = f"{target}.{item.name}" if target else item.name
    return imports


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        parts = dotted_name(node.func)
        return bool(parts) and parts[-1] in MUTABLE_CONSTRUCTORS
    return False


def parse_module(path: Path, source: Optional[str] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises SyntaxError)."""
    text = source if source is not None else path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    name = module_name_for(path)
    info = ModuleInfo(
        name=name,
        path=path.as_posix(),
        source=text,
        tree=tree,
        imports=_collect_imports(name, tree, path.name == "__init__.py"),
    )

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = FunctionInfo(
                module=name, qualname=stmt.name, node=stmt
            )
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassInfo(
                module=name,
                name=stmt.name,
                node=stmt,
                base_names=tuple(
                    ".".join(parts)
                    for base in stmt.bases
                    if (parts := dotted_name(base)) is not None
                ),
            )
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method = FunctionInfo(
                        module=name,
                        qualname=f"{stmt.name}.{sub.name}",
                        node=sub,
                        cls=stmt.name,
                    )
                    cls.methods[sub.name] = method
                    info.functions[method.qualname] = method
                elif isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    parts = dotted_name(sub.annotation)
                    if parts is not None:
                        cls.attr_types[sub.target.id] = ".".join(parts)
            info.classes[stmt.name] = cls
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.global_names.add(target.id)
                    if _is_mutable_value(stmt.value):
                        info.mutable_globals[target.id] = stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.global_names.add(stmt.target.id)
            if stmt.value is not None and _is_mutable_value(stmt.value):
                info.mutable_globals[stmt.target.id] = stmt.lineno
    return info


class Project:
    """Every module under the linted roots, with cross-module resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for mod in modules:
            for func in mod.functions.values():
                self.functions[func.full_name] = func
            for cls in mod.classes.values():
                self.classes[cls.full_name] = cls
        self._infer_attr_types()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _infer_attr_types(self) -> None:
        """Record ``self.x = Ctor()`` attribute types for every class."""
        for cls in self.classes.values():
            mod = self.modules[cls.module]
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not isinstance(node.value, ast.Call):
                        continue
                    ctor = self.resolve_expr(node.value.func, mod)
                    if ctor is None or ctor not in self.classes:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            cls.attr_types.setdefault(target.attr, ctor)
            # Resolve annotated class-body fields to full class names.
            for attr, annotation in list(cls.attr_types.items()):
                if annotation in self.classes:
                    continue
                resolved = self.resolve_dotted(annotation, mod)
                if resolved is not None:
                    cls.attr_types[attr] = resolved

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve_export(self, dotted: str, _seen: Optional[Set[str]] = None) -> str:
        """Follow re-export chains: ``pkg.name`` -> its defining module.

        ``repro.experiments.run_grid`` resolves through the package
        ``__init__``'s ``from .parallel import run_grid`` to
        ``repro.experiments.parallel.run_grid``.  Unknown names are
        returned unchanged.
        """
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return dotted
        seen.add(dotted)
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # Longest module prefix + remaining attribute chain.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            mod = self.modules.get(prefix)
            if mod is None:
                continue
            rest = parts[cut:]
            head = rest[0]
            if head in mod.imports:
                target = ".".join([mod.imports[head], *rest[1:]])
                return self.resolve_export(target, seen)
            candidate = ".".join([prefix, *rest])
            if candidate in self.functions or candidate in self.classes:
                return candidate
            return dotted
        return dotted

    def resolve_dotted(self, dotted: str, mod: ModuleInfo) -> Optional[str]:
        """Resolve a dotted name as written inside ``mod``."""
        parts = dotted.split(".")
        head = parts[0]
        if head in mod.imports:
            return self.resolve_export(".".join([mod.imports[head], *parts[1:]]))
        if head in mod.functions or head in mod.classes:
            return self.resolve_export(".".join([mod.name, *parts]))
        return None

    def resolve_expr(
        self,
        node: ast.AST,
        mod: ModuleInfo,
        cls: Optional[ClassInfo] = None,
        local_types: Optional[Dict[str, str]] = None,
    ) -> Optional[str]:
        """Resolve a name/attribute expression to a dotted target.

        Handles plain names, imported names, ``self.method`` /
        ``self.attr.method`` through inferred attribute types, and
        ``local.method`` when the local's class is known.  Returns a
        dotted string (project-internal or external) or ``None``.
        """
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Call):
            # Method on a fresh instance: ``Ctor().method`` resolves
            # through the constructed class.
            ctor = self.resolve_expr(
                node.value.func, mod, cls=cls, local_types=local_types
            )
            if ctor is not None and ctor in self.classes:
                return self._resolve_on_class(ctor, (node.attr,))
            return None
        parts = dotted_name(node)
        if parts is None:
            return None
        head = parts[0]
        rest = parts[1:]

        if head == "self" and cls is not None:
            if not rest:
                return None
            attr = rest[0]
            if attr in cls.methods:
                return f"{cls.full_name}.{attr}"
            attr_type = cls.attr_types.get(attr)
            if attr_type is not None:
                return self._resolve_on_class(attr_type, rest[1:])
            return None

        if local_types and head in local_types:
            return self._resolve_on_class(local_types[head], rest)

        if head in mod.imports:
            return self.resolve_export(".".join([mod.imports[head], *rest]))
        if head in mod.functions or head in mod.classes:
            return self.resolve_export(".".join([mod.name, head, *rest]))
        if head in mod.global_names:
            return None
        if not rest:
            # Unshadowed bare name: treat as a builtin reference.
            return f"builtins.{head}"
        return None

    def _resolve_on_class(self, class_name: str, attrs: Tuple[str, ...]) -> Optional[str]:
        if not attrs:
            return class_name
        cls = self.classes.get(class_name)
        current = class_name
        for i, attr in enumerate(attrs):
            if cls is None:
                return ".".join([current, *attrs[i:]])
            if attr in cls.methods:
                return ".".join([cls.full_name, attr, *attrs[i + 1 :]])
            attr_type = cls.attr_types.get(attr)
            if attr_type is None:
                return ".".join([cls.full_name, *attrs[i:]])
            current = attr_type
            cls = self.classes.get(attr_type)
        return current

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def function_for(self, full_name: str) -> Optional[FunctionInfo]:
        return self.functions.get(full_name)

    def module_for_function(self, func: FunctionInfo) -> ModuleInfo:
        return self.modules[func.module]

    def class_for_function(self, func: FunctionInfo) -> Optional[ClassInfo]:
        if func.cls is None:
            return None
        return self.modules[func.module].classes.get(func.cls)

    def mutable_global_mutators(self) -> Set[Tuple[str, str]]:
        """(module, name) pairs of mutable globals mutated inside functions.

        Import-time setup (module-level statements) does not count — it
        runs identically in every worker; only in-function mutation makes
        a module global hazardous for fan-out.
        """
        mutated: Set[Tuple[str, str]] = set()
        for mod in self.modules.values():
            for func in mod.functions.values():
                for node in ast.walk(func.node):
                    target: Optional[str] = None
                    if isinstance(node, ast.Global):
                        for name in node.names:
                            mutated.add((mod.name, name))
                        continue
                    if isinstance(node, (ast.Assign, ast.AugAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for t in targets:
                            if isinstance(t, ast.Subscript) and isinstance(
                                t.value, ast.Name
                            ):
                                target = t.value.id
                    elif isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute
                    ):
                        if node.func.attr in MUTATING_METHODS and isinstance(
                            node.func.value, ast.Name
                        ):
                            target = node.func.value.id
                    if target is not None and target in mod.mutable_globals:
                        if not self._is_local_name(func, target):
                            mutated.add((mod.name, target))
        return mutated

    @staticmethod
    def _is_local_name(func: FunctionInfo, name: str) -> bool:
        if name in func.params:
            return True
        for node in ast.walk(func.node):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name) and t.id == name:
                        return True
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.target.id == name:
                    return True
        return False


def iter_project_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.is_file():
            out.append(path)
    return out


def build_project(paths: Sequence[str]) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`."""
    modules: List[ModuleInfo] = []
    for file_path in iter_project_files(paths):
        modules.append(parse_module(file_path))
    return Project(modules)
