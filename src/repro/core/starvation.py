"""Starvation mitigation: choosing the enforcement mode for Gurita.

SPQ starves low-priority traffic (paper §IV.B).  Gurita therefore emulates
SPQ with WRR, deriving per-queue weights from the mean waiting time each
queue would see under true SPQ — low-priority queues keep a trickle of
bandwidth instead of being denied entirely.  The weight math lives in
:mod:`repro.simulator.bandwidth.wrr`; this module only builds the
allocation request for a given Gurita configuration.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import GuritaConfig
from repro.simulator.bandwidth.request import AllocationMode, AllocationRequest


def build_request(
    config: GuritaConfig,
    priorities: Dict[int, int],
) -> AllocationRequest:
    """Allocation request enforcing ``priorities`` per the config.

    WRR-emulated SPQ when starvation mitigation is on (Gurita's default);
    raw SPQ otherwise (the ablation).
    """
    mode = (
        AllocationMode.WRR if config.starvation_mitigation else AllocationMode.SPQ
    )
    return AllocationRequest(
        mode=mode,
        priorities=priorities,
        num_classes=config.num_classes,
        utilization=config.wrr_utilization,
        weight_mode=config.wrr_weight_mode,
    )
