"""Property-based tests for workload tooling and Gurita's scoring."""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.core.blocking import beta, blocking_effect, gamma_estimated
from repro.schedulers.thresholds import ExponentialThresholds
from repro.workloads.categories import category_of
from repro.workloads.fbtrace import parse_trace, synthesize_trace, write_trace


@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_trace_roundtrip_preserves_structure(num_coflows, seed):
    trace = synthesize_trace(num_coflows, num_machines=64, seed=seed)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.txt"
        write_trace(path, trace, num_machines=64)
        machines, parsed = parse_trace(path)
    assert machines == 64
    assert len(parsed) == len(trace)
    for original, loaded in zip(trace, parsed):
        assert loaded.mappers == original.mappers
        assert [m for m, _ in loaded.reducers] == [
            m for m, _ in original.reducers
        ]
        # Volumes survive the MB text encoding to reasonable precision.
        assert abs(loaded.total_bytes - original.total_bytes) <= max(
            1e-6 * original.total_bytes, 1.0
        )


@given(
    st.integers(min_value=2, max_value=8),
    st.floats(min_value=1e3, max_value=1e9),
    st.floats(min_value=1.5, max_value=50.0),
    st.lists(st.floats(min_value=0.0, max_value=1e13), min_size=2, max_size=20),
)
@settings(max_examples=200, deadline=None)
def test_threshold_classes_monotone(num_classes, first, base, scores):
    thresholds = ExponentialThresholds(num_classes, first=first, base=base)
    ordered = sorted(scores)
    classes = [thresholds.class_of(s) for s in ordered]
    assert classes == sorted(classes)
    assert all(0 <= c < num_classes for c in classes)


@given(st.floats(min_value=0.0, max_value=1e12), st.floats(min_value=0.0, max_value=1e12))
@settings(max_examples=200, deadline=None)
def test_beta_bounded(max_bytes, mean_bytes):
    value = beta(max_bytes, min(mean_bytes, max_bytes))
    assert 0.1 <= value <= 1.0


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=100),
    st.floats(min_value=0.0, max_value=1e12),
)
@settings(max_examples=200, deadline=None)
def test_blocking_effect_monotone_in_width_and_size(gamma, width, max_bytes):
    mean = max_bytes / 2.0
    psi = blocking_effect(gamma, width, max_bytes, mean)
    psi_wider = blocking_effect(gamma, width + 1, max_bytes, mean)
    psi_bigger = blocking_effect(gamma, width, max_bytes * 2.0, mean)
    assert psi >= 0.0
    assert psi_wider >= psi
    assert psi_bigger >= psi


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=100, deadline=None)
def test_gamma_estimated_in_unit_interval(stages):
    value = gamma_estimated(stages)
    assert 0.0 < value <= 1.0


@given(st.floats(min_value=0.0, max_value=1e14))
@settings(max_examples=300, deadline=None)
def test_category_total_function(size):
    category = category_of(size)
    assert 1 <= category <= 7
