"""Unit tests for DAG shapes and the TPC-DS / FB-Tao structures."""

import random

import pytest

from repro.errors import WorkloadError
from repro.jobs.dag import CoflowDag
from repro.workloads.fbtao import tao_shape, tao_volumes
from repro.workloads.shapes import (
    DagShape,
    chain,
    inverted_v,
    multi_root,
    parallel_chains,
    sample_production_shape,
    single,
    tree,
    w_shape,
)
from repro.workloads.tpcds import query42_shape, query42_volumes


def as_dag(shape: DagShape) -> CoflowDag:
    return CoflowDag(list(range(shape.num_nodes)), shape.edges)


class TestShapes:
    def test_chain_depth(self):
        dag = as_dag(chain(5))
        assert dag.num_stages == 5
        assert len(dag.leaves()) == 1
        assert len(dag.roots()) == 1

    def test_tree_counts(self):
        shape = tree(depth=3, branching=2)
        assert shape.num_nodes == 7  # 1 + 2 + 4
        dag = as_dag(shape)
        assert len(dag.leaves()) == 4
        assert dag.roots() == [0]
        assert dag.num_stages == 3

    def test_w_shape_has_two_roots_three_leaves(self):
        dag = as_dag(w_shape())
        assert len(dag.roots()) == 2
        assert len(dag.leaves()) == 3
        assert dag.num_stages == 2

    def test_inverted_v_fanout(self):
        dag = as_dag(inverted_v(3))
        assert len(dag.roots()) == 3
        assert len(dag.leaves()) == 1

    def test_parallel_chains_merge(self):
        shape = parallel_chains(num_chains=3, depth=2)
        dag = as_dag(shape)
        assert dag.roots() == [0]
        assert len(dag.leaves()) == 3
        assert dag.num_stages == 3  # chain depth 2 + merge

    def test_multi_root_is_acyclic_with_multiple_outputs(self):
        dag = as_dag(multi_root(num_roots=2, num_leaves=3))
        assert len(dag.roots()) == 2

    def test_single(self):
        assert single().num_nodes == 1

    def test_validation(self):
        with pytest.raises(WorkloadError):
            chain(0)
        with pytest.raises(WorkloadError):
            tree(0)
        with pytest.raises(WorkloadError):
            inverted_v(1)

    def test_production_mix_is_valid_and_varied(self):
        rng = random.Random(0)
        names = set()
        for _ in range(200):
            shape = sample_production_shape(rng)
            as_dag(shape)  # must not raise
            names.add(shape.name.split("-")[0])
        # The mix covers several families.
        assert {"tree", "chain", "w"} <= names

    def test_production_mix_mean_depth_near_five(self):
        rng = random.Random(1)
        depths = [
            as_dag(sample_production_shape(rng)).num_stages for _ in range(300)
        ]
        mean = sum(depths) / len(depths)
        assert 2.5 <= mean <= 5.5


class TestTpcds:
    def test_query42_is_seven_node_depth_five(self):
        shape = query42_shape()
        dag = as_dag(shape)
        assert shape.num_nodes == 7
        assert dag.num_stages == 5
        assert len(dag.leaves()) == 3  # three scans
        assert len(dag.roots()) == 1  # the final sort

    def test_volumes_sum_to_total(self):
        volumes = query42_volumes(1000.0)
        assert sum(volumes) == pytest.approx(1000.0)
        # The fact-table scan dominates.
        assert max(volumes) == volumes[1]


class TestFbTao:
    def test_shape_depth_four(self):
        dag = as_dag(tao_shape(fanout=3))
        assert dag.num_stages == 4
        assert len(dag.leaves()) == 3
        assert dag.roots() == [0]

    def test_volumes_sum_and_front_load(self):
        volumes = tao_volumes(1000.0, fanout=3)
        assert sum(volumes) == pytest.approx(1000.0)
        # Early fetch stages carry most bytes; respond is tiny.
        assert volumes[0] == pytest.approx(20.0)  # respond
        fetch_a = volumes[3]
        assert fetch_a > volumes[0]

    def test_fanout_validation(self):
        with pytest.raises(WorkloadError):
            tao_shape(0)
        with pytest.raises(WorkloadError):
            tao_volumes(1.0, 0)
