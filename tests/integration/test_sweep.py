"""Integration tests for the parameter-sweep harness (tiny sizes)."""

import pytest

from repro.experiments.common import ScenarioConfig
from repro.experiments.sweep import (
    SweepPoint,
    SweepResult,
    sweep_burst_size,
    sweep_num_jobs,
    sweep_offered_load,
)

TINY = ScenarioConfig(num_jobs=5, fattree_k=4, seed=8)


class TestSweeps:
    def test_offered_load_sweep_shape(self):
        sweep = sweep_offered_load((0.5, 2.0), base=TINY)
        assert sweep.knob == "offered_load"
        assert [p.value for p in sweep.points] == [0.5, 2.0]
        assert len(sweep.series("pfs")) == 2
        assert len(sweep.improvement_series("pfs")) == 2

    def test_crossover_semantics(self):
        sweep = sweep_offered_load((0.5,), base=TINY)
        point = sweep.points[0]
        expected = point.average_jcts["pfs"] / point.average_jcts["gurita"]
        if expected > 1.0:
            assert sweep.crossover("pfs") == 0.5
        else:
            assert sweep.crossover("pfs") == float("inf")

    def test_burst_size_sweep(self):
        sweep = sweep_burst_size((2, 5), base=TINY.with_overrides(arrival_mode="bursty"))
        assert [p.value for p in sweep.points] == [2.0, 5.0]

    def test_num_jobs_sweep(self):
        sweep = sweep_num_jobs((3, 6), base=TINY)
        assert [p.value for p in sweep.points] == [3.0, 6.0]
        for point in sweep.points:
            assert point.average_jcts["gurita"] > 0

    def test_point_improvement(self):
        point = SweepPoint(value=1.0, average_jcts={"pfs": 2.0, "gurita": 1.0})
        assert point.improvement("pfs") == pytest.approx(2.0)


def _synthetic_sweep(improvements):
    """A sweep whose pfs-over-gurita factor at point i is improvements[i]."""
    return SweepResult(
        knob="synthetic",
        points=[
            SweepPoint(
                value=float(i), average_jcts={"pfs": factor, "gurita": 1.0}
            )
            for i, factor in enumerate(improvements)
        ],
    )


class TestCrossoverSemantics:
    """Regressions for non-monotone series, empty sweeps, missing keys."""

    def test_first_crossing_ignores_later_dips(self):
        # Non-monotone: crosses at value 1, dips back under at value 2.
        sweep = _synthetic_sweep([0.9, 1.2, 0.8, 1.3])
        assert sweep.crossover("pfs") == 1.0

    def test_sustained_requires_staying_above_one(self):
        sweep = _synthetic_sweep([0.9, 1.2, 0.8, 1.3])
        # Only the final point holds >1.0 through the end.
        assert sweep.crossover("pfs", sustained=True) == 3.0

    def test_sustained_equals_first_crossing_when_monotone(self):
        sweep = _synthetic_sweep([0.8, 0.95, 1.1, 1.4])
        assert sweep.crossover("pfs") == 2.0
        assert sweep.crossover("pfs", sustained=True) == 2.0

    def test_never_crossing_returns_inf(self):
        sweep = _synthetic_sweep([0.7, 0.8, 0.9])
        assert sweep.crossover("pfs") == float("inf")
        assert sweep.crossover("pfs", sustained=True) == float("inf")

    def test_empty_sweep_returns_inf(self):
        empty = SweepResult(knob="offered_load")
        assert empty.crossover("pfs") == float("inf")
        assert empty.crossover("pfs", sustained=True) == float("inf")

    def test_improvement_names_the_missing_scheduler(self):
        point = SweepPoint(value=1.0, average_jcts={"pfs": 2.0, "gurita": 1.0})
        with pytest.raises(KeyError, match=r"'aalo' was not part of this"):
            point.improvement("aalo")
        with pytest.raises(KeyError, match=r"measured: \['gurita', 'pfs'\]"):
            point.improvement("pfs", reference="stream")
