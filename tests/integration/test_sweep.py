"""Integration tests for the parameter-sweep harness (tiny sizes)."""

import pytest

from repro.experiments.common import ScenarioConfig
from repro.experiments.sweep import (
    SweepPoint,
    sweep_burst_size,
    sweep_num_jobs,
    sweep_offered_load,
)

TINY = ScenarioConfig(num_jobs=5, fattree_k=4, seed=8)


class TestSweeps:
    def test_offered_load_sweep_shape(self):
        sweep = sweep_offered_load((0.5, 2.0), base=TINY)
        assert sweep.knob == "offered_load"
        assert [p.value for p in sweep.points] == [0.5, 2.0]
        assert len(sweep.series("pfs")) == 2
        assert len(sweep.improvement_series("pfs")) == 2

    def test_crossover_semantics(self):
        sweep = sweep_offered_load((0.5,), base=TINY)
        point = sweep.points[0]
        expected = point.average_jcts["pfs"] / point.average_jcts["gurita"]
        if expected > 1.0:
            assert sweep.crossover("pfs") == 0.5
        else:
            assert sweep.crossover("pfs") == float("inf")

    def test_burst_size_sweep(self):
        sweep = sweep_burst_size((2, 5), base=TINY.with_overrides(arrival_mode="bursty"))
        assert [p.value for p in sweep.points] == [2.0, 5.0]

    def test_num_jobs_sweep(self):
        sweep = sweep_num_jobs((3, 6), base=TINY)
        assert [p.value for p in sweep.points] == [3.0, 6.0]
        for point in sweep.points:
            assert point.average_jcts["gurita"] > 0

    def test_point_improvement(self):
        point = SweepPoint(value=1.0, average_jcts={"pfs": 2.0, "gurita": 1.0})
        assert point.improvement("pfs") == pytest.approx(2.0)
