"""Fixture tests for the dimensional-analysis layer (``simlint --units``).

Each units rule (SIM301-SIM308) gets a firing/non-firing fixture pair:
unit derivation through arithmetic is pinned (``Bytes / BytesPerSec``
feeds a ``Seconds`` sink cleanly), the ``unit[...]`` assertion pragma
and cross-layer pragma stacking are exercised, and the CLI contract
(``--units``, ``--all``, per-finding ``layer`` tags) is locked in.  The
shipped-tree acceptance run lives in
``tests/integration/test_units_lint_acceptance.py``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from tools.simlint.__main__ import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from tools.simlint.callgraph import build_project
from tools.simlint.findings import Finding, layer_for_code
from tools.simlint.hotpaths import HotPathRegistry
from tools.simlint.runner import lint_paths_layers
from tools.simlint.units import (
    ALL_UNITS_RULES,
    UNITS_MODULES,
    UnitsRegistry,
    UnitsReport,
    units_lint_project,
)


def make_pkg(tmp_path: Path, modules: Dict[str, str]) -> Path:
    """A fixture package whose modules are named ``repro.*``.

    Plain keys land in ``repro.simulator`` (the annotated heart of the
    shipped tree); keys with ``/`` land at that path under ``repro``
    (``workloads/gen`` -> ``repro.workloads.gen``).
    """
    root = tmp_path / "repro"
    (root / "simulator").mkdir(parents=True)
    (root / "__init__.py").write_text("")
    (root / "simulator" / "__init__.py").write_text("")
    for name, source in modules.items():
        if "/" in name:
            target = root / f"{name}.py"
            target.parent.mkdir(parents=True, exist_ok=True)
            init = target.parent / "__init__.py"
            if not init.exists():
                init.write_text("")
        else:
            target = root / "simulator" / f"{name}.py"
        target.write_text(textwrap.dedent(source))
    return root


def units_report(
    tmp_path: Path,
    modules: Dict[str, str],
    registered: Sequence[str] = (),
    prefix: Optional[str] = None,
    roots: Sequence[str] = (),
    closure: Sequence[str] = (),
) -> UnitsReport:
    """Run the units layer over a fixture package.

    By default the SIM308 registry prefix is pointed away from the
    fixture namespace so rule fixtures need no registration; drift tests
    pass ``prefix="repro."`` explicitly.
    """
    root = make_pkg(tmp_path, modules)
    project = build_project([str(root)])
    registry = UnitsRegistry(
        modules=tuple(registered),
        prefix=prefix if prefix is not None else "fixtures-exempt.",
    )
    hot = HotPathRegistry(roots=tuple(roots), closure=tuple(closure))
    return units_lint_project(project, registry=registry, hot_registry=hot)


def codes(report: UnitsReport) -> List[str]:
    return [f.code for f in report.findings]


# ----------------------------------------------------------------------
# SIM301 — mixed-unit arithmetic
# ----------------------------------------------------------------------
class TestMixedUnitArithmetic:
    def test_seconds_plus_bytes_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "flow": """
                    def advance(now: Seconds, volume: Bytes):
                        return now + volume
                """
            },
        )
        assert codes(report) == ["SIM301"]
        assert "Seconds" in report.findings[0].message
        assert "Bytes" in report.findings[0].message

    def test_derived_seconds_plus_seconds_clean(self, tmp_path):
        """Bytes / BytesPerSec derives Seconds, so adding it to a
        timestamp is dimensionally sound — the core soundness case."""
        report = units_report(
            tmp_path,
            {
                "flow": """
                    def finish_at(now: Seconds, volume: Bytes, rate: BytesPerSec) -> Seconds:
                        return now + volume / rate
                """
            },
        )
        assert report.clean

    def test_annotation_conflict_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "flow": """
                    def stash(volume: Bytes):
                        eta: Seconds = volume
                        return eta
                """
            },
        )
        assert codes(report) == ["SIM301"]

    def test_dimensionless_scaling_clean(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "flow": """
                    def doubled(rate: BytesPerSec, share: Fraction) -> BytesPerSec:
                        return rate * share * 2
                """
            },
        )
        assert report.clean


# ----------------------------------------------------------------------
# SIM302 — cross-unit comparison / time equality
# ----------------------------------------------------------------------
class TestCrossUnitComparison:
    def test_bytes_vs_seconds_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "flow": """
                    def stalled(volume: Bytes, now: Seconds):
                        return volume < now
                """
            },
        )
        assert codes(report) == ["SIM302"]

    def test_time_equality_outside_timecmp_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "events": """
                    def same_tick(now: Seconds, eta: Seconds):
                        return now == eta
                """
            },
        )
        assert codes(report) == ["SIM302"]

    def test_time_equality_inside_timecmp_exempt(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "timecmp": """
                    def times_equal(now: Seconds, eta: Seconds):
                        return now == eta
                """
            },
        )
        assert report.clean

    def test_time_ordering_clean(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "events": """
                    def due(now: Seconds, eta: Seconds):
                        return eta <= now
                """
            },
        )
        assert report.clean


# ----------------------------------------------------------------------
# SIM303 — unit-mismatched sink
# ----------------------------------------------------------------------
class TestUnitMismatchedSink:
    def test_volume_into_seconds_sink_fires_with_rate_hint(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "events": """
                    def schedule_at(eta: Seconds):
                        return eta

                    def enqueue(volume: Bytes):
                        return schedule_at(volume)
                """
            },
        )
        assert codes(report) == ["SIM303"]
        assert "rate" in report.findings[0].message

    def test_rate_division_before_sink_clean(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "events": """
                    def schedule_at(eta: Seconds):
                        return eta

                    def enqueue(volume: Bytes, rate: BytesPerSec):
                        return schedule_at(volume / rate)
                """
            },
        )
        assert report.clean

    def test_return_annotation_mismatch_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "flow": """
                    def remaining(volume: Bytes) -> Seconds:
                        return volume
                """
            },
        )
        assert codes(report) == ["SIM303"]

    def test_units_cross_call_boundaries(self, tmp_path):
        """An unannotated helper's return unit is inferred at the fixed
        point and checked at the downstream annotated sink."""
        report = units_report(
            tmp_path,
            {
                "flow": """
                    def schedule_at(eta: Seconds):
                        return eta

                    def helper(volume: Bytes):
                        return volume

                    def enqueue(volume: Bytes):
                        return schedule_at(helper(volume))
                """
            },
        )
        assert codes(report) == ["SIM303"]


# ----------------------------------------------------------------------
# SIM304 — unit-less literal into an annotated sink
# ----------------------------------------------------------------------
class TestUnitlessLiteralSink:
    def test_bare_literal_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "events": """
                    def schedule_at(eta: Seconds):
                        return eta

                    def enqueue():
                        return schedule_at(86400.0)
                """
            },
        )
        assert codes(report) == ["SIM304"]

    def test_identity_literals_exempt(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "events": """
                    def schedule_at(eta: Seconds):
                        return eta

                    def enqueue():
                        return schedule_at(0), schedule_at(1), schedule_at(-1)
                """
            },
        )
        assert report.clean

    def test_unit_pragma_blesses_literal(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "events": """
                    def schedule_at(eta: Seconds):
                        return eta

                    def enqueue():
                        return schedule_at(86400.0)  # simlint: unit[Seconds]
                """
            },
        )
        assert report.clean

    def test_unit_pragma_with_wrong_unit_fires_mismatch(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "events": """
                    def schedule_at(eta: Seconds):
                        return eta

                    def enqueue():
                        return schedule_at(1500.0)  # simlint: unit[Bytes]
                """
            },
        )
        assert codes(report) == ["SIM303"]


# ----------------------------------------------------------------------
# SIM305 — unit erasure through json round-trips
# ----------------------------------------------------------------------
class TestUnitErasure:
    def test_json_value_into_annotated_sink_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "events": """
                    import json

                    def schedule_at(eta: Seconds):
                        return eta

                    def replay(blob):
                        payload = json.loads(blob)
                        return schedule_at(payload["eta"])
                """
            },
        )
        assert codes(report) == ["SIM305"]

    def test_asserted_unit_after_round_trip_clean(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "events": """
                    import json

                    def schedule_at(eta: Seconds):
                        return eta

                    def replay(blob):
                        payload = json.loads(blob)
                        return schedule_at(payload["eta"])  # simlint: unit[Seconds]
                """
            },
        )
        assert report.clean


# ----------------------------------------------------------------------
# SIM306 — workloads generator materialization
# ----------------------------------------------------------------------
class TestGeneratorMaterialization:
    GENERATOR = """
        def arrivals(n):
            for i in range(n):
                yield i
    """

    def test_list_around_workloads_generator_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "workloads/gen": self.GENERATOR,
                "driver": """
                    from repro.workloads.gen import arrivals

                    def eager(n):
                        return list(arrivals(n))
                """,
            },
        )
        assert codes(report) == ["SIM306"]
        assert "arrivals" in report.findings[0].message

    def test_lazy_iteration_clean(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "workloads/gen": self.GENERATOR,
                "driver": """
                    from repro.workloads.gen import arrivals

                    def stream(n):
                        for job in arrivals(n):
                            yield job
                """,
            },
        )
        assert report.clean

    def test_non_workloads_generator_exempt(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "gen": self.GENERATOR,
                "driver": """
                    from repro.simulator.gen import arrivals

                    def eager(n):
                        return sorted(arrivals(n))
                """,
            },
        )
        assert report.clean


# ----------------------------------------------------------------------
# SIM307 — hot-loop accumulation
# ----------------------------------------------------------------------
class TestHotLoopAccumulation:
    HOT_STEP = "repro.simulator.engine.Engine.step"

    def test_undrained_self_append_in_hot_loop_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "engine": """
                    class Engine:
                        def step(self, events):
                            for event in events:
                                self.trace.append(event)
                """
            },
            roots=[self.HOT_STEP],
        )
        assert codes(report) == ["SIM307"]
        assert "self.trace" in report.findings[0].message

    def test_drained_receiver_clean(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "engine": """
                    class Engine:
                        def step(self, events):
                            for event in events:
                                self.batch.append(event)
                            self.batch.clear()
                """
            },
            roots=[self.HOT_STEP],
        )
        assert report.clean

    def test_local_scratch_clean(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "engine": """
                    class Engine:
                        def step(self, events):
                            batch = []
                            for event in events:
                                batch.append(event)
                            return batch
                """
            },
            roots=[self.HOT_STEP],
        )
        assert report.clean

    def test_unregistered_function_exempt(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "engine": """
                    class Engine:
                        def step(self, events):
                            for event in events:
                                self.trace.append(event)
                """
            },
        )
        assert report.clean


# ----------------------------------------------------------------------
# SIM308 — units-registry drift
# ----------------------------------------------------------------------
class TestRegistryDrift:
    ANNOTATED = """
        def advance(now: Seconds) -> Seconds:
            return now
    """

    def test_unregistered_module_with_annotations_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {"flow": self.ANNOTATED},
            prefix="repro.",
        )
        assert codes(report) == ["SIM308"]
        assert "not listed" in report.findings[0].message
        # Pinned to the first annotation line, not the module head.
        assert report.findings[0].line == 2

    def test_registered_module_without_annotations_fires(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "flow": self.ANNOTATED,
                "plain": """
                    def advance(now):
                        return now
                """,
            },
            registered=["repro.simulator.flow", "repro.simulator.plain"],
            prefix="repro.",
        )
        assert codes(report) == ["SIM308"]
        assert "stale" in report.findings[0].message
        assert report.findings[0].path.endswith("plain.py")

    def test_registered_annotated_module_clean(self, tmp_path):
        report = units_report(
            tmp_path,
            {"flow": self.ANNOTATED},
            registered=["repro.simulator.flow"],
            prefix="repro.",
        )
        assert report.clean

    def test_shipped_registry_is_sorted(self):
        assert list(UNITS_MODULES) == sorted(UNITS_MODULES)


# ----------------------------------------------------------------------
# Pragma stacking: each pragma verb only reaches its own layer
# ----------------------------------------------------------------------
class TestPragmaStacking:
    def test_ignore_sim301_does_not_suppress_file_layer(self, tmp_path):
        """A units-layer ignore on the def line leaves SIM005 alone."""
        root = make_pkg(
            tmp_path,
            {
                "flow": """
                    def collect(items=[]):  # simlint: ignore[SIM301]
                        return items
                """
            },
        )
        report = lint_paths_layers([str(root)], units=True)
        assert [f.code for f in report.findings] == ["SIM005"]

    def test_ignore_sim005_does_not_suppress_units_layer(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "flow": """
                    def advance(now: Seconds, volume: Bytes):
                        return now + volume  # simlint: ignore[SIM005]
                """
            },
        )
        assert codes(report) == ["SIM301"]

    def test_stacked_pragmas_on_one_line_each_hit_their_layer(self, tmp_path):
        """``ignore[SIM005]`` and ``unit[Seconds]`` stacked on single
        lines suppress the file finding and bless the erased value —
        both layers come back clean in the merged run."""
        root = make_pkg(
            tmp_path,
            {
                "events": """
                    import json

                    def schedule_at(eta: Seconds):
                        return eta

                    def replay(blob, seen=[]):  # simlint: ignore[SIM005]
                        payload = json.loads(blob)
                        return schedule_at(payload["eta"])  # simlint: unit[Seconds]
                """
            },
        )
        registry = UnitsRegistry(modules=(), prefix="fixtures-exempt.")
        report = lint_paths_layers([str(root)], units=True, units_registry=registry)
        assert report.clean, [f.render() for f in report.findings]
        assert report.suppressed >= 1

    def test_hot_ok_does_not_suppress_units_layer(self, tmp_path):
        """The perf layer's hot-ok acknowledgment is not an ignore: a
        SIM307 on the same line still fires."""
        report = units_report(
            tmp_path,
            {
                "engine": """
                    class Engine:
                        def step(self, events):
                            for event in events:
                                self.trace.append(event)  # hot-ok[audit log]
                """
            },
            roots=["repro.simulator.engine.Engine.step"],
        )
        assert codes(report) == ["SIM307"]

    def test_ignore_sim307_suppresses_and_counts(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "engine": """
                    class Engine:
                        def step(self, events):
                            for event in events:
                                self.trace.append(event)  # simlint: ignore[SIM307]
                """
            },
            roots=["repro.simulator.engine.Engine.step"],
        )
        assert report.clean
        assert report.suppressed == 1

    def test_skip_file_silences_units_layer(self, tmp_path):
        report = units_report(
            tmp_path,
            {
                "flow": """
                    # simlint: skip-file
                    def advance(now: Seconds, volume: Bytes):
                        return now + volume
                """
            },
        )
        assert report.clean


# ----------------------------------------------------------------------
# CLI contract: --units / --all, merged stream, layer tags
# ----------------------------------------------------------------------
class TestUnitsCli:
    """CLI fixtures live outside the ``repro`` namespace so the shipped
    SIM207/SIM308 registries (keyed on ``repro.*`` module names) stay
    out of the picture — the unit rules themselves are namespace-free."""

    BAD = """
        def advance(now: Seconds, volume: Bytes):
            return now + volume
    """

    def test_units_flag_finds_and_tags_layer(self, tmp_path, capsys):
        target = tmp_path / "flow.py"
        target.write_text(textwrap.dedent(self.BAD))
        assert main(["--units", str(target), "--json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert [f["code"] for f in payload["findings"]] == ["SIM301"]
        assert [f["layer"] for f in payload["findings"]] == ["units"]

    def test_without_units_flag_rule_is_unknown(self, tmp_path):
        target = tmp_path / "flow.py"
        target.write_text(textwrap.dedent(self.BAD))
        assert main([str(target), "--select", "SIM301"]) == EXIT_USAGE

    def test_all_flag_merges_every_layer(self, tmp_path, capsys):
        target = tmp_path / "flow.py"
        target.write_text(
            textwrap.dedent(
                """
                def advance(now: Seconds, volume: Bytes, items=[]):
                    return now + volume
                """
            )
        )
        assert main(["--all", str(target), "--json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        found = {(f["code"], f["layer"]) for f in payload["findings"]}
        assert ("SIM005", "file") in found
        assert ("SIM301", "units") in found

    def test_all_flag_clean_fixture(self, tmp_path, capsys):
        target = tmp_path / "flow.py"
        target.write_text(
            textwrap.dedent(
                """
                def finish_at(now: Seconds, volume: Bytes, rate: BytesPerSec) -> Seconds:
                    return now + volume / rate
                """
            )
        )
        assert main(["--all", str(target)]) == EXIT_CLEAN
        assert "clean" in capsys.readouterr().out

    def test_list_rules_covers_units_layer(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in ALL_UNITS_RULES:
            assert rule.code in out
        assert "--units" in out

    def test_layer_tagging_is_total(self):
        assert layer_for_code("SIM001") == "file"
        assert layer_for_code("SIM101") == "deep"
        assert layer_for_code("SIM201") == "perf"
        assert layer_for_code("SIM308") == "units"
        finding = Finding(path="x.py", line=1, col=0, code="SIM301", message="m")
        assert finding.to_dict()["layer"] == "units"
