"""Property-based tests for the DAG, stages, and critical paths."""

import random

from hypothesis import given, settings, strategies as st

from repro.jobs.dag import CoflowDag
from repro.jobs.paths import critical_path, enumerate_paths


@st.composite
def random_dags(draw):
    """Random DAGs built from a random topological order (always acyclic)."""
    num_nodes = draw(st.integers(min_value=1, max_value=10))
    nodes = list(range(num_nodes))
    edges = []
    for later in range(1, num_nodes):
        num_deps = draw(st.integers(min_value=0, max_value=min(3, later)))
        deps = draw(
            st.lists(
                st.integers(min_value=0, max_value=later - 1),
                min_size=num_deps,
                max_size=num_deps,
                unique=True,
            )
        )
        edges.extend((dep, later) for dep in deps)
    return CoflowDag(nodes, edges)


@given(random_dags())
@settings(max_examples=200, deadline=None)
def test_stage_exceeds_dependencies(dag):
    """A coflow's stage is strictly deeper than all its dependencies'."""
    for node in dag.coflow_ids:
        for dep in dag.dependencies_of(node):
            assert dag.stage_of(node) > dag.stage_of(dep)


@given(random_dags())
@settings(max_examples=200, deadline=None)
def test_leaves_are_stage_one_and_stages_contiguous(dag):
    for leaf in dag.leaves():
        assert dag.stage_of(leaf) == 1
    stages = {dag.stage_of(node) for node in dag.coflow_ids}
    assert stages == set(range(1, dag.num_stages + 1))


@given(random_dags())
@settings(max_examples=200, deadline=None)
def test_topological_order_is_valid(dag):
    order = dag.topological_order()
    assert sorted(order) == sorted(dag.coflow_ids)
    position = {node: i for i, node in enumerate(order)}
    for u, v in dag.edges():
        assert position[u] < position[v]


@given(random_dags(), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=100, deadline=None)
def test_critical_path_dominates_all_paths(dag, seed):
    rng = random.Random(seed)
    costs = {node: rng.uniform(0.1, 10.0) for node in dag.coflow_ids}
    path, total = critical_path(dag, costs.__getitem__)
    try:
        all_paths = enumerate_paths(dag, limit=5000)
    except ValueError:
        return  # path explosion; DP answer already validated elsewhere
    assert all_paths, "non-empty DAG must have at least one path"
    best = max(sum(costs[c] for c in p) for p in all_paths)
    assert total >= best - 1e-9
    assert total == sum(costs[c] for c in path)


@given(random_dags())
@settings(max_examples=100, deadline=None)
def test_every_path_starts_at_leaf_ends_at_root(dag):
    try:
        paths = enumerate_paths(dag, limit=5000)
    except ValueError:
        return
    leaves, roots = set(dag.leaves()), set(dag.roots())
    for path in paths:
        assert path[0] in leaves
        assert path[-1] in roots
        for earlier, later in zip(path, path[1:]):
            assert earlier in dag.dependencies_of(later)
