"""The paper's reduction: multi-stage job scheduling → FFS-MJ (§III.B).

Converts the simulator's :class:`~repro.jobs.job.Job` objects into
:class:`~repro.theory.ffs.FfsInstance` form:

* each flow becomes an *operation* whose duration is its bytes over the
  machine processing rate;
* sender and receiver NICs become the machine layers — conceptually
  "machines in the i-th and (i-1)-th layer can be viewed as receivers and
  senders respectively in the big switch abstraction";
* coflow dependencies carry over unchanged.

Two layer models are offered: ``"receiver"`` (one FFS layer per receiver
NIC — the bottleneck the paper's big-switch analysis cares about) and
``"single"`` (one shared layer, the coarsest relaxation).  Small reduced
instances can then be brute-forced (:mod:`repro.theory.exact`) to compare
a simulated schedule against the combinatorial optimum.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ReproError
from repro.jobs.job import Job
from repro.theory.exact import Schedule, brute_force_best
from repro.theory.ffs import FfsCoflow, FfsInstance, FfsJob, FfsOperation

#: Supported machine-layer models.
LAYER_MODELS = ("receiver", "single")


def job_to_ffs(
    job: Job,
    processing_rate: float,
    layer_of_host: Dict[int, int],
    layer_model: str = "receiver",
) -> FfsJob:
    """Reduce one multi-stage job to an FFS-MJ job.

    ``layer_of_host`` maps receiver hosts to machine-layer indices and is
    extended in place so multiple jobs share a consistent layer space.
    """
    if processing_rate <= 0:
        raise ReproError("processing_rate must be positive")
    if layer_model not in LAYER_MODELS:
        raise ReproError(f"layer_model must be one of {LAYER_MODELS}")
    # Remap coflow ids to a job-local dense space.
    local_ids = {cid: i for i, cid in enumerate(job.dag.topological_order())}
    coflows: List[FfsCoflow] = []
    for coflow_id in job.dag.topological_order():
        coflow = job.coflow(coflow_id)
        operations = []
        for flow in coflow.flows:
            if layer_model == "single":
                layer = 0
            else:
                layer = layer_of_host.setdefault(flow.dst, len(layer_of_host))
            operations.append(
                FfsOperation(
                    duration=flow.size_bytes / processing_rate, layer=layer
                )
            )
        depends = tuple(
            local_ids[dep] for dep in sorted(job.dag.dependencies_of(coflow_id))
        )
        coflows.append(
            FfsCoflow(
                coflow_id=local_ids[coflow_id],
                operations=tuple(operations),
                depends_on=depends,
            )
        )
    return FfsJob(
        job_id=job.job_id,
        coflows=tuple(coflows),
        release_time=job.arrival_time,
    )


def jobs_to_ffs_instance(
    jobs: Sequence[Job],
    processing_rate: float,
    layer_model: str = "receiver",
    machines_per_layer: int = 1,
) -> FfsInstance:
    """Reduce a whole workload to one FFS-MJ instance."""
    if not jobs:
        raise ReproError("need at least one job")
    layer_of_host: Dict[int, int] = {}
    ffs_jobs = tuple(
        job_to_ffs(job, processing_rate, layer_of_host, layer_model)
        for job in jobs
    )
    layers = (
        {0} if layer_model == "single" else set(layer_of_host.values()) or {0}
    )
    return FfsInstance(
        jobs=ffs_jobs,
        machines_per_layer={layer: machines_per_layer for layer in layers},
    )


def optimal_total_jct(
    jobs: Sequence[Job],
    processing_rate: float,
    layer_model: str = "receiver",
) -> Tuple[Schedule, FfsInstance]:
    """Brute-force the reduced instance (small workloads only).

    Returns the optimal priority-order schedule and the instance, so a
    simulated outcome can be compared against the combinatorial optimum
    of its own reduction.
    """
    instance = jobs_to_ffs_instance(jobs, processing_rate, layer_model)
    return brute_force_best(instance), instance
