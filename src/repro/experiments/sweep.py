"""Parameter sweeps: how comparisons move as one knob turns.

The paper reports point comparisons; sweeps show *where crossovers fall*
— e.g. the offered load at which priority scheduling starts paying off
over fair sharing, or how the Gurita-vs-Aalo gap moves with burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import ScenarioConfig, run_scenario


@dataclass
class SweepPoint:
    """One knob value and the per-policy average JCTs measured there."""

    value: float
    average_jcts: Dict[str, float]

    def improvement(self, baseline: str, reference: str = "gurita") -> float:
        return self.average_jcts[baseline] / self.average_jcts[reference]


@dataclass
class SweepResult:
    """A labelled series of sweep points."""

    knob: str
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, scheduler: str) -> List[float]:
        """The scheduler's average JCT at each knob value."""
        return [point.average_jcts[scheduler] for point in self.points]

    def improvement_series(
        self, baseline: str, reference: str = "gurita"
    ) -> List[float]:
        return [point.improvement(baseline, reference) for point in self.points]

    def crossover(
        self, baseline: str, reference: str = "gurita"
    ) -> float:
        """First knob value where the reference beats the baseline.

        Returns ``inf`` if it never does within the sweep.
        """
        for point in self.points:
            if point.improvement(baseline, reference) > 1.0:
                return point.value
        return float("inf")


def sweep_offered_load(
    loads: Sequence[float],
    base: Optional[ScenarioConfig] = None,
    schedulers: Sequence[str] = ("pfs", "gurita"),
) -> SweepResult:
    """Sweep the offered-load calibration of the arrival span."""
    base = base if base is not None else ScenarioConfig(num_jobs=30)
    result = SweepResult(knob="offered_load")
    for load in loads:
        outcome = run_scenario(
            base.with_overrides(offered_load=load), schedulers=schedulers
        )
        result.points.append(
            SweepPoint(value=load, average_jcts=outcome.average_jcts())
        )
    return result


def sweep_burst_size(
    burst_sizes: Sequence[int],
    base: Optional[ScenarioConfig] = None,
    schedulers: Sequence[str] = ("pfs", "gurita"),
) -> SweepResult:
    """Sweep burst size under bursty arrivals (burstiness knob)."""
    base = (
        base
        if base is not None
        else ScenarioConfig(num_jobs=30, arrival_mode="bursty")
    )
    result = SweepResult(knob="burst_size")
    for burst_size in burst_sizes:
        outcome = run_scenario(
            base.with_overrides(burst_size=burst_size), schedulers=schedulers
        )
        result.points.append(
            SweepPoint(value=float(burst_size), average_jcts=outcome.average_jcts())
        )
    return result


def sweep_num_jobs(
    job_counts: Sequence[int],
    base: Optional[ScenarioConfig] = None,
    schedulers: Sequence[str] = ("pfs", "gurita"),
) -> SweepResult:
    """Sweep workload size at constant offered load (scale knob)."""
    base = base if base is not None else ScenarioConfig()
    result = SweepResult(knob="num_jobs")
    for count in job_counts:
        outcome = run_scenario(
            base.with_overrides(num_jobs=count), schedulers=schedulers
        )
        result.points.append(
            SweepPoint(value=float(count), average_jcts=outcome.average_jcts())
        )
    return result
