"""Parallel experiment engine: deterministic fan-out of scenario grids.

Every figure, sweep, and multi-seed trial decomposes into independent
*work units* — one ``(ScenarioConfig, replicate seed, scheduler set)``
tuple each — that share no state: the workload is rebuilt from the seed
inside the unit, and policies never see each other.  That shape is
embarrassingly parallel, and this module is the one place the repo
exploits it.

Design contract (the differential suite in
``tests/integration/test_parallel_parity.py`` asserts all of it):

**Determinism.**  A unit's outcome is a pure function of the unit alone.
The workload seed a unit simulates with is the caller's replicate seed,
verbatim; the engine additionally derives a stable 64-bit *unit seed*
(:func:`derive_unit_seed`, a blake2b hash over the canonical config
encoding) used for unit identity, cache keys, and any engine-internal
randomness.  Nothing — not the seed, not the result, not the order of
reassembly — ever depends on worker index, pool size, or completion
order, so serial (``parallel=1``, the degenerate case) and parallel runs
produce bit-identical JCTs.

**Caching.**  With a ``cache_dir``, each completed unit is persisted
under a fingerprint of (canonical config + scheduler set + code-version
salt).  Re-runs and resumed grids skip completed units; a salt bump (new
library version, or ``REPRO_CACHE_SALT``) invalidates everything, and a
corrupt or mismatched entry silently degrades to a miss and is
rewritten.

**Failure isolation.**  A unit that raises (or returns a payload that
fails validation) is retried up to ``retries`` times, with optional
exponential backoff between attempts; exhausted units land in the
report's structured ``failures`` list — offending config, error,
traceback, attempt count — without sinking sibling units.  A
``unit_timeout`` additionally bounds each attempt's wall-clock time:
hung workers are killed (the process pool is rebuilt and surviving
in-flight units resubmitted) and the unit is recorded as a structured
``UnitFailure(kind="timeout")`` instead of stalling the grid forever.

**Observability.**  Progress events stream through an injectable hook;
completed units, cache hits, retries, and worker utilization are
condensed into :class:`GridStats` and surfaced via
:func:`repro.simulator.observability.parallel_counters` and the CLI's
``--parallel`` / ``--cache-dir`` paths.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, Executor, Future, wait
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import __version__
from repro.errors import ExperimentError, GridExecutionError
from repro.experiments.common import ScenarioConfig, ScenarioResult, run_scenario
from repro.experiments.timing import host_clock, host_sleep

#: Bump when the cached payload layout changes (a cheap salt component).
CACHE_FORMAT = 1


# ----------------------------------------------------------------------
# Canonical encoding and seed derivation
# ----------------------------------------------------------------------
#: Config fields added after seed-derivation goldens were pinned, with the
#: defaults they must be omitted at.  Skipping them keeps the canonical
#: encoding — and every unit seed and cache fingerprint hashed from it —
#: byte-identical for configs that do not use the new features.
_EXTENSION_FIELD_DEFAULTS: Dict[str, Any] = {
    "fault_profile": "",
    "fault_intensity": 1.0,
    "fault_seed": 0,
    "link_capacity": 0.0,
}


def canonical_config(config: ScenarioConfig) -> str:
    """A canonical JSON encoding of every config field.

    Fields are emitted sorted by name with ``sort_keys=True``, so the
    encoding — and everything hashed from it — is insensitive to dict or
    field-declaration iteration order.  Extension fields sitting at their
    defaults are omitted entirely (see
    :data:`_EXTENSION_FIELD_DEFAULTS`), making the encoding stable across
    library versions that added them.
    """
    record: Dict[str, Any] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if (
            f.name in _EXTENSION_FIELD_DEFAULTS
            and value == _EXTENSION_FIELD_DEFAULTS[f.name]
        ):
            continue
        if isinstance(value, tuple):
            value = list(value)
        record[f.name] = value
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _unit_identity(
    config: ScenarioConfig, seed: int, schedulers: Tuple[str, ...]
) -> str:
    effective = config.with_overrides(seed=seed)
    return json.dumps(
        {
            "config": json.loads(canonical_config(effective)),
            "schedulers": list(schedulers),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def derive_unit_seed(
    config: ScenarioConfig,
    seed: Optional[int] = None,
    schedulers: Optional[Sequence[str]] = None,
) -> int:
    """A stable 63-bit seed for one work unit.

    The derivation is a blake2b hash of the unit's canonical identity
    (config with the replicate ``seed`` applied, plus the scheduler
    set) — a pure function of the unit.  It is therefore identical
    across process-pool sizes, submission orderings, and worker
    assignment, and unique across units that differ in any field.  It is
    deliberately *salt-free*: seeds must not change when the code
    version (and hence the cache salt) does.
    """
    effective_seed = config.seed if seed is None else seed
    names = tuple(schedulers if schedulers is not None else config.schedulers)
    digest = hashlib.blake2b(
        _unit_identity(config, effective_seed, names).encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


def default_cache_salt() -> str:
    """The fingerprint salt: code version, overridable for experiments.

    ``REPRO_CACHE_SALT`` overrides the default ``repro-<version>/<fmt>``
    salt — useful to segregate caches across uncommitted working trees.
    """
    override = os.environ.get("REPRO_CACHE_SALT")
    if override:
        return override
    return f"repro-{__version__}/fmt{CACHE_FORMAT}"


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkUnit:
    """One independent grid cell: a scenario replayed under some seed.

    ``seed=None`` means "use the config's own seed"; a replicate seed
    overrides it (that is how trials fan one config across seeds).
    ``schedulers=None`` defers to ``config.schedulers``.
    """

    config: ScenarioConfig
    seed: Optional[int] = None
    schedulers: Optional[Tuple[str, ...]] = None
    label: str = ""

    @property
    def effective_seed(self) -> int:
        return self.config.seed if self.seed is None else self.seed

    def effective_config(self) -> ScenarioConfig:
        return self.config.with_overrides(seed=self.effective_seed)

    def scheduler_names(self) -> Tuple[str, ...]:
        return tuple(
            self.schedulers if self.schedulers is not None else self.config.schedulers
        )

    @property
    def derived_seed(self) -> int:
        """The unit's stable 63-bit identity seed (see :func:`derive_unit_seed`)."""
        return derive_unit_seed(self.config, self.seed, self.schedulers)

    def fingerprint(self, salt: Optional[str] = None) -> str:
        """The unit's cache key: identity + code-version salt."""
        salt = salt if salt is not None else default_cache_salt()
        identity = _unit_identity(
            self.config, self.effective_seed, self.scheduler_names()
        )
        return hashlib.blake2b(
            f"{identity}|salt={salt}".encode("utf-8"), digest_size=16
        ).hexdigest()

    def describe(self) -> str:
        name = self.label or self.effective_config().name
        return f"{name}[seed={self.effective_seed}]"


def execute_unit(unit: WorkUnit) -> ScenarioResult:
    """Run one work unit (the default worker task; pure, picklable)."""
    return run_scenario(unit.effective_config(), schedulers=unit.schedulers)


class UnitResultError(ExperimentError):
    """A worker returned a payload that fails validation."""


def validate_unit_result(unit: WorkUnit, result: object) -> ScenarioResult:
    """Reject corrupt worker payloads (wrong type, missing schedulers)."""
    if not isinstance(result, ScenarioResult):
        raise UnitResultError(
            f"unit {unit.describe()} returned {type(result).__name__}, "
            "expected ScenarioResult"
        )
    expected = set(unit.scheduler_names())
    got = set(result.results)
    if got != expected:
        raise UnitResultError(
            f"unit {unit.describe()} returned schedulers {sorted(got)}, "
            f"expected {sorted(expected)}"
        )
    for name, sim in sorted(result.results.items()):
        jct = sim.average_jct()
        # NaN/inf validity probe below is not a time comparison.
        if not jct > 0.0 or jct != jct or jct == float("inf"):  # simlint: ignore[SIM302]
            raise UnitResultError(
                f"unit {unit.describe()} has non-finite average JCT for "
                f"{name!r}: {jct!r}"
            )
    return result


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------
class ResultCache:
    """On-disk unit results, keyed by canonical scenario fingerprint.

    Entries are pickle payloads (``{"format", "fingerprint", "result"}``)
    written atomically.  The fingerprint embeds the salt, so version
    bumps change the key and naturally invalidate: stale entries are
    simply never looked up again.  A *format* mismatch (version skew, a
    legitimately old entry) degrades to a plain miss; an entry that
    exists but fails to unpickle, fails validation, or carries a
    mismatched fingerprint is **quarantined** — renamed to
    ``<key>.corrupt`` and counted in :attr:`corrupt_entries` — so a
    damaged file is inspected once instead of silently re-missing on
    every run, and the slot is free for an atomic rewrite.
    """

    def __init__(
        self, root: Union[str, Path], salt: Optional[str] = None
    ) -> None:
        self.root = Path(root)
        self.salt = salt if salt is not None else default_cache_salt()
        #: corrupt entries quarantined by :meth:`load` over this
        #: instance's lifetime (surfaced as ``GridStats.cache_corrupt``)
        self.corrupt_entries = 0

    def path_for(self, unit: WorkUnit) -> Path:
        # The REPRO_CACHE_SALT env override feeding self.salt is the
        # documented cache-namespace knob: it only renames cache entries
        # and never reaches unit seeds or results.
        return self.root / f"{unit.fingerprint(self.salt)}.pkl"  # simlint: ignore[SIM103]

    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry aside (best effort; miss either way)."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            return  # a concurrent reader may have renamed it already
        self.corrupt_entries += 1

    def load(self, unit: WorkUnit) -> Optional[ScenarioResult]:
        path = self.path_for(unit)
        try:
            raw = path.read_bytes()
        except OSError:
            return None  # plain miss: nothing on disk for this key
        try:
            payload = pickle.loads(raw)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self._quarantine(path)  # truncated or garbled bytes
            return None
        if not isinstance(payload, dict):
            self._quarantine(path)
            return None
        if payload.get("format") != CACHE_FORMAT:
            return None  # version skew, not damage: a plain miss
        # Salt in the stored fingerprint: namespace check only (see path_for).
        if payload.get("fingerprint") != unit.fingerprint(self.salt):  # simlint: ignore[SIM103]
            self._quarantine(path)  # entry does not match its own key
            return None
        try:
            return validate_unit_result(unit, payload.get("result"))
        except UnitResultError:
            self._quarantine(path)
            return None

    def store(self, unit: WorkUnit, result: ScenarioResult) -> Path:
        path = self.path_for(unit)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            {
                "format": CACHE_FORMAT,
                # Salt namespaces the entry; the result it guards is a pure
                # function of the unit (see module docstring).
                "fingerprint": unit.fingerprint(self.salt),  # simlint: ignore[SIM103]
                "result": result,
            }
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        return path


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class UnitFailure:
    """One unit that exhausted its retries (or its wall-clock budget)."""

    index: int
    unit: WorkUnit
    error: str
    traceback: str
    attempts: int
    #: "error" (raised / failed validation), "timeout" (attempt killed
    #: after exceeding the per-unit wall-clock budget), "crash" (worker
    #: process died mid-attempt and retries ran out), or "budget" (the
    #: grid's run budget expired before the unit could finish)
    kind: str = "error"
    #: wall-clock seconds of every observed attempt, in attempt order —
    #: including attempts voided by a pool rebuild (their wall time was
    #: genuinely spent).  Empty when no attempt was launched at all.
    attempt_seconds: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "unit": self.unit.describe(),
            "config": json.loads(canonical_config(self.unit.effective_config())),
            "schedulers": list(self.unit.scheduler_names()),
            "error": self.error,
            "kind": self.kind,
            "attempts": self.attempts,
            "attempt_seconds": list(self.attempt_seconds),
            "traceback": self.traceback,
        }


@dataclass
class GridStats:
    """One grid run's bookkeeping (the engine's observability surface)."""

    total_units: int = 0
    completed: int = 0  #: units with a result (cache hits included)
    cache_hits: int = 0
    #: corrupt cache entries quarantined during the cache pass
    cache_corrupt: int = 0
    retries: int = 0
    failures: int = 0
    #: failures caused by the per-unit wall-clock timeout (subset of
    #: ``failures``); each one killed and rebuilt the worker pool
    timeouts: int = 0
    #: worker-process deaths detected (pool rebuilt, victims resubmitted)
    worker_crashes: int = 0
    #: units abandoned because the grid's wall-clock run budget expired
    #: (subset of ``failures``; recorded as ``kind="budget"``)
    abandoned: int = 0
    workers: int = 1
    #: summed per-unit wall time measured inside the workers (host clock)
    unit_seconds: float = 0.0
    #: wall time of the whole grid as seen by the submitting process
    elapsed_seconds: float = 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of the pool's capacity spent simulating (0..1)."""
        capacity = self.workers * self.elapsed_seconds
        if capacity <= 0.0:
            return 0.0
        return min(1.0, self.unit_seconds / capacity)


@dataclass
class ProgressEvent:
    """One engine progress tick, streamed to the ``progress`` hook."""

    #: "cache-hit" | "done" | "retry" | "failed" | "timeout" |
    #: "crash" | "abandoned"
    kind: str
    index: int
    unit: WorkUnit
    completed: int
    total: int


ProgressHook = Callable[[ProgressEvent], None]


@dataclass
class GridReport:
    """Everything one grid run produced, reassembled in submission order."""

    units: List[WorkUnit]
    results: List[Optional[ScenarioResult]]
    failures: List[UnitFailure] = field(default_factory=list)
    stats: GridStats = field(default_factory=GridStats)

    @property
    def ok(self) -> bool:
        return not self.failures

    def scenario_results(self) -> List[ScenarioResult]:
        """All results, in unit order; raises if any unit failed."""
        if self.failures:
            summary = "; ".join(
                f"{f.unit.describe()}: {f.error}" for f in self.failures
            )
            raise GridExecutionError(
                f"{len(self.failures)} of {len(self.units)} work units "
                f"failed after retries: {summary}",
                failures=self.failures,
            )
        return [r for r in self.results if r is not None]

    def failure_report(self) -> Dict[str, Any]:
        """The structured failures report (JSON-safe)."""
        return {
            "total_units": self.stats.total_units,
            "completed": self.stats.completed,
            "failed": self.stats.failures,
            "failures": [f.to_dict() for f in self.failures],
        }


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _run_timed(
    run_unit: Callable[[WorkUnit], ScenarioResult], unit: WorkUnit
) -> Tuple[ScenarioResult, float]:
    """Worker entry point: run one unit and report its wall duration."""
    started = host_clock()
    result = run_unit(unit)
    return result, host_clock() - started


class _InlineExecutor(Executor):
    """The serial degenerate case: submit() runs the task immediately.

    Routing ``parallel=1`` through the same submit/wait/retry loop as the
    pools keeps serial execution a true degenerate case of the engine
    rather than a separate code path.
    """

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> "Future[Any]":
        future: "Future[Any]" = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 — mirrored into the future
            future.set_exception(exc)
        return future


def _make_executor(workers: int, use_threads: bool) -> Executor:
    if workers <= 1:
        return _InlineExecutor()
    if use_threads:
        return ThreadPoolExecutor(max_workers=workers)
    context: Optional[multiprocessing.context.BaseContext] = None
    if "fork" in multiprocessing.get_all_start_methods():
        # Fork keeps worker startup cheap and lets tests inject
        # module-level task callables without import gymnastics.
        context = multiprocessing.get_context("fork")
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


#: Monkeypatchable sleep used for retry backoff (host wall-clock,
#: concentrated in :mod:`repro.experiments.timing`; the engine's timings
#: are reporting-only and never feed simulation state).
_sleep = host_sleep

#: Namespace for the deterministic retry-jitter stream (bump on change).
_RETRY_JITTER_NAMESPACE = "repro.retry-jitter.v1"


def retry_jitter(unit: WorkUnit, attempt: int) -> float:
    """Deterministic backoff multiplier in ``[0.5, 1.5)`` for one retry.

    A blake2b hash over the unit's identity seed and the attempt number —
    a pure function of the unit, never of host state — so resubmitted
    workers spread out instead of retrying in lockstep (the thundering
    herd after a shared-resource hiccup), while the same grid replays
    with an identical backoff schedule every time.  The stream only
    shapes *when* a retry launches; results never depend on it.
    """
    digest = hashlib.blake2b(
        f"{_RETRY_JITTER_NAMESPACE}|{unit.derived_seed}|{attempt}".encode("utf-8"),
        digest_size=8,
    ).digest()
    return 0.5 + int.from_bytes(digest, "big") / 2.0**64


def run_grid(
    units: Sequence[WorkUnit],
    parallel: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    cache: Optional[ResultCache] = None,
    retries: int = 1,
    backoff_base: float = 0.0,
    unit_timeout: Optional[float] = None,
    run_unit: Callable[[WorkUnit], ScenarioResult] = execute_unit,
    use_threads: bool = False,
    progress: Optional[ProgressHook] = None,
    clock: Optional[Callable[[], float]] = None,
    budget: Optional[float] = None,
) -> GridReport:
    """Execute a grid of work units, fanned across ``parallel`` workers.

    Results come back in submission order regardless of completion
    order.  ``cache_dir`` (or an explicit ``cache``) enables the on-disk
    result cache; ``retries`` bounds re-execution of failing units (the
    default is exactly one retry) and ``backoff_base`` spaces the
    attempts exponentially (the k-th retry waits ``backoff_base *
    2**(k-1)`` seconds scaled by the unit's deterministic
    :func:`retry_jitter`; 0 retries immediately); ``unit_timeout``
    bounds each attempt's wall-clock seconds — an attempt that exceeds
    it is recorded as a ``UnitFailure(kind="timeout")`` without
    retrying, and with a process pool the hung workers are killed, the
    pool rebuilt, and surviving in-flight units resubmitted (thread and
    inline executors cannot be killed; their hung attempt is abandoned
    and its eventual result discarded); a worker process that *dies*
    mid-attempt (OOM kill, segfault) is detected, the pool rebuilt, and
    every interrupted unit re-attempted against its retry allowance
    (exhausted ones land as ``kind="crash"``); ``use_threads`` swaps the
    process pool for threads (used by fault-injection tests to share
    state with a custom ``run_unit``); ``clock`` injects the host clock
    used for reporting-only timings; ``budget`` bounds the whole grid's
    wall-clock seconds — at expiry, nothing new launches and every
    pending unit is recorded as ``kind="budget"`` (``stats.abandoned``)
    so a supervised run can checkpoint-then-stop instead of overrunning
    its slot.
    """
    units = list(units)
    tick = clock if clock is not None else host_clock
    started = tick()
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    if backoff_base < 0:
        raise ExperimentError(f"backoff_base must be >= 0, got {backoff_base}")
    if unit_timeout is not None and unit_timeout <= 0:
        raise ExperimentError(
            f"unit_timeout must be positive, got {unit_timeout}"
        )
    if budget is not None and budget <= 0:
        raise ExperimentError(f"budget must be positive, got {budget}")
    budget_deadline = started + budget if budget is not None else None
    corrupt_before = cache.corrupt_entries if cache is not None else 0
    stats = GridStats(total_units=len(units), workers=max(1, parallel))
    results: List[Optional[ScenarioResult]] = [None] * len(units)
    failures: List[UnitFailure] = []

    def notify(kind: str, index: int) -> None:
        if progress is not None:
            progress(
                ProgressEvent(
                    kind=kind,
                    index=index,
                    unit=units[index],
                    completed=stats.completed,
                    total=stats.total_units,
                )
            )

    # Cache pass: answer what we can before spinning up any worker.
    to_run: List[int] = []
    for index, unit in enumerate(units):
        cached = cache.load(unit) if cache is not None else None
        if cached is not None:
            results[index] = cached
            stats.cache_hits += 1
            stats.completed += 1
            notify("cache-hit", index)
        else:
            to_run.append(index)

    if to_run:
        executor = _make_executor(parallel, use_threads)
        in_flight: Dict["Future[Tuple[ScenarioResult, float]]", Tuple[int, int]] = {}
        #: wall-clock deadline per in-flight attempt (unit_timeout only)
        deadlines: Dict["Future[Tuple[ScenarioResult, float]]", float] = {}
        #: launch timestamp per in-flight attempt (attempt_seconds source)
        launched: Dict["Future[Tuple[ScenarioResult, float]]", float] = {}
        #: backoff-delayed retries waiting to launch: (ready_time, index, attempt)
        retry_queue: List[Tuple[float, int, int]] = []
        #: observed wall time of every attempt, per unit index
        attempt_log: Dict[int, List[float]] = {}

        def log_attempt(index: int, seconds: float) -> None:
            attempt_log.setdefault(index, []).append(seconds)

        def submit(index: int, attempt: int) -> None:
            try:
                future = executor.submit(_run_timed, run_unit, units[index])
            except Exception as exc:  # pool broken: fail without retrying
                failures.append(
                    UnitFailure(
                        index=index,
                        unit=units[index],
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback_module.format_exc(),
                        attempts=attempt,
                        attempt_seconds=attempt_log.get(index, []),
                    )
                )
                stats.failures += 1
                notify("failed", index)
            else:
                in_flight[future] = (index, attempt)
                launched[future] = tick()
                if unit_timeout is not None:
                    deadlines[future] = tick() + unit_timeout

        def schedule_retry(index: int, attempt: int) -> None:
            stats.retries += 1
            notify("retry", index)
            delay = backoff_base * 2.0 ** (attempt - 1) if backoff_base > 0 else 0.0
            if delay > 0.0:
                # Deterministic per-unit jitter keeps resubmissions from
                # retrying in lockstep while staying replayable.
                delay *= retry_jitter(units[index], attempt)
            if delay <= 0.0:
                submit(index, attempt=attempt + 1)
            else:
                retry_queue.append((tick() + delay, index, attempt + 1))

        def drain_pool() -> List[Tuple[int, int]]:
            """Kill the pool's processes; returns the voided attempts.

            Every in-flight attempt is logged (its wall time was spent)
            and cleared; the executor is rebuilt.  Thread and inline
            executors have no processes to kill but are still swapped so
            the caller can resubmit uniformly.
            """
            nonlocal executor
            now = tick()
            victims: List[Tuple[int, int]] = []
            for future, (vindex, vattempt) in in_flight.items():
                victims.append((vindex, vattempt))
                log_attempt(vindex, now - launched.get(future, now))
            in_flight.clear()
            deadlines.clear()
            launched.clear()
            processes = getattr(executor, "_processes", None) or {}
            for process in list(processes.values()):
                process.terminate()
            executor.shutdown(wait=False)
            executor = _make_executor(parallel, use_threads)
            return sorted(victims)

        def kill_hung_workers() -> None:
            """Tear down the pool under the hung attempts, then rebuild.

            A process pool gives no per-task kill, so every worker dies
            with the hung ones; surviving in-flight attempts restart from
            scratch (their work so far is lost, their attempt count and
            timeout budget reset — the units are pure, so a rerun is
            safe).  Thread and inline executors have nothing to kill.
            """
            if not isinstance(executor, ProcessPoolExecutor):
                return
            for index, attempt in drain_pool():
                submit(index, attempt)

        def recover_from_crash(first_index: int, first_attempt: int) -> None:
            """A worker process died: rebuild the pool, re-attempt victims.

            Every future on the broken pool fails together, so all
            in-flight attempts are voided and re-attempted against their
            retry allowance; units that exhausted it are recorded as
            ``kind="crash"`` — the structured taxonomy a supervisor needs
            to tell a dead worker from a bad unit.
            """
            stats.worker_crashes += 1
            victims = sorted(set([(first_index, first_attempt)] + drain_pool()))
            for index, attempt in victims:
                if attempt <= retries:
                    schedule_retry(index, attempt)
                else:
                    failures.append(
                        UnitFailure(
                            index=index,
                            unit=units[index],
                            error=(
                                "worker process died mid-attempt "
                                "(pool was rebuilt)"
                            ),
                            traceback="",
                            attempts=attempt,
                            kind="crash",
                            attempt_seconds=attempt_log.get(index, []),
                        )
                    )
                    stats.failures += 1
                    notify("crash", index)

        def abandon_pending() -> None:
            """The run budget expired: record everything pending, stop."""
            nonlocal retry_queue
            pending = drain_pool()
            pending += [(index, attempt - 1) for _, index, attempt in retry_queue]
            retry_queue = []
            for index, attempt in sorted(pending):
                failures.append(
                    UnitFailure(
                        index=index,
                        unit=units[index],
                        error=(
                            f"grid run budget of {budget}s expired before "
                            "this unit completed"
                        ),
                        traceback="",
                        attempts=attempt,
                        kind="budget",
                        attempt_seconds=attempt_log.get(index, []),
                    )
                )
                stats.failures += 1
                stats.abandoned += 1
                notify("abandoned", index)

        try:
            for index in to_run:
                submit(index, attempt=1)

            while in_flight or retry_queue:
                if budget_deadline is not None and tick() >= budget_deadline:
                    abandon_pending()
                    break
                # Launch every backoff-delayed retry whose time has come.
                if retry_queue:
                    now = tick()
                    due = [r for r in retry_queue if r[0] <= now]
                    retry_queue = [r for r in retry_queue if r[0] > now]
                    for _, index, attempt in sorted(due):
                        submit(index, attempt)
                if not in_flight:
                    if retry_queue:
                        wake_at = min(r[0] for r in retry_queue)
                        if budget_deadline is not None:
                            wake_at = min(wake_at, budget_deadline)
                        _sleep(max(0.0, wake_at - tick()))
                    continue

                wait_timeout: Optional[float] = None
                now = tick()
                if deadlines:
                    wait_timeout = max(0.0, min(deadlines.values()) - now)
                if retry_queue:
                    until_retry = max(0.0, min(r[0] for r in retry_queue) - now)
                    wait_timeout = (
                        until_retry
                        if wait_timeout is None
                        else min(wait_timeout, until_retry)
                    )
                if budget_deadline is not None:
                    until_budget = max(0.0, budget_deadline - now)
                    wait_timeout = (
                        until_budget
                        if wait_timeout is None
                        else min(wait_timeout, until_budget)
                    )
                done, _ = wait(
                    set(in_flight),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    if future not in in_flight:
                        continue  # voided by a pool rebuild this sweep
                    index, attempt = in_flight.pop(future)
                    deadlines.pop(future, None)
                    now = tick()
                    elapsed = now - launched.pop(future, now)
                    try:
                        payload, seconds = future.result()
                        validate_unit_result(units[index], payload)
                    except BrokenProcessPool:
                        log_attempt(index, elapsed)
                        recover_from_crash(index, attempt)
                        break  # in_flight was voided; re-enter the wait loop
                    except Exception as exc:  # raised in worker or validation
                        log_attempt(index, elapsed)
                        if attempt <= retries:
                            schedule_retry(index, attempt)
                        else:
                            failures.append(
                                UnitFailure(
                                    index=index,
                                    unit=units[index],
                                    error=f"{type(exc).__name__}: {exc}",
                                    traceback="".join(
                                        traceback_module.format_exception(
                                            type(exc), exc, exc.__traceback__
                                        )
                                    ),
                                    attempts=attempt,
                                    attempt_seconds=attempt_log.get(index, []),
                                )
                            )
                            stats.failures += 1
                            notify("failed", index)
                    else:
                        log_attempt(index, seconds)
                        results[index] = payload
                        stats.completed += 1
                        stats.unit_seconds += seconds
                        if cache is not None:
                            cache.store(units[index], payload)
                        notify("done", index)

                # Timeout sweep: declare every overdue attempt hung.
                if deadlines:
                    now = tick()
                    expired = sorted(
                        (in_flight[future], future)
                        for future, deadline in deadlines.items()
                        if deadline <= now and not future.done()
                    )
                    for (index, attempt), future in expired:
                        in_flight.pop(future, None)
                        deadlines.pop(future, None)
                        log_attempt(index, now - launched.pop(future, now))
                        future.cancel()  # no-op once running; frees queued ones
                        failures.append(
                            UnitFailure(
                                index=index,
                                unit=units[index],
                                error=(
                                    f"unit exceeded its {unit_timeout}s "
                                    "wall-clock timeout"
                                ),
                                traceback="",
                                attempts=attempt,
                                kind="timeout",
                                attempt_seconds=attempt_log.get(index, []),
                            )
                        )
                        stats.failures += 1
                        stats.timeouts += 1
                        notify("timeout", index)
                    if expired:
                        kill_hung_workers()
        finally:
            executor.shutdown(wait=True)

    failures.sort(key=lambda f: f.index)
    if cache is not None:
        stats.cache_corrupt = cache.corrupt_entries - corrupt_before
    stats.elapsed_seconds = tick() - started
    return GridReport(
        units=units, results=results, failures=failures, stats=stats
    )


def grid_of(
    configs: Sequence[ScenarioConfig],
    seeds: Optional[Sequence[int]] = None,
    schedulers: Optional[Sequence[str]] = None,
) -> List[WorkUnit]:
    """The cross product of configs × seeds as work units, in grid order."""
    names = tuple(schedulers) if schedulers is not None else None
    units: List[WorkUnit] = []
    for config in configs:
        for seed in seeds if seeds is not None else (None,):
            units.append(WorkUnit(config=config, seed=seed, schedulers=names))
    return units


__all__ = [
    "CACHE_FORMAT",
    "GridReport",
    "GridStats",
    "ProgressEvent",
    "ResultCache",
    "UnitFailure",
    "UnitResultError",
    "WorkUnit",
    "canonical_config",
    "default_cache_salt",
    "derive_unit_seed",
    "execute_unit",
    "grid_of",
    "retry_jitter",
    "run_grid",
    "validate_unit_result",
]
