"""Versioned, fingerprinted checkpoints of a running simulation.

A checkpoint captures the **complete** mutable state of a
:class:`~repro.simulator.runtime.CoflowSimulation` mid-run — the event
queue (either storage variant, including the monotonic watermark and
the sequence counter), the incremental
:class:`~repro.simulator.bandwidth.engine.AllocationState`, every
job/coflow/flow progress record, the scheduler's state via the
:meth:`~repro.schedulers.base.SchedulerPolicy.snapshot_state` contract,
the ECMP router with its route caches and generation counter, the fault
injector's timeline position and degradation counters, and the
deterministic stream offsets (the HR round index and event sequence
numbers — fault streams themselves are stateless counter-indexed
hashes, so those counters *are* the complete RNG position.)

The hard guarantee, enforced by the parity suite
(``tests/integration/test_checkpoint_parity.py``): **restore → run to
completion is bit-identical to the uninterrupted run** — same JCTs,
same event counts, same engine counters.

Serialization discipline
------------------------

The snapshot payload is pickled **whole, in one pass, at a pinned
protocol**.  One pass matters: pickle's memo preserves cross-component
reference sharing, e.g. the fault injector's live downed-link set that
the router aliases, and the scheduler context's views onto the job
dicts — a restored graph has exactly the original aliasing without any
manual rewiring.  What does *not* survive a checkpoint, by design:
host-side instrumentation (observability probes monkeypatch bound
methods onto the instance and are deliberately excluded from
snapshots) and logger configuration (recomputed on restore).

On-disk format (all one pickle stream)::

    {"magic": "repro-checkpoint", "schema": 1,
     "fingerprint": blake2b(body), "meta": {...}, "body": bytes}

where ``body`` is the pickled snapshot payload.  Files are written
atomically (temp file + ``os.replace``) so a crash mid-write leaves
either the previous complete checkpoint or none — never a torn one.
The fingerprint is an *integrity* check detecting truncation and
corruption on read; any mismatch, schema skew, or unpicklable content
raises :class:`~repro.errors.CheckpointError`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Any, Dict, Optional, Union

from repro.errors import CheckpointError
from repro.simulator.runtime import CoflowSimulation

__all__ = [
    "CHECKPOINT_SCHEMA",
    "read_checkpoint",
    "restore_simulation",
    "write_checkpoint",
]

#: Schema version of the on-disk checkpoint format.  Bump on any change
#: to the snapshot payload structure; readers reject other versions
#: rather than guessing.
CHECKPOINT_SCHEMA = 1

_MAGIC = "repro-checkpoint"

#: Pinned pickle protocol: checkpoints written by one interpreter must
#: load on any other supported one, so the protocol never floats with
#: ``pickle.HIGHEST_PROTOCOL``.
_PICKLE_PROTOCOL = 4


def _fingerprint(body: bytes) -> str:
    return hashlib.blake2b(body, digest_size=16).hexdigest()


def write_checkpoint(
    sim: CoflowSimulation,
    path: Union[str, "os.PathLike[str]"],
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Atomically write ``sim``'s state to ``path``; returns the fingerprint.

    ``meta`` is an optional caller-owned dict stored verbatim in the
    header (the supervisor records the unit fingerprint and scheduler
    name there); it is *outside* the snapshot body but *inside* the
    integrity envelope only by position — corrupting it is caught by
    the unpickling step, not the body fingerprint.
    """
    body = pickle.dumps(sim.snapshot_state(), protocol=_PICKLE_PROTOCOL)
    fingerprint = _fingerprint(body)
    payload = {
        "magic": _MAGIC,
        "schema": CHECKPOINT_SCHEMA,
        "fingerprint": fingerprint,
        "simulated_time": sim.now,
        "meta": dict(meta) if meta else {},
        "body": body,
    }
    target = os.fspath(path)
    tmp = target + ".tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=_PICKLE_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)
    return fingerprint


def read_checkpoint(path: Union[str, "os.PathLike[str]"]) -> Dict[str, Any]:
    """Read and verify a checkpoint file; returns the header payload.

    The returned dict still carries the raw ``body`` bytes (verified
    against the fingerprint) plus a decoded ``state`` entry ready for
    :meth:`CoflowSimulation.restore_state`.  Raises
    :class:`CheckpointError` on any corruption, truncation, schema
    mismatch, or fingerprint divergence; raises ``FileNotFoundError``
    untouched so callers can distinguish "no checkpoint yet" from "a
    checkpoint went bad".
    """
    target = os.fspath(path)
    try:
        with open(target, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        raise
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint {target}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise CheckpointError(f"{target} is not a repro checkpoint")
    if payload.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint schema {payload.get('schema')!r} in {target} is not "
            f"the supported version {CHECKPOINT_SCHEMA}"
        )
    body = payload.get("body")
    if not isinstance(body, bytes):
        raise CheckpointError(f"checkpoint {target} carries no state body")
    if _fingerprint(body) != payload.get("fingerprint"):
        raise CheckpointError(
            f"checkpoint {target} failed its integrity fingerprint "
            "(truncated or corrupted)"
        )
    try:
        payload["state"] = pickle.loads(body)
    except (pickle.UnpicklingError, EOFError, AttributeError, ImportError,
            IndexError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {target} body does not decode: {exc}"
        ) from exc
    return payload


def restore_simulation(
    path: Union[str, "os.PathLike[str]"],
    checkpoint_every: Optional[float] = None,
    checkpoint_path: Union[str, "os.PathLike[str]", None] = None,
) -> CoflowSimulation:
    """Rebuild the simulation stored at ``path``, ready to ``run()``.

    ``checkpoint_every``/``checkpoint_path`` configure the restored
    run's own checkpoint cadence (commonly the same path, so a resumed
    run keeps advancing its checkpoint); left unset, the restored run
    takes no further checkpoints.
    """
    payload = read_checkpoint(path)
    return CoflowSimulation.restore_state(
        payload["state"],
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
    )
