"""Shipped-tree acceptance: ``simlint --perf src`` stays clean.

The hot-closure perf layer must pass over the real source tree modulo
the committed baseline (``tools/simlint/perf_baseline.json``), and the
registry in ``tools/simlint/hotpaths.py`` must agree with the
``@hot_path`` markers in the source — drift in either direction fails
this test the same way it fails the CI ``perf-lint`` job.  A planted
regression (an unguarded eager ``logger.debug`` inside a registered hot
function) must surface as SIM201 at exactly the planted line.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from tools.simlint.__main__ import EXIT_CLEAN, main
from tools.simlint.baseline import (
    apply_baseline,
    load_baseline,
)
from tools.simlint.perfrules import (
    DEFAULT_PERF_BASELINE_PATH,
    perf_lint_paths,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / DEFAULT_PERF_BASELINE_PATH


def test_shipped_tree_perf_clean_modulo_baseline():
    report = perf_lint_paths([str(REPO_ROOT / "src")])
    outcome = apply_baseline(report.findings, load_baseline(BASELINE))
    assert outcome.clean, (
        "perf lint drifted from the committed baseline:\n"
        + "\n".join(
            [f.render() for f in outcome.new_findings]
            + [entry.render() for entry in outcome.stale]
        )
    )


def test_cli_perf_baseline_run_is_clean(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["--perf", "src", "--baseline"])
    assert code == EXIT_CLEAN, capsys.readouterr().out


def test_committed_baseline_is_canonical():
    """The on-disk perf baseline must already be in canonical serialized
    form (sorted keys, trailing newline) so --write-baseline round-trips
    produce no diff noise."""
    raw = BASELINE.read_text(encoding="utf-8")
    document = json.loads(raw)
    assert raw == json.dumps(document, indent=2, sort_keys=True) + "\n"
    assert document["version"] == 1


def test_intentional_suppressions_carry_pragmas_not_baseline():
    """Deliberately-cold calls and bounded per-round allocations are
    acknowledged in place (``hot-ok[reason]`` / ``ignore[SIM2xx]``),
    keeping the committed baseline empty; new findings must pick one
    mechanism deliberately rather than landing in the baseline by
    default."""
    document = load_baseline(BASELINE)
    assert document["entries"] == []
    report = perf_lint_paths([str(REPO_ROOT / "src")])
    # The fault-path escapes in runtime.py are hot-ok acknowledged...
    assert report.acknowledged >= 4
    # ...and the bounded scratch allocations carry ignore[SIM202]s.
    assert report.suppressed >= 5


def test_planted_unguarded_debug_log_fires_sim201(tmp_path):
    """Regression canary: reintroducing an eager hot-loop logging call —
    the exact pattern PR 6 removed — must fire SIM201 at its line."""
    planted_src = tmp_path / "src"
    shutil.copytree(REPO_ROOT / "src", planted_src)
    target = planted_src / "repro" / "simulator" / "routing" / "ecmp.py"
    lines = target.read_text(encoding="utf-8").splitlines()
    anchor = next(
        index
        for index, line in enumerate(lines)
        if "selector = flow_hash(" in line
    )
    planted_lineno = anchor + 2  # inserted directly below, 1-based
    lines.insert(
        anchor + 1, '        logger.debug(f"routing flow {flow.flow_id}")'
    )
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")

    report = perf_lint_paths([str(planted_src)])
    outcome = apply_baseline(report.findings, load_baseline(BASELINE))
    assert [f.code for f in outcome.new_findings] == ["SIM201"]
    finding = outcome.new_findings[0]
    assert finding.path.endswith("routing/ecmp.py")
    assert finding.line == planted_lineno
    assert "eagerly" in finding.message
    assert "route_flow" in finding.message
