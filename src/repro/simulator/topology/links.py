"""Directed links with capacities.

Links are the resource the bandwidth allocator divides.  Each physical cable
is modelled as two directed links (one per direction), so a full-duplex 10G
port contributes 10G in each direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import TopologyError

#: 10 Gigabit/s expressed in bytes per second (the paper's switch speed).
TEN_GBPS = 10e9 / 8.0


@dataclass(frozen=True)
class Link:
    """A directed link between two nodes of the topology."""

    link_id: int
    src_node: str
    dst_node: str
    capacity: float  #: bytes per second

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise TopologyError(
                f"link {self.src_node}->{self.dst_node} needs positive capacity"
            )


class LinkTable:
    """Registry of directed links with O(1) endpoint lookup."""

    def __init__(self) -> None:
        self._links: List[Link] = []
        self._by_endpoints: Dict[Tuple[str, str], int] = {}

    def add(self, src_node: str, dst_node: str, capacity: float) -> int:
        """Register a directed link; returns its id."""
        key = (src_node, dst_node)
        if key in self._by_endpoints:
            raise TopologyError(f"duplicate link {src_node}->{dst_node}")
        link_id = len(self._links)
        self._links.append(Link(link_id, src_node, dst_node, capacity))
        self._by_endpoints[key] = link_id
        return link_id

    def add_duplex(self, node_a: str, node_b: str, capacity: float) -> Tuple[int, int]:
        """Register both directions of a cable; returns (a->b id, b->a id)."""
        return self.add(node_a, node_b, capacity), self.add(node_b, node_a, capacity)

    def id_of(self, src_node: str, dst_node: str) -> int:
        try:
            return self._by_endpoints[(src_node, dst_node)]
        except KeyError:
            raise TopologyError(f"no link {src_node}->{dst_node}") from None

    def link(self, link_id: int) -> Link:
        return self._links[link_id]

    def capacities(self) -> List[float]:
        """Capacity array indexed by link id (bytes/second)."""
        return [link.capacity for link in self._links]

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links)
