"""Flow-level discrete-event datacenter network simulator."""

from repro.simulator.bandwidth import (
    DEFAULT_NUM_CLASSES,
    AllocationMode,
    AllocationRequest,
)
from repro.simulator.checkpoint import (
    CHECKPOINT_SCHEMA,
    read_checkpoint,
    restore_simulation,
    write_checkpoint,
)
from repro.simulator.events import Event, EventKind, EventQueue
from repro.simulator.observability import NetworkProbe
from repro.simulator.routing import EcmpRouter, flow_hash
from repro.simulator.runtime import (
    CoflowSimulation,
    SimulationResult,
    simulate,
)
from repro.simulator.topology import (
    TEN_GBPS,
    BigSwitchTopology,
    FatTreeTopology,
    Topology,
)

__all__ = [
    "AllocationMode",
    "AllocationRequest",
    "BigSwitchTopology",
    "CHECKPOINT_SCHEMA",
    "CoflowSimulation",
    "DEFAULT_NUM_CLASSES",
    "EcmpRouter",
    "Event",
    "EventKind",
    "EventQueue",
    "FatTreeTopology",
    "NetworkProbe",
    "SimulationResult",
    "TEN_GBPS",
    "Topology",
    "flow_hash",
    "read_checkpoint",
    "restore_simulation",
    "simulate",
    "write_checkpoint",
]
