"""Figure 8 — Gurita vs the clairvoyant GuritaPlus, per category.

Paper: with total in-flight bytes per stage known ahead of time and
instantaneous priority changes, GuritaPlus is at most marginally faster —
"in the worst case, Gurita is only slightly behind GuritaPlus" — showing
that receiver-side estimates suffice.

The bench prints the per-category ratio JCT(gurita)/JCT(gurita+); values
near (or below) 1 mean the estimates lose almost nothing.
"""

import pytest

from _util import bench_jobs

from repro.experiments.common import run_scenario
from repro.experiments.figures import figure8_config
from repro.metrics.improvement import per_category_improvement
from repro.metrics.report import format_category_table


@pytest.mark.parametrize("structure", ["fb-tao", "tpcds"])
def test_fig8_gurita_vs_guritaplus(run_once, structure):
    config = figure8_config(structure, num_jobs=bench_jobs(70))
    outcome = run_once(run_scenario, config)
    gurita = outcome.results["gurita"]
    plus = outcome.results["gurita+"]
    per_category = per_category_improvement(gurita, plus)
    print(
        "\n"
        + format_category_table(
            {"gurita/gurita+": per_category},
            title=f"FIG8 ({structure}) JCT ratio gurita / gurita+ "
            "(1.0 = oracle parity):",
        )
    )
    overall = gurita.average_jct() / plus.average_jct()
    print(f"FIG8 overall ratio: {overall:.4f}")
    # Gurita's estimates track the oracle closely on average (the paper
    # reports ~0.15%; the smaller scale here allows up to 15%).
    assert overall < 1.15
    # And in no category does Gurita collapse against the oracle.
    assert all(ratio < 2.0 for ratio in per_category.values())
