"""Smoke tests: every example script runs to completion.

The goal is API coverage.  The two multi-minute examples only run when
``REPRO_RUN_SLOW=1`` is set (they are exercised by the benchmark suite's
figures anyway).
"""

import os
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

slow = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW"),
    reason="set REPRO_RUN_SLOW=1 to run multi-minute example smoke tests",
)


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Gurita improves average JCT" in out


def test_analytics_pipeline_runs(capsys):
    run_example("analytics_pipeline.py")
    out = capsys.readouterr().out
    assert "Query completion time" in out
    assert "stage 5" in out


@slow
def test_custom_scheduler_runs(capsys):
    run_example("custom_scheduler.py")
    out = capsys.readouterr().out
    assert "sebf-lite" in out


def test_trace_tools_runs(capsys, tmp_path):
    run_example("trace_tools.py")
    out = capsys.readouterr().out
    assert "Replaying" in out
    assert "average JCT" in out


@slow
def test_bursty_datacenter_runs(capsys):
    run_example("bursty_datacenter.py")
    out = capsys.readouterr().out
    assert "Improvement of Gurita" in out
