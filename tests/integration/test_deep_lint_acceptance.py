"""Shipped-tree acceptance: ``simlint --deep src`` stays clean.

The whole-program analyzer must pass over the real source tree modulo
the committed baseline (``tools/simlint/deep_baseline.json``).  A new
determinism-taint or worker-purity finding — or a stale baseline entry —
fails this test the same way it fails the CI ``deep-lint`` job.
"""

from __future__ import annotations

import json
from pathlib import Path

from tools.simlint.__main__ import EXIT_CLEAN, main
from tools.simlint.baseline import (
    DEFAULT_BASELINE_PATH,
    apply_baseline,
    load_baseline,
)
from tools.simlint.runner import lint_paths_deep

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / DEFAULT_BASELINE_PATH


def test_shipped_tree_deep_clean_modulo_baseline():
    report = lint_paths_deep([str(REPO_ROOT / "src")])
    outcome = apply_baseline(report.findings, load_baseline(BASELINE))
    assert outcome.clean, (
        "deep lint drifted from the committed baseline:\n"
        + "\n".join(
            [f.render() for f in outcome.new_findings]
            + [entry.render() for entry in outcome.stale]
        )
    )


def test_cli_deep_baseline_run_is_clean(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["--deep", "src", "--baseline"])
    assert code == EXIT_CLEAN, capsys.readouterr().out


def test_committed_baseline_is_canonical():
    """The on-disk baseline must already be in canonical serialized form
    (sorted keys, sorted entries, trailing newline) so --write-baseline
    round-trips produce no diff noise."""
    raw = BASELINE.read_text(encoding="utf-8")
    document = json.loads(raw)
    assert raw == json.dumps(document, indent=2, sort_keys=True) + "\n"
    assert document["version"] == 1


def test_intentional_suppressions_carry_pragmas_not_baseline():
    """The known-good REPRO_CACHE_SALT flows are pragma'd in place with a
    reason, keeping the committed baseline empty; new findings must pick
    one mechanism deliberately rather than landing in the baseline by
    default."""
    document = load_baseline(BASELINE)
    assert document["entries"] == []
    report = lint_paths_deep([str(REPO_ROOT / "src")])
    assert report.suppressed >= 3  # the documented SIM103 salt pragmas
