"""Supervised, crash-safe experiment runs: manifests, checkpoints, resume.

:func:`run_grid` is deterministic and retry-hardened but all-or-nothing
at the *process* level: a SIGKILL, OOM, or preemption at hour N of a
long sweep loses every in-flight unit's progress, and a deadline-bounded
run has no way to stop cleanly with trustworthy partial results.  This
module supervises a grid so that neither happens:

* **Per-unit checkpoints.**  Each worker runs its unit one scheduler at
  a time, writing a simulator checkpoint
  (:mod:`repro.simulator.checkpoint`) every ``checkpoint_every``
  simulated seconds and persisting each completed scheduler's result to
  a *partial* file — so a kill during scheduler 3 of 5 costs at most
  one checkpoint interval of the third simulation, nothing more.

* **A grid manifest.**  ``manifest.json`` in the run directory records
  the schema version, the cache salt, and every unit's canonical
  config, seed, scheduler set, fingerprint, and final status.
  :func:`resume_run` rebuilds the exact same units from it — same
  fingerprints, same unit seeds — and re-runs the grid: completed units
  come straight from the result cache, interrupted ones restore from
  their checkpoints and run only the remaining simulated time.

* **A structured status taxonomy.**  Instead of the all-or-nothing
  ``GridExecutionError``, every unit ends in exactly one state:
  ``completed`` (ran clean), ``resumed`` (completed after restoring
  prior on-disk state), ``failed`` (exhausted retries — error, timeout,
  or worker crash), or ``abandoned`` (the wall-clock ``run_budget``
  expired first; its checkpoints persist for the next resume).  With
  ``allow_partial=False`` (the default) failures still raise; with
  ``True`` the report degrades gracefully.

Determinism contract: checkpointing is a pure side effect — a
supervised run's results, unit seeds, and cache keys are byte-identical
to a plain ``run_grid`` of the same units, whether or not any
checkpoint was ever written or restored (the parity suite asserts the
restore half; the neutrality tests assert the rest).
"""

from __future__ import annotations

import functools
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    CheckpointError,
    GridExecutionError,
    ManifestError,
    SimulationError,
)
from repro.experiments.common import (
    ScenarioConfig,
    ScenarioResult,
    build_fault_profile,
    build_jobs,
    build_topology,
)
from repro.experiments.parallel import (
    GridReport,
    ProgressHook,
    ResultCache,
    WorkUnit,
    default_cache_salt,
)
from repro.experiments.parallel import (
    run_grid as _run_grid,
)
from repro.schedulers.registry import make_scheduler
from repro.simulator.checkpoint import restore_simulation
from repro.simulator.runtime import CoflowSimulation

__all__ = [
    "MANIFEST_SCHEMA",
    "SupervisorReport",
    "config_from_record",
    "execute_supervised_unit",
    "load_manifest",
    "resume_run",
    "run_supervised",
    "unit_from_record",
]

#: Schema version of ``manifest.json``; readers reject other versions.
MANIFEST_SCHEMA = 1

_MANIFEST_NAME = "manifest.json"
_STATUS_PENDING = "pending"
_STATUS_COMPLETED = "completed"
_STATUS_RESUMED = "resumed"
_STATUS_FAILED = "failed"
_STATUS_ABANDONED = "abandoned"


# ----------------------------------------------------------------------
# Manifest records <-> units
# ----------------------------------------------------------------------
def config_from_record(record: Dict[str, Any]) -> ScenarioConfig:
    """Rebuild a :class:`ScenarioConfig` from its canonical JSON record.

    The exact inverse of :func:`repro.experiments.parallel.canonical_config`:
    extension fields omitted at their defaults come back as those
    defaults, and tuple-valued fields (the scheduler set) are restored
    from their JSON list form.
    """
    fields = dict(record)
    if "schedulers" in fields:
        fields["schedulers"] = tuple(fields["schedulers"])
    try:
        return ScenarioConfig(**fields)
    except TypeError as exc:
        raise ManifestError(
            f"manifest config record does not match ScenarioConfig: {exc}"
        ) from exc


def _unit_record(unit: WorkUnit, salt: str) -> Dict[str, Any]:
    from repro.experiments.parallel import canonical_config

    return {
        "label": unit.label,
        "seed": unit.seed,
        "schedulers": (
            list(unit.schedulers) if unit.schedulers is not None else None
        ),
        "config": json.loads(canonical_config(unit.config)),
        "fingerprint": unit.fingerprint(salt),  # simlint: ignore[SIM103]
        "status": _STATUS_PENDING,
    }


def unit_from_record(record: Dict[str, Any], salt: str) -> WorkUnit:
    """Rebuild a :class:`WorkUnit` from a manifest record, verified.

    The record's stored fingerprint must match the rebuilt unit's —
    anything else means the manifest no longer describes what this code
    would run (edited config, different library version / cache salt,
    or a corrupted file) and resuming would silently compute something
    different from what the manifest promises.
    """
    schedulers = record.get("schedulers")
    unit = WorkUnit(
        config=config_from_record(record["config"]),
        seed=record.get("seed"),
        schedulers=tuple(schedulers) if schedulers is not None else None,
        label=record.get("label", ""),
    )
    expected = record.get("fingerprint")
    actual = unit.fingerprint(salt)  # simlint: ignore[SIM103]
    if expected != actual:
        raise ManifestError(
            f"manifest unit {unit.describe()} fingerprints to {actual} under "
            f"the current code, but the manifest records {expected}; the "
            "manifest is stale (config edited, or library/salt changed) — "
            "rerun from scratch instead of resuming"
        )
    return unit


def _write_json_atomic(path: Path, payload: Dict[str, Any]) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(text + "\n", encoding="utf-8")
    os.replace(tmp, path)


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and schema-check a run manifest."""
    target = Path(path)
    if target.is_dir():
        target = target / _MANIFEST_NAME
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ManifestError(f"no run manifest at {target}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise ManifestError(f"unreadable run manifest {target}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != MANIFEST_SCHEMA:
        raise ManifestError(
            f"run manifest {target} has schema "
            f"{payload.get('schema') if isinstance(payload, dict) else '?'!r}; "
            f"this library reads version {MANIFEST_SCHEMA}"
        )
    payload["_path"] = str(target)
    return payload


# ----------------------------------------------------------------------
# The supervised worker task
# ----------------------------------------------------------------------
def _checkpoint_path(run_dir: str, fingerprint: str, scheduler: str) -> Path:
    return Path(run_dir) / "checkpoints" / f"{fingerprint}.{scheduler}.ckpt"


def _partial_path(run_dir: str, fingerprint: str) -> Path:
    return Path(run_dir) / "partial" / f"{fingerprint}.pkl"


def _load_partial(path: Path) -> Dict[str, Any]:
    """Completed-scheduler results persisted by an interrupted attempt.

    Tolerant by design: a torn or stale partial file only costs a
    recompute, so any read problem degrades to "nothing saved".
    """
    try:
        payload = pickle.loads(path.read_bytes())
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError, ValueError):
        return {}
    if not isinstance(payload, dict):
        return {}
    return payload


def execute_supervised_unit(
    unit: WorkUnit,
    run_dir: str,
    checkpoint_every: Optional[float],
    salt: str,
) -> ScenarioResult:
    """Run one unit scheduler-by-scheduler with durable progress.

    Drop-in replacement for
    :func:`repro.experiments.parallel.execute_unit` (same simulations,
    same results — checkpoint writes are pure side effects), plus crash
    safety: each completed scheduler's result lands in the unit's
    partial file, the in-flight scheduler checkpoints every
    ``checkpoint_every`` simulated seconds, and a later attempt restores
    both instead of starting over.  On success the unit's checkpoint and
    partial files are deleted — the result cache takes over from there.
    """
    fingerprint = unit.fingerprint(salt)
    config = unit.effective_config()
    names = unit.scheduler_names()
    partial_file = _partial_path(run_dir, fingerprint)
    saved = _load_partial(partial_file)
    outcome = ScenarioResult(config=config)
    for name in names:
        if name in saved:
            outcome.results[name] = saved[name]
            continue
        ckpt = _checkpoint_path(run_dir, fingerprint, name)
        sim: Optional[CoflowSimulation] = None
        if checkpoint_every is not None and ckpt.exists():
            # A torn checkpoint cannot exist (writes are atomic), but a
            # checkpoint from an older schema or a different code version
            # can; recovery from those is a fresh run, not a hard error.
            try:
                sim = restore_simulation(
                    ckpt, checkpoint_every=checkpoint_every, checkpoint_path=ckpt
                )
            except (CheckpointError, SimulationError):
                sim = None
        if sim is None:
            topology = build_topology(config)
            jobs = build_jobs(config, topology.num_hosts)
            ckpt.parent.mkdir(parents=True, exist_ok=True)
            sim = CoflowSimulation(
                topology,
                make_scheduler(name),
                jobs,
                faults=build_fault_profile(config),
                checkpoint_every=checkpoint_every,
                checkpoint_path=ckpt if checkpoint_every is not None else None,
            )
        result = sim.run()
        outcome.results[name] = result
        saved[name] = result
        partial_file.parent.mkdir(parents=True, exist_ok=True)
        tmp = partial_file.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(pickle.dumps(saved))
        os.replace(tmp, partial_file)
    # The unit is complete: the result cache owns it now.  Leftover
    # checkpoint/partial files would only shadow future config changes.
    for name in names:
        _checkpoint_path(run_dir, fingerprint, name).unlink(missing_ok=True)
    partial_file.unlink(missing_ok=True)
    return outcome


def _has_prior_state(run_dir: str, fingerprint: str, names: Tuple[str, ...]) -> bool:
    if _partial_path(run_dir, fingerprint).exists():
        return True
    return any(
        _checkpoint_path(run_dir, fingerprint, name).exists() for name in names
    )


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class SupervisorReport:
    """A grid report plus the supervisor's per-unit status taxonomy."""

    report: GridReport
    #: one of "completed" / "resumed" / "failed" / "abandoned" per unit,
    #: in submission order
    statuses: List[str] = field(default_factory=list)
    manifest_path: Optional[Path] = None

    def counts(self) -> Dict[str, int]:
        out = {
            _STATUS_COMPLETED: 0,
            _STATUS_RESUMED: 0,
            _STATUS_FAILED: 0,
            _STATUS_ABANDONED: 0,
        }
        for status in self.statuses:
            out[status] = out.get(status, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        """Every unit produced a result (possibly after a resume)."""
        return all(
            status in (_STATUS_COMPLETED, _STATUS_RESUMED)
            for status in self.statuses
        )

    @property
    def resumable(self) -> bool:
        """Something is left for a future ``resume_run`` to pick up."""
        return any(
            status in (_STATUS_FAILED, _STATUS_ABANDONED)
            for status in self.statuses
        )

    def to_dict(self) -> Dict[str, Any]:
        from repro.metrics.serialize import grid_report_to_dict

        payload = grid_report_to_dict(self.report)
        payload["statuses"] = list(self.statuses)
        payload["status_counts"] = self.counts()
        if self.manifest_path is not None:
            payload["manifest"] = str(self.manifest_path)
        return payload


# ----------------------------------------------------------------------
# The run manager
# ----------------------------------------------------------------------
def run_supervised(
    units: Sequence[WorkUnit],
    run_dir: Union[str, Path],
    checkpoint_every: Optional[float] = None,
    parallel: int = 1,
    retries: int = 1,
    backoff_base: float = 0.0,
    unit_timeout: Optional[float] = None,
    run_budget: Optional[float] = None,
    allow_partial: bool = False,
    progress: Optional[ProgressHook] = None,
) -> SupervisorReport:
    """Run a grid under supervision: durable, resumable, budget-bounded.

    ``run_dir`` holds everything a resume needs — the manifest, the
    result cache, per-unit checkpoints and partials.  Calling this again
    with the same units and directory *is* a resume (completed units hit
    the cache, interrupted ones restore); :func:`resume_run` does the
    same from the manifest alone.  ``run_budget`` bounds the grid's
    wall-clock seconds: at expiry pending units are recorded as
    ``abandoned`` — their checkpoints persist, so the next resume
    continues instead of restarting (checkpoint-then-stop).  With
    ``allow_partial=False`` any ``failed``/``abandoned`` unit raises
    :class:`GridExecutionError` after the manifest is written; with
    ``True`` the caller gets the full structured report.
    """
    units = list(units)
    root = Path(run_dir)
    root.mkdir(parents=True, exist_ok=True)
    salt = default_cache_salt()
    manifest_path = root / _MANIFEST_NAME
    records = [_unit_record(unit, salt) for unit in units]
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "salt": salt,
        "checkpoint_every": checkpoint_every,
        "units": records,
    }
    _write_json_atomic(manifest_path, manifest)

    prior_state = [
        _has_prior_state(str(root), record["fingerprint"], unit.scheduler_names())
        for unit, record in zip(units, records)
    ]
    # The REPRO_CACHE_SALT flow is the engine's one sanctioned
    # environment read: it namespaces manifests/caches across working
    # trees by design and never reaches seeds or results (see
    # docs/static-analysis.md and the sibling pragmas in parallel.py).
    cache = ResultCache(root / "cache", salt=salt)  # simlint: ignore[SIM103]
    task = functools.partial(
        execute_supervised_unit,
        run_dir=str(root),
        checkpoint_every=checkpoint_every,
        salt=salt,
    )
    report = _run_grid(  # simlint: ignore[SIM106] (worker persists checkpoints/partials: write-only durability, results stay pure)
        units,
        parallel=parallel,
        cache=cache,
        retries=retries,
        backoff_base=backoff_base,
        unit_timeout=unit_timeout,
        run_unit=task,
        progress=progress,
        budget=run_budget,
    )

    failures_by_index = {failure.index: failure for failure in report.failures}
    statuses: List[str] = []
    for index in range(len(units)):
        if report.results[index] is not None:
            statuses.append(
                _STATUS_RESUMED if prior_state[index] else _STATUS_COMPLETED
            )
        else:
            failure = failures_by_index.get(index)
            statuses.append(
                _STATUS_ABANDONED
                if failure is not None and failure.kind == "budget"
                else _STATUS_FAILED
            )
    for record, status in zip(records, statuses):
        record["status"] = status
    manifest["stats"] = {
        "completed": statuses.count(_STATUS_COMPLETED),
        "resumed": statuses.count(_STATUS_RESUMED),
        "failed": statuses.count(_STATUS_FAILED),
        "abandoned": statuses.count(_STATUS_ABANDONED),
    }
    _write_json_atomic(manifest_path, manifest)

    outcome = SupervisorReport(
        report=report, statuses=statuses, manifest_path=manifest_path
    )
    if not allow_partial and not outcome.ok:
        summary = "; ".join(
            f"{failure.unit.describe()}: [{failure.kind}] {failure.error}"
            for failure in report.failures
        )
        raise GridExecutionError(
            f"{len(report.failures)} of {len(units)} supervised units did not "
            f"complete (manifest at {manifest_path} is resumable): {summary}",
            failures=report.failures,
        )
    return outcome


def resume_run(
    manifest_path: Union[str, Path],
    parallel: int = 1,
    retries: int = 1,
    backoff_base: float = 0.0,
    unit_timeout: Optional[float] = None,
    run_budget: Optional[float] = None,
    allow_partial: bool = False,
    checkpoint_every: Optional[float] = None,
    progress: Optional[ProgressHook] = None,
) -> SupervisorReport:
    """Resume an interrupted supervised run from its manifest.

    Rebuilds the exact unit list (fingerprint-verified against the
    manifest; a mismatch raises :class:`ManifestError` — see
    :func:`unit_from_record` for what invalidates a manifest) and
    re-runs it in the same run directory: completed units come from the
    result cache, interrupted ones restore from their checkpoints.
    ``checkpoint_every`` defaults to the manifest's recorded cadence.
    """
    manifest = load_manifest(manifest_path)
    salt = default_cache_salt()
    if manifest.get("salt") != salt:
        raise ManifestError(
            f"manifest was written under cache salt {manifest.get('salt')!r} "
            f"but the current code uses {salt!r}; its cache entries and "
            "checkpoints no longer apply — rerun from scratch"
        )
    units = [
        unit_from_record(record, salt) for record in manifest.get("units", [])
    ]
    if not units:
        raise ManifestError(f"manifest {manifest['_path']} lists no units")
    if checkpoint_every is None:
        checkpoint_every = manifest.get("checkpoint_every")
    return run_supervised(
        units,
        Path(manifest["_path"]).parent,
        checkpoint_every=checkpoint_every,
        parallel=parallel,
        retries=retries,
        backoff_base=backoff_base,
        unit_timeout=unit_timeout,
        run_budget=run_budget,
        allow_partial=allow_partial,
        progress=progress,
    )
