"""Unit tests for the workload generator (trace -> structured jobs)."""

import random

import pytest

from repro.errors import WorkloadError
from repro.jobs import IdAllocator
from repro.workloads.fbtrace import synthesize_trace
from repro.workloads.generator import (
    jobs_from_trace,
    remap_specs,
    replicate_coflow,
    synthesize_workload,
)


class TestRemap:
    def test_endpoints_within_host_range(self):
        rng = random.Random(0)
        specs = remap_specs([(500, 900, 10.0), (900, 500, 5.0)], 8, rng)
        for src, dst, _size in specs:
            assert 0 <= src < 8 and 0 <= dst < 8
            assert src != dst

    def test_mapping_consistent_within_call(self):
        rng = random.Random(0)
        specs = remap_specs([(500, 900, 1.0), (500, 901, 1.0)], 64, rng)
        assert specs[0][0] == specs[1][0]  # machine 500 maps once

    def test_needs_two_hosts(self):
        with pytest.raises(WorkloadError):
            remap_specs([(0, 1, 1.0)], 1, random.Random(0))


class TestReplication:
    def test_scales_to_target_volume(self):
        trace = synthesize_trace(5, num_machines=100, seed=1)
        rng = random.Random(0)
        specs = replicate_coflow(trace[0], 1234.0, 64, rng)
        assert sum(size for *_rest, size in specs) == pytest.approx(1234.0)

    def test_light_replicas_are_thinner(self):
        trace = synthesize_trace(30, num_machines=100, seed=2, max_fanin=20)
        wide = max(trace, key=lambda c: c.num_flows)
        rng = random.Random(0)
        full = replicate_coflow(wide, wide.total_bytes, 64, rng)
        thin = replicate_coflow(wide, wide.total_bytes / 100.0, 64, rng)
        assert len(thin) < len(full)
        assert len(thin) >= 1


class TestJobsFromTrace:
    def test_structures_have_expected_node_counts(self):
        trace = synthesize_trace(10, num_machines=100, seed=3)
        for structure, nodes in (("fb-tao", 8), ("tpcds", 7), ("single", 1)):
            jobs = jobs_from_trace(
                trace, num_jobs=4, num_hosts=32, structure=structure, seed=1
            )
            assert all(len(j.coflows) == nodes for j in jobs)

    def test_arrival_override(self):
        trace = synthesize_trace(4, num_machines=100, seed=4)
        jobs = jobs_from_trace(
            trace,
            num_jobs=4,
            num_hosts=32,
            arrivals=[5.0, 6.0, 7.0, 8.0],
            seed=1,
        )
        assert [j.arrival_time for j in jobs] == [5.0, 6.0, 7.0, 8.0]

    def test_validation(self):
        trace = synthesize_trace(4, num_machines=100, seed=5)
        with pytest.raises(WorkloadError):
            jobs_from_trace([], num_jobs=1, num_hosts=8)
        with pytest.raises(WorkloadError):
            jobs_from_trace(trace, num_jobs=0, num_hosts=8)
        with pytest.raises(WorkloadError):
            jobs_from_trace(trace, num_jobs=4, num_hosts=8, arrivals=[1.0])
        with pytest.raises(WorkloadError):
            jobs_from_trace(trace, num_jobs=1, num_hosts=8, structure="bogus")


class TestSynthesizeWorkload:
    def test_deterministic_per_seed(self):
        a = synthesize_workload(8, 32, seed=5)
        b = synthesize_workload(8, 32, seed=5)
        assert [j.total_bytes for j in a] == [j.total_bytes for j in b]

    def test_all_arrival_modes(self):
        for mode in ("uniform", "poisson", "bursty", "simultaneous"):
            jobs = synthesize_workload(6, 32, arrival_mode=mode, seed=1)
            assert len(jobs) == 6
            assert all(j.arrival_time >= 0 for j in jobs)

    def test_simultaneous_all_at_zero(self):
        jobs = synthesize_workload(5, 32, arrival_mode="simultaneous", seed=1)
        assert all(j.arrival_time == 0.0 for j in jobs)

    def test_unknown_mode_rejected(self):
        with pytest.raises(WorkloadError):
            synthesize_workload(5, 32, arrival_mode="warp", seed=1)

    def test_offered_load_controls_span(self):
        light = synthesize_workload(20, 32, seed=2, offered_load=0.5)
        heavy = synthesize_workload(20, 32, seed=2, offered_load=2.0)
        assert max(j.arrival_time for j in light) > max(
            j.arrival_time for j in heavy
        )

    def test_invalid_load_rejected(self):
        with pytest.raises(WorkloadError):
            synthesize_workload(5, 32, offered_load=0.0)

    def test_hosts_within_topology(self):
        jobs = synthesize_workload(10, 16, seed=3)
        for job in jobs:
            for coflow in job.coflows:
                for flow in coflow.flows:
                    assert 0 <= flow.src < 16
                    assert 0 <= flow.dst < 16
                    assert flow.src != flow.dst

    def test_shared_id_allocator(self):
        ids = IdAllocator()
        first = synthesize_workload(3, 16, seed=1, ids=ids)
        second = synthesize_workload(3, 16, seed=2, ids=ids)
        all_ids = [j.job_id for j in first + second]
        assert len(set(all_ids)) == len(all_ids)
