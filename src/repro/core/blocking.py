"""The blocking effect Ψ — Gurita's scheduling score (paper eq. 2 and 3).

A coflow's blocking effect quantifies how likely it is to delay the
completion of *other* jobs, combining the three dimensions of a multi-stage
coflow:

* horizontal — its width ``w`` (number of flows),
* vertical — its largest flow ``l_max``,
* depth — how close the job is to its final stage (weight ``gamma``).

::

    Ψ_c = gamma × w × l_max × beta                          (eq. 2)

``beta`` normalizes the largest flow against the coflow's average flow
size: a lone elephant among mice blocks more than uniform flows of the
same maximum.  Jobs in late stages get small ``gamma`` (rule 3: finish
what is nearly done).  Scheduling ascends Ψ — Least Blocking Effect First.

The clairvoyant forms take true sizes and stage counts (GuritaPlus / the
ideal-condition design); the estimated forms use only receiver-observable
quantities (eq. 3): open connections, bytes received per flow, and the
count of completed stages.
"""

from __future__ import annotations

from typing import Iterable

from repro.jobs.coflow import Coflow
from repro.jobs.job import Job

#: Default β when the largest flow equals the average (uniform coflow).
DEFAULT_BETA_FLOOR = 0.1


def beta(
    max_flow_bytes: float,
    mean_flow_bytes: float,
    floor: float = DEFAULT_BETA_FLOOR,
) -> float:
    """Elephant-dominance factor β (paper eq. 2's normalizer).

    With ``alpha = mean / max``: ``β = 1 - alpha`` when ``alpha < 1`` and
    ``β = floor`` otherwise.  β → 1 when one elephant dwarfs the average
    (the coflow can badly delay others); β = floor for uniform coflows.
    """
    if max_flow_bytes <= 0:
        # Nothing observed yet: no evidence of vertical blocking.
        return floor
    alpha = min(mean_flow_bytes / max_flow_bytes, 1.0)
    if alpha < 1.0:
        return max(1.0 - alpha, floor)
    return floor


def gamma_clairvoyant(completed_stages: int, total_stages: int) -> float:
    """Final-stage weight γ = 1 - s / s_total (paper eq. 2).

    Decreases as the job approaches its final stage, boosting priority
    (rule 3).  For the last stage of an ``n``-stage job, γ = 1/n.
    """
    if total_stages < 1:
        raise ValueError("total_stages must be >= 1")
    completed = min(max(completed_stages, 0), total_stages - 1)
    return 1.0 - completed / total_stages


def gamma_estimated(completed_stages: int) -> float:
    """Online γ̈ ≈ 1 / (s + 1) when the total stage count is unknown.

    The paper keeps the influence diminishing as s → ∞ to avoid falsely
    treating deep jobs as near-final.
    """
    return 1.0 / (max(completed_stages, 0) + 1)


def blocking_effect(
    gamma: float,
    width: float,
    max_flow_bytes: float,
    mean_flow_bytes: float,
    beta_floor: float = DEFAULT_BETA_FLOOR,
) -> float:
    """Ψ = γ × w × l_max × β — the generic form behind eq. 2 and eq. 3."""
    if width < 0 or max_flow_bytes < 0:
        raise ValueError("width and max_flow_bytes must be non-negative")
    return (
        gamma
        * width
        * max_flow_bytes
        * beta(max_flow_bytes, mean_flow_bytes, floor=beta_floor)
    )


def coflow_psi_clairvoyant(
    coflow: Coflow,
    job: Job,
    beta_floor: float = DEFAULT_BETA_FLOOR,
) -> float:
    """Eq. 2: Ψ with full knowledge of sizes and the job's stage count."""
    gamma = gamma_clairvoyant(coflow.stage - 1, job.num_stages)
    return blocking_effect(
        gamma,
        coflow.width,
        coflow.max_flow_bytes,
        coflow.mean_flow_bytes,
        beta_floor=beta_floor,
    )


def coflow_psi_estimated(
    coflow: Coflow,
    completed_stages: int,
    beta_floor: float = DEFAULT_BETA_FLOOR,
) -> float:
    """Eq. 3: Ψ̈ from receiver-observable quantities only.

    Width is estimated by the number of open connections; the largest and
    mean flow sizes by the bytes each flow has delivered so far; γ̈ by the
    completed-stage count.
    """
    width, observed_max, observed_mean = coflow.observed_stats()
    return blocking_effect(
        gamma_estimated(completed_stages),
        width,
        observed_max,
        observed_mean,
        beta_floor=beta_floor,
    )


def psi_from_observation(
    open_connections: int,
    max_flow_bytes: float,
    mean_flow_bytes: float,
    completed_stages: int,
    beta_floor: float = DEFAULT_BETA_FLOOR,
) -> float:
    """Eq. 3 from explicit receiver-side observations.

    Same formula as :func:`coflow_psi_estimated`, but fed by the merged
    receiver reports of the observation plane instead of direct coflow
    state (see :mod:`repro.core.receiver`).
    """
    return blocking_effect(
        gamma_estimated(completed_stages),
        open_connections,
        max_flow_bytes,
        mean_flow_bytes,
        beta_floor=beta_floor,
    )


def job_stage_psi(coflow_psis: Iterable[float]) -> float:
    """Ψ_J(s): the job's per-stage blocking effect — the sum over its
    coflows in that stage (paper §IV.B)."""
    return sum(coflow_psis)
