"""Integration tests: the runtime against hand-computed scenarios.

These use the big-switch fabric with 1 GB/s links so exact completion
times can be derived by hand.
"""

import pytest

from repro.errors import SimulationError
from repro.jobs import chain_job, single_stage_job
from repro.schedulers.pfs import PerFlowFairSharing
from repro.simulator.runtime import CoflowSimulation, simulate
from repro.simulator.topology.bigswitch import BigSwitchTopology

GB = 1e9


def topo(hosts=6):
    return BigSwitchTopology(num_hosts=hosts, link_capacity=1.0 * GB)


class TestSingleFlow:
    def test_lone_flow_runs_at_line_rate(self, ids):
        job = single_stage_job([(0, 1, 2.0 * GB)], ids=ids)
        result = simulate(topo(), PerFlowFairSharing(), [job])
        assert result.average_jct() == pytest.approx(2.0, rel=1e-6)

    def test_arrival_time_offsets_completion(self, ids):
        job = single_stage_job([(0, 1, 1.0 * GB)], arrival_time=5.0, ids=ids)
        result = simulate(topo(), PerFlowFairSharing(), [job])
        assert result.jobs[0].finish_time == pytest.approx(6.0, rel=1e-6)
        assert result.average_jct() == pytest.approx(1.0, rel=1e-6)


class TestFairSharing:
    def test_two_flows_same_uplink_split_capacity(self, ids):
        # Both flows leave host 0: each gets 0.5 GB/s until the first ends.
        job_a = single_stage_job([(0, 1, 1.0 * GB)], ids=ids)
        job_b = single_stage_job([(0, 2, 1.0 * GB)], ids=ids)
        result = simulate(topo(), PerFlowFairSharing(), [job_a, job_b])
        # Identical flows: both finish at t=2.
        for job in result.jobs:
            assert job.completion_time() == pytest.approx(2.0, rel=1e-6)

    def test_short_flow_releases_capacity(self, ids):
        # Flow A: 3 GB, flow B: 1 GB sharing one uplink.
        # Phase 1: both at 0.5 -> B done at t=2 (sent 1), A has 2 left.
        # Phase 2: A alone at 1.0 -> done at t=4.
        job_a = single_stage_job([(0, 1, 3.0 * GB)], ids=ids)
        job_b = single_stage_job([(0, 2, 1.0 * GB)], ids=ids)
        result = simulate(topo(), PerFlowFairSharing(), [job_a, job_b])
        jcts = result.job_completion_times()
        assert jcts[job_b.job_id] == pytest.approx(2.0, rel=1e-6)
        assert jcts[job_a.job_id] == pytest.approx(4.0, rel=1e-6)

    def test_receiver_side_bottleneck(self, ids):
        # Two senders into one receiver NIC: split the downlink.
        job = single_stage_job([(0, 2, 1.0 * GB), (1, 2, 1.0 * GB)], ids=ids)
        result = simulate(topo(), PerFlowFairSharing(), [job])
        assert result.average_jct() == pytest.approx(2.0, rel=1e-6)


class TestMultiStage:
    def test_chain_stages_run_serially(self, ids):
        job = chain_job(
            [[(0, 1, 1.0 * GB)], [(1, 2, 2.0 * GB)], [(2, 3, 1.0 * GB)]],
            ids=ids,
        )
        result = simulate(topo(), PerFlowFairSharing(), [job])
        assert result.average_jct() == pytest.approx(4.0, rel=1e-6)
        stages = sorted(
            (c.stage, c.release_time, c.finish_time) for c in job.coflows
        )
        # Each stage starts exactly when the previous finishes.
        assert stages[0][1] == pytest.approx(0.0)
        assert stages[1][1] == pytest.approx(stages[0][2], rel=1e-6)
        assert stages[2][1] == pytest.approx(stages[1][2], rel=1e-6)

    def test_diamond_waits_for_both_branches(self, diamond_job):
        # Sizes: leaf 100, left 50, right 75, root 25 bytes (tiny).
        result = simulate(
            BigSwitchTopology(num_hosts=6, link_capacity=1.0), PerFlowFairSharing(), [diamond_job]
        )
        names = diamond_job.coflow_ids
        root = diamond_job.coflow(names["root"])
        right = diamond_job.coflow(names["right"])
        assert root.release_time == pytest.approx(right.finish_time, rel=1e-6)

    def test_parallel_branch_starts_without_sibling(self, ids):
        # Two independent chains in one job: the fast chain's second stage
        # must not wait for the slow chain.
        from repro.jobs import JobBuilder

        builder = JobBuilder(ids=ids)
        fast_leaf = builder.add_coflow([(0, 1, 0.1 * GB)])
        slow_leaf = builder.add_coflow([(2, 3, 10.0 * GB)])
        fast_next = builder.add_coflow([(1, 4, 0.1 * GB)], depends_on=[fast_leaf])
        job = builder.build()
        result = simulate(topo(), PerFlowFairSharing(), [job])
        next_coflow = job.coflow(fast_next)
        assert next_coflow.release_time == pytest.approx(0.1, rel=1e-6)
        assert next_coflow.release_time < job.coflow(slow_leaf).finish_time


class TestRuntimeGuards:
    def test_duplicate_job_ids_rejected(self, ids):
        job = single_stage_job([(0, 1, 1.0)], ids=ids)
        with pytest.raises(SimulationError):
            CoflowSimulation(topo(), PerFlowFairSharing(), [job, job])

    def test_needs_jobs(self):
        with pytest.raises(SimulationError):
            CoflowSimulation(topo(), PerFlowFairSharing(), [])

    def test_host_out_of_topology_rejected(self, ids):
        job = single_stage_job([(0, 99, 1.0)], ids=ids)
        with pytest.raises(Exception):
            CoflowSimulation(topo(), PerFlowFairSharing(), [job])

    def test_until_stops_early(self, ids):
        job = single_stage_job([(0, 1, 100.0 * GB)], ids=ids)
        result = CoflowSimulation(topo(), PerFlowFairSharing(), [job]).run(
            until=1.0
        )
        assert not result.all_done
        with pytest.raises(SimulationError):
            result.average_jct()
