"""Stream — decentralized opportunistic inter-coflow scheduling (ref [14]).

Stream is the paper's decentralized TBS comparator.  Each receiver demotes
its coflows through exponentially spaced priority queues as the *observed*
(received) bytes of the owning job accumulate — no central coordinator, so
information is local and lags the senders.  Stream also leverages the
coflow communication pattern: very wide (many-to-many) coflows are demoted
one extra class because their aggregate traffic is likely to congest
receivers.

The paper's critique (§V): "Stream requires larger jobs to transmit at
lower priority regardless of the amount of bytes sent per stage" — the
accumulated score never resets when a new stage starts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.jobs.flow import Flow
from repro.jobs.job import Job
from repro.schedulers.base import SchedulerPolicy
from repro.schedulers.thresholds import ExponentialThresholds
from repro.simulator.bandwidth.request import (
    DEFAULT_NUM_CLASSES,
    AllocationMode,
    AllocationRequest,
)

#: Receivers refresh their local observations at this period (seconds).
DEFAULT_OBSERVATION_INTERVAL = 8e-3

#: Coflows wider than this are demoted one class (many-to-many pattern).
DEFAULT_WIDE_COFLOW = 50


class StreamScheduler(SchedulerPolicy):
    """Decentralized D-CLAS on locally observed job bytes + width demotion."""

    name = "stream"

    def __init__(
        self,
        num_classes: int = DEFAULT_NUM_CLASSES,
        thresholds: Optional[ExponentialThresholds] = None,
        observation_interval: float = DEFAULT_OBSERVATION_INTERVAL,
        wide_coflow: int = DEFAULT_WIDE_COFLOW,
    ) -> None:
        super().__init__()
        self.num_classes = num_classes
        self.thresholds = (
            thresholds
            if thresholds is not None
            else ExponentialThresholds(num_classes)
        )
        self.update_interval = observation_interval
        self.wide_coflow = wide_coflow
        #: job id -> bytes observed at receivers as of the last update.
        self._observed_job_bytes: Dict[int, float] = {}

    def on_update(self, now: float) -> bool:
        """Receivers snapshot locally observed bytes (information lag).

        Returns True only when some job's snapshot crossed a priority
        threshold, so the runtime can skip no-op reallocations.
        """
        assert self.context is not None
        changed = False
        for job in self.context.jobs():
            if job.completion_time() is not None:
                continue
            old = self._observed_job_bytes.get(job.job_id, 0.0)
            new = self.context.job_bytes_sent(job.job_id)
            self._observed_job_bytes[job.job_id] = new
            if self.thresholds.class_of(old) != self.thresholds.class_of(new):
                changed = True
        return changed

    def on_job_arrival(self, job: Job, now: float) -> None:
        self._observed_job_bytes.setdefault(job.job_id, 0.0)

    def allocation(self, active_flows: List[Flow], now: float) -> AllocationRequest:
        assert self.context is not None
        priorities: Dict[int, int] = {}
        for flow in active_flows:
            coflow = self.context.coflow(flow.coflow_id)
            observed = self._observed_job_bytes.get(coflow.job_id, 0.0)
            cls = self.thresholds.class_of(observed)
            if coflow.active_width > self.wide_coflow:
                cls += 1
            priorities[flow.flow_id] = min(cls, self.num_classes - 1)
        return AllocationRequest(
            mode=AllocationMode.SPQ,
            priorities=priorities,
            num_classes=self.num_classes,
        )
