"""Differential parity: parallel fan-out is bit-identical to serial.

The engine's whole promise is that ``parallel=N`` only changes wall
time, never results.  This suite runs a matrix of scenarios — both
topologies, three schedulers, three seeds — serially and at N=2 and
N=4 process-pool workers, and asserts *exact float equality* of every
per-job JCT, every improvement factor, and the serialized comparison
records.  Cache-hit replays must reproduce the same bits, and on a
≥4-core machine the 12-unit grid must finish in at most half the serial
wall time.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.common import ScenarioConfig
from repro.experiments.parallel import grid_of, run_grid
from repro.experiments.sweep import sweep_offered_load
from repro.experiments.trials import run_trials
from repro.metrics.serialize import comparison_to_dict, grid_report_to_dict

#: ≥3 schedulers, per the differential matrix contract — including the
#: gap-harness comparators, whose per-arrival precomputation (sg-dag) and
#: ordered-list construction (lp-order) must replay identically in
#: worker processes.
SCHEDULERS = ("pfs", "baraat", "gurita", "sg-dag", "lp-order")
#: ≥3 replicate seeds.
SEEDS = (1, 2, 3)
#: Both network substrates: the paper's FatTree and the big-switch fabric.
MATRIX = (
    ScenarioConfig(name="fattree-tiny", num_jobs=4, fattree_k=4),
    ScenarioConfig(
        name="bigswitch-tiny", num_jobs=4, topology="bigswitch", num_hosts=8
    ),
)
UNITS = grid_of(MATRIX, seeds=SEEDS, schedulers=SCHEDULERS)


def per_job_jcts(report):
    """Exact per-job JCTs for every unit × scheduler, in unit order."""
    return [
        {
            name: sim.job_completion_times()
            for name, sim in outcome.results.items()
        }
        for outcome in report.scenario_results()
    ]


def improvement_factors(report):
    return [
        outcome.improvements_over("gurita")
        for outcome in report.scenario_results()
    ]


def serialized_records(report):
    return [
        json.dumps(comparison_to_dict(outcome.results), sort_keys=True)
        for outcome in report.scenario_results()
    ]


@pytest.fixture(scope="module")
def serial_report():
    return run_grid(UNITS, parallel=1)


class TestBitIdenticalParity:
    @pytest.mark.parametrize("workers", (2, 4))
    def test_process_pool_matches_serial_exactly(self, serial_report, workers):
        parallel_report = run_grid(UNITS, parallel=workers)
        assert parallel_report.ok
        # Bit-identical: exact float equality, not approx.
        assert per_job_jcts(parallel_report) == per_job_jcts(serial_report)
        assert improvement_factors(parallel_report) == improvement_factors(
            serial_report
        )
        assert serialized_records(parallel_report) == serialized_records(
            serial_report
        )

    def test_results_reassemble_in_submission_order(self, serial_report):
        parallel_report = run_grid(UNITS, parallel=4)
        for unit, outcome in zip(
            parallel_report.units, parallel_report.scenario_results()
        ):
            assert outcome.config == unit.effective_config()

    def test_trials_parity(self):
        config = ScenarioConfig(num_jobs=4, fattree_k=4)
        serial = run_trials(
            config, seeds=SEEDS, schedulers=SCHEDULERS, parallel=1
        )
        fanned = run_trials(
            config, seeds=SEEDS, schedulers=SCHEDULERS, parallel=2
        )
        assert serial.improvement_stats() == fanned.improvement_stats()
        assert serial.average_jct_stats() == fanned.average_jct_stats()

    def test_sweep_parity(self):
        base = ScenarioConfig(num_jobs=4, fattree_k=4, seed=8)
        serial = sweep_offered_load((0.5, 2.0), base=base, parallel=1)
        fanned = sweep_offered_load((0.5, 2.0), base=base, parallel=2)
        assert serial.series("pfs") == fanned.series("pfs")
        assert serial.series("gurita") == fanned.series("gurita")
        assert [p.value for p in serial.points] == [
            p.value for p in fanned.points
        ]


class TestCacheReplay:
    def test_cache_hits_reproduce_identical_bits(self, tmp_path, serial_report):
        cache_dir = tmp_path / "grid-cache"
        cold = run_grid(UNITS, parallel=2, cache_dir=cache_dir)
        assert cold.stats.cache_hits == 0
        warm = run_grid(UNITS, parallel=2, cache_dir=cache_dir)
        assert warm.stats.cache_hits == warm.stats.total_units == len(UNITS)
        # The replay is bit-identical to both the cold run and the
        # serial ground truth.
        assert per_job_jcts(warm) == per_job_jcts(cold)
        assert per_job_jcts(warm) == per_job_jcts(serial_report)
        assert serialized_records(warm) == serialized_records(serial_report)

    def test_cache_replay_serializes_identically(self, tmp_path):
        cache_dir = tmp_path / "grid-cache"
        cold = run_grid(UNITS, cache_dir=cache_dir)
        warm = run_grid(UNITS, cache_dir=cache_dir)
        cold_record = grid_report_to_dict(cold)
        warm_record = grid_report_to_dict(warm)
        # Engine timings legitimately differ; the payloads must not.
        assert json.dumps(
            warm_record["results"], sort_keys=True
        ) == json.dumps(cold_record["results"], sort_keys=True)
        assert warm_record["failures"] == [] == cold_record["failures"]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the ≤0.5x wall-time target is defined for a ≥4-core runner",
)
def test_twelve_unit_grid_halves_wall_time_at_four_workers():
    """Acceptance: N=4 runs a 12-unit grid in ≤0.5× serial wall time."""
    config = ScenarioConfig(num_jobs=10, fattree_k=4)
    units = grid_of(
        [config], seeds=tuple(range(1, 13)), schedulers=("pfs", "gurita")
    )
    assert len(units) == 12
    serial = run_grid(units, parallel=1)
    fanned = run_grid(units, parallel=4)
    assert per_job_jcts(fanned) == per_job_jcts(serial)
    assert fanned.stats.elapsed_seconds <= 0.5 * serial.stats.elapsed_seconds, (
        f"parallel {fanned.stats.elapsed_seconds:.2f}s vs "
        f"serial {serial.stats.elapsed_seconds:.2f}s"
    )
