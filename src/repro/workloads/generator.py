"""Workload generation: stitch trace coflows onto job DAG structures.

The Facebook trace records single coflows with no job structure (paper §V:
"the data trace does not specify the relationship between coflows"), so —
exactly as the paper does — jobs are assembled by instantiating a DAG
template (TPC-DS query-42, FB-Tao, or the production shape mix) with
coflows replicated from the trace.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.jobs.builder import FlowSpec, IdAllocator, JobBuilder
from repro.jobs.job import Job
from repro.workloads.bursty import bursty_arrivals, poisson_arrivals, uniform_arrivals
from repro.workloads.fbtao import tao_shape, tao_volumes
from repro.workloads.fbtrace import TraceCoflow, synthesize_trace
from repro.workloads.shapes import DagShape, sample_production_shape, single
from repro.workloads.tpcds import query42_shape, query42_volumes

if TYPE_CHECKING:  # annotation-only: the workloads layer stays simulator-free
    from repro.simulator.units import Bytes, BytesPerSec, Seconds

#: Supported DAG structures.
STRUCTURES = ("fb-tao", "tpcds", "production-mix", "single")


def remap_specs(
    specs: Sequence[FlowSpec],
    num_hosts: int,
    rng: random.Random,
) -> List[FlowSpec]:
    """Re-place flow endpoints uniformly onto ``num_hosts`` hosts.

    The trace machine space (3000 hosts) rarely matches the simulated
    topology, so each distinct trace machine is mapped to a random
    simulated host (consistently within the coflow); src==dst collisions
    shift the destination to the next host.
    """
    if num_hosts < 2:
        raise WorkloadError("need at least two hosts")
    mapping = {}
    out: List[FlowSpec] = []
    for src, dst, size in specs:
        for machine in (src, dst):
            if machine not in mapping:
                mapping[machine] = rng.randrange(num_hosts)
        new_src, new_dst = mapping[src], mapping[dst]
        if new_src == new_dst:
            new_dst = (new_dst + 1) % num_hosts
        out.append((new_src, new_dst, size))
    return out


def replicate_coflow(
    base: TraceCoflow,
    total_bytes: Bytes,
    num_hosts: int,
    rng: random.Random,
) -> List[FlowSpec]:
    """Replicate a trace coflow scaled to ``total_bytes``, re-placed.

    When the target volume is much smaller than the base coflow (light DAG
    stages of a heavy job), the width is thinned along with the volume —
    real jobs run later stages with fewer tasks, and keeping hundreds of
    near-empty flows would distort both realism and simulation cost.
    """
    base_total = base.total_bytes
    if base_total <= 0:
        raise WorkloadError(f"trace coflow {base.coflow_id} has no bytes")
    specs = base.flow_specs()
    fraction = min(1.0, total_bytes / base_total)
    keep = max(1, round(len(specs) * fraction**0.5))
    if keep < len(specs):
        specs = rng.sample(specs, keep)
    current_total = sum(size for _src, _dst, size in specs)
    scale = total_bytes / current_total
    specs = [(src, dst, size * scale) for src, dst, size in specs]
    return remap_specs(specs, num_hosts, rng)


def _structure_for_job(
    structure: str, rng: random.Random
) -> Tuple[DagShape, Optional[List[float]]]:
    """Shape plus optional per-node volume weights for one job."""
    if structure == "fb-tao":
        shape = tao_shape()
        return shape, tao_volumes(1.0)
    if structure == "tpcds":
        return query42_shape(), query42_volumes(1.0)
    if structure == "production-mix":
        return sample_production_shape(rng), None
    if structure == "single":
        return single(), None
    raise WorkloadError(f"unknown structure {structure!r}; pick from {STRUCTURES}")


def jobs_from_trace(
    trace: Sequence[TraceCoflow],
    num_jobs: int,
    num_hosts: int,
    structure: str = "fb-tao",
    arrivals: Optional[Sequence[Seconds]] = None,
    seed: int = 0,
    ids: Optional[IdAllocator] = None,
) -> List[Job]:
    """Assemble ``num_jobs`` DAG-structured jobs from trace coflows.

    Each job draws a base coflow from the trace round-robin; its total
    bytes become the job's total, split over the DAG nodes (by the
    structure's volume profile, or by independently replicated trace
    coflows for ``production-mix``/``single``).  ``arrivals`` overrides
    the trace arrival times.
    """
    if not trace:
        raise WorkloadError("empty trace")
    if num_jobs < 1:
        raise WorkloadError("need at least one job")
    if arrivals is not None and len(arrivals) < num_jobs:
        raise WorkloadError("fewer arrival times than jobs")
    rng = random.Random(seed)
    ids = ids if ids is not None else IdAllocator()
    jobs: List[Job] = []
    for index in range(num_jobs):
        base = trace[index % len(trace)]
        arrival = (
            arrivals[index] if arrivals is not None else base.arrival_seconds
        )
        shape, weights = _structure_for_job(structure, rng)
        builder = JobBuilder(arrival_time=arrival, ids=ids)
        node_to_coflow = {}
        deps_of = {node: [] for node in range(shape.num_nodes)}
        for u, v in shape.edges:
            deps_of[v].append(u)
        # Build in an order where dependencies come first.
        remaining = set(range(shape.num_nodes))
        while remaining:
            progress = False
            for node in sorted(remaining):
                if any(dep in remaining for dep in deps_of[node]):
                    continue
                if weights is not None:
                    node_total = base.total_bytes * weights[node] / sum(weights)
                    sample = base
                else:
                    sample = trace[rng.randrange(len(trace))]
                    node_total = sample.total_bytes
                specs = replicate_coflow(sample, node_total, num_hosts, rng)
                node_to_coflow[node] = builder.add_coflow(
                    specs,
                    depends_on=[node_to_coflow[d] for d in deps_of[node]],
                )
                remaining.discard(node)
                progress = True
            if not progress:
                raise WorkloadError(f"cyclic shape {shape.name}")
        jobs.append(builder.build())
    return jobs


def synthesize_workload(
    num_jobs: int,
    num_hosts: int,
    structure: str = "fb-tao",
    seed: int = 0,
    arrival_mode: str = "uniform",
    duration: Optional[Seconds] = None,
    offered_load: float = 1.5,
    link_capacity: BytesPerSec = 10e9 / 8.0,
    burst_size: int = 10,
    burst_gap: Seconds = 1.0,
    size_scale: float = 1.0,
    max_fanin: int = 16,
    ids: Optional[IdAllocator] = None,
) -> List[Job]:
    """One-call workload synthesis: trace + structure + arrivals -> jobs.

    Parameters
    ----------
    arrival_mode:
        ``"uniform"`` spreads arrivals over ``duration``; ``"poisson"``
        draws a Poisson process with the same mean span; ``"bursty"``
        packs jobs into bursts of ``burst_size`` arrivals 2 µs apart
        separated by ~``burst_gap`` seconds (the paper's bursty scenario);
        ``"simultaneous"`` releases everything at t=0.
    duration:
        Arrival span in seconds.  When omitted it is derived from
        ``offered_load``: the span is set so the workload's total bytes
        offer ``offered_load`` times the hosts' aggregate NIC capacity —
        sustained contention is what differentiates schedulers, so the
        calibrated default keeps the network loaded like the paper's
        trace replay does.
    offered_load:
        Target ratio of offered bytes to aggregate capacity (> 1 means
        transient overload).  Ignored when ``duration`` is given.
    size_scale:
        Scales all byte counts (1.0 = trace-calibrated sizes).
    max_fanin:
        Caps mapper/reducer counts per coflow, bounding flows per coflow.
    """
    trace = synthesize_trace(
        num_coflows=num_jobs,
        num_machines=max(num_hosts, 2),
        duration=1.0,  # arrival times are replaced below
        seed=seed,
        size_scale=size_scale,
        max_fanin=max_fanin,
    )
    if duration is None:
        if offered_load <= 0:
            raise WorkloadError("offered_load must be positive")
        total_bytes = sum(record.total_bytes for record in trace)
        # Every byte crosses one uplink and one downlink, hence the 2x.
        aggregate = num_hosts * link_capacity
        duration = max(2.0 * total_bytes / (aggregate * offered_load), 1e-3)
    if arrival_mode == "uniform":
        arrivals: Optional[List[float]] = uniform_arrivals(num_jobs, duration, seed)
    elif arrival_mode == "poisson":
        arrivals = poisson_arrivals(num_jobs, rate=num_jobs / duration, seed=seed)
    elif arrival_mode == "bursty":
        arrivals = bursty_arrivals(
            num_jobs, burst_size=burst_size, gap=burst_gap, seed=seed
        )
    elif arrival_mode == "simultaneous":
        arrivals = [0.0] * num_jobs
    else:
        raise WorkloadError(f"unknown arrival_mode {arrival_mode!r}")
    return jobs_from_trace(
        trace,
        num_jobs=num_jobs,
        num_hosts=num_hosts,
        structure=structure,
        arrivals=arrivals,
        seed=seed + 1,
        ids=ids,
    )
